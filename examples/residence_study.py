#!/usr/bin/env python3
"""Client-side study: is household IPv6 traffic human-driven?

Reproduces the section 3 pipeline on a shorter window: generate
dual-stack residential traffic, compute Table-1-style statistics, run the
MSTL decomposition that shows the diurnal (human) structure of the IPv6
fraction, and rank the services that lead and lag.

Usage::

    python examples/residence_study.py [num_days]
"""

import sys

import numpy as np

from repro.core import (
    as_traffic_breakdown,
    compute_residence_stats,
    hourly_fraction_series,
    mstl,
    shared_as_box_stats,
)
from repro.datasets import build_residence_study
from repro.util.tables import TextTable, render_series


def main(num_days: int = 42) -> None:
    print(f"Generating {num_days} days of traffic for residences A-E ...")
    study = build_residence_study(num_days=num_days, seed=11)

    # -- Table 1 -----------------------------------------------------------
    table = TextTable(
        ["res", "scope", "GB", "IPv6 bytes", "daily mean (s.d.)", "flows", "IPv6 flows"],
        title="Per-residence IPv6 traffic (Table 1 analogue)",
    )
    for name in sorted(study.datasets):
        stats = compute_residence_stats(study.dataset(name))
        for scope_stats in (stats.external, stats.internal):
            table.add_row([
                name,
                scope_stats.scope.value,
                f"{scope_stats.total_gb:.2f}",
                f"{scope_stats.byte_fraction_overall:.3f}",
                f"{scope_stats.byte_fraction_daily_mean:.3f} ({scope_stats.byte_fraction_daily_std:.3f})",
                scope_stats.total_flows,
                f"{scope_stats.flow_fraction_overall:.3f}",
            ])
    print(table.render())

    # -- MSTL (Figure 2) -----------------------------------------------------
    print("\nMSTL decomposition of residence A's hourly IPv6 byte fraction:")
    series = hourly_fraction_series(study.dataset("A"), num_days=num_days)
    periods = [24, 168] if num_days >= 21 else [24]
    result = mstl(series, periods)
    hours = np.arange(series.size, dtype=float)
    print(render_series("observed ", hours, result.observed))
    print(render_series("trend    ", hours, result.trend))
    print(render_series("daily    ", hours, result.seasonal(24)))
    if 168 in result.seasonals:
        print(render_series("weekly   ", hours, result.seasonal(168)))
    print(render_series("residual ", hours, result.residual))
    daily = result.seasonal(24).reshape(-1, 24).mean(axis=0)
    peak_hour = int(daily.argmax())
    trough_hour = int(daily.argmin())
    print(f"daily component peaks at hour {peak_hour:02d}:00, "
          f"trough at {trough_hour:02d}:00 -> IPv6 traffic is human-driven")

    # -- Services that lead and lag (Figures 3/4) ----------------------------
    print("\nServices by IPv6 byte fraction at residence A:")
    leaders = as_traffic_breakdown(study.dataset("A"))
    ranked = sorted(leaders, key=lambda e: -e.fraction_v6)
    for entry in ranked[:5]:
        print(f"  lead: {entry.info.name:22s} AS{entry.info.asn:<7d} {entry.fraction_v6:.1%}")
    for entry in ranked[-5:]:
        print(f"  lag:  {entry.info.name:22s} AS{entry.info.asn:<7d} {entry.fraction_v6:.1%}")

    print("\nCross-residence view (ASes seen at 3+ residences, by category):")
    grouped = shared_as_box_stats(study.datasets, min_residences=3)
    for category, entries in grouped.items():
        medians = ", ".join(
            f"{info.name}={stats.median:.2f}" for info, stats in entries[:4]
        )
        print(f"  {category.value}: {medians}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
