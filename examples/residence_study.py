#!/usr/bin/env python3
"""Client-side study: is household IPv6 traffic human-driven?

Reproduces the section 3 pipeline on a shorter window through the
artifact registry: Table-1-style statistics, the MSTL decomposition that
shows the diurnal (human) structure of the IPv6 fraction, and the
services that lead and lag.  The traffic study is generated once by the
:class:`repro.api.Study` session and shared by all four artifacts.

Usage::

    python examples/residence_study.py [num_days]
"""

import sys

from repro.api import Study


def main(num_days: int = 42) -> None:
    print(f"Generating {num_days} days of traffic for residences A-E ...")
    study = Study(days=num_days, seed=11)

    # -- Table 1 -----------------------------------------------------------
    print(study.artifact("table1").to_text())

    # -- MSTL (Figure 2) ---------------------------------------------------
    fig2 = study.artifact("fig2")
    print("\n" + fig2.to_text())
    meta = fig2.metadata
    if "daily_peak_hour" in meta:
        print(f"daily component peaks at hour {meta['daily_peak_hour']:02d}:00, "
              f"trough at {meta['daily_trough_hour']:02d}:00 "
              f"-> IPv6 traffic is human-driven")

    # -- Services that lead and lag (Figures 3/4) --------------------------
    print("\nServices by IPv6 byte fraction at residence A (Figure 3):")
    print(study.artifact("fig3", residence="A", top=5).to_text())

    print("\nCross-residence view (Figure 4, ASes seen at 3+ residences):")
    print(study.artifact("fig4").to_text())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
