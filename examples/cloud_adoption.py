#!/usr/bin/env python3
"""Cloud study: does ease of enabling IPv6 drive tenant adoption?

Reproduces the section 5 pipeline through the artifact registry:
attribute every crawled FQDN to its cloud organization via BGP origin +
AS-to-Org (done once by the :class:`repro.api.Study` session), break
adoption down per provider and per service, and compare providers
head-to-head on shared multi-cloud tenants with Wilcoxon signed-rank
tests.

Usage::

    python examples/cloud_adoption.py [num_sites]
"""

import sys

from repro.api import Study


def main(num_sites: int = 2000) -> None:
    print(f"Crawling a {num_sites}-site universe and attributing FQDNs ...")
    study = Study(sites=num_sites, seed=23)

    # -- Figure 11 / Table 3 -----------------------------------------------
    print(study.artifact("table3").to_text())
    print("Note the split-brand artifacts: bunny.net domains appear IPv6-only")
    print("under Bunnyway (their A records sit on Datacamp), and legacy Akamai")
    print("domains appear IPv4-only under Akamai Technologies.")

    # -- Table 2 -----------------------------------------------------------
    print("\n" + study.artifact("table2").to_text())
    print("Default-on policies reach half to all tenants; opt-in stays in the")
    print("teens; opt-in-by-code-change (S3-style) is near zero.")

    # -- Figure 12 ---------------------------------------------------------
    fig12 = study.artifact("fig12", top=10)
    meta = fig12.metadata
    print(f"\nMulti-cloud tenants: {meta['multicloud_tenants']}; "
          f"comparable pairs: {meta['comparable_pairs']}; "
          f"significant after Holm-Bonferroni: {meta['significant_pairs']}")
    print("Strongest head-to-head differences (Figure 12 analogue):")
    print(fig12.to_text())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
