#!/usr/bin/env python3
"""Cloud study: does ease of enabling IPv6 drive tenant adoption?

Reproduces the section 5 pipeline: attribute every crawled FQDN to its
cloud organization via BGP origin + AS-to-Org, break adoption down per
provider and per service, and compare providers head-to-head on shared
multi-cloud tenants with Wilcoxon signed-rank tests.

Usage::

    python examples/cloud_adoption.py [num_sites]
"""

import sys

from repro.core import (
    attribute_domains,
    cloud_pair_heatmap,
    cloud_provider_breakdown,
    multicloud_tenants,
    overall_domain_counts,
    rank_clouds_by_wins,
    service_adoption_table,
)
from repro.datasets import build_census
from repro.util.tables import TextTable


def main(num_sites: int = 2000) -> None:
    print(f"Crawling a {num_sites}-site universe and attributing FQDNs ...")
    census = build_census(num_sites=num_sites, seed=23)
    eco = census.ecosystem
    views = attribute_domains(census.dataset, eco.routing, eco.registry)

    total, ipv4_only, full, v6_only = overall_domain_counts(views)
    print(f"\n{total} domains observed: {ipv4_only} IPv4-only, "
          f"{full} IPv6-full, {v6_only} IPv6-only")

    # -- Figure 11 / Table 3 ---------------------------------------------------
    table = TextTable(
        ["organization", "domains", "IPv4-only", "IPv6-full", "IPv6-only"],
        title="Per-provider tenant IPv6 adoption (Figure 11 / Table 3 analogue)",
    )
    for stats in cloud_provider_breakdown(views)[:15]:
        table.add_row([
            stats.org.name, stats.total,
            f"{stats.share(stats.ipv4_only):.1%}",
            f"{stats.share(stats.ipv6_full):.1%}",
            f"{stats.share(stats.ipv6_only):.1%}",
        ])
    print(table.render())
    print("Note the split-brand artifacts: bunny.net domains appear IPv6-only")
    print("under Bunnyway (their A records sit on Datacamp), and legacy Akamai")
    print("domains appear IPv4-only under Akamai Technologies.")

    # -- Table 2 -----------------------------------------------------------
    service_table = TextTable(
        ["provider", "service", "policy", "IPv6-ready", "total", "%"],
        title="Per-service adoption vs. enablement policy (Table 2 analogue)",
    )
    for row in service_adoption_table(views, eco.service_of_cname, min_domains=10):
        service_table.add_row([
            row.provider.name, row.service.name, row.service.policy.value,
            row.ipv6_ready, row.total, f"{row.share:.1%}",
        ])
    print("\n" + service_table.render())
    print("Default-on policies reach half to all tenants; opt-in stays in the")
    print("teens; opt-in-by-code-change (S3-style) is near zero.")

    # -- Figure 12 -----------------------------------------------------------
    tenants = multicloud_tenants(views)
    comparisons = cloud_pair_heatmap(tenants)
    significant = [c for c in comparisons if c.significant]
    print(f"\nMulti-cloud tenants: {len(tenants)}; "
          f"comparable pairs: {sum(1 for c in comparisons if c.comparable)}; "
          f"significant after Holm-Bonferroni: {len(significant)}")
    print("Strongest head-to-head differences (Figure 12 analogue):")
    for cell in sorted(significant, key=lambda c: -abs(c.effect_size))[:10]:
        winner, loser = (
            (cell.org_a, cell.org_b) if cell.effect_size > 0 else (cell.org_b, cell.org_a)
        )
        print(f"  {winner} > {loser}  (r={abs(cell.effect_size):.2f}, "
              f"shared tenants={cell.n_shared})")
    ranking = rank_clouds_by_wins(comparisons)
    print("\nOverall ordering by wins:", " > ".join(ranking[:6]))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
