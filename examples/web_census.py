#!/usr/bin/env python3
"""Server-side census: how IPv6-ready are the top websites?

Reproduces the section 4 pipeline through the artifact registry: crawl a
ranked site universe (built once by the :class:`repro.api.Study`
session), classify sites into IPv4-only / IPv6-partial / IPv6-full, and
analyse which IPv4-only resources hold the partial sites back.

Usage::

    python examples/web_census.py [num_sites]
"""

import sys

from repro.api import Study


def main(num_sites: int = 1500) -> None:
    print(f"Crawling a {num_sites}-site universe (5 link clicks per site) ...")
    study = Study(sites=num_sites, seed=17)

    # -- Figures 5 and 6 ---------------------------------------------------
    print(study.artifact("fig5").to_text())
    print("\n" + study.artifact("fig6").to_text())

    # -- Figures 7-10 ------------------------------------------------------
    print("\n" + study.artifact("deps").to_text())

    print("\nHeavy-hitter IPv4-only domains by category (Figure 9):")
    print(study.artifact("fig9").to_text())

    print("\nWhat if IPv4-only domains adopted IPv6 in span order (Figure 10)?")
    print(study.artifact("fig10").to_text())

    # -- Section 4.4 -------------------------------------------------------
    print("\nPotential version-split misclassifications (section 4.4):")
    print(study.artifact("misclass").to_text())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1500)
