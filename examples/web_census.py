#!/usr/bin/env python3
"""Server-side census: how IPv6-ready are the top websites?

Reproduces the section 4 pipeline: crawl a ranked site universe with
full-depth resource resolution and five same-site link clicks, classify
sites into IPv4-only / IPv6-partial / IPv6-full, and analyse which
IPv4-only resources hold the partial sites back.

Usage::

    python examples/web_census.py [num_sites]
"""

import sys

import numpy as np

from repro.core import (
    analyze_dependencies,
    census_breakdown,
    estimate_version_split_misclassification,
    heavy_hitter_categories,
    top_n_breakdown,
    whatif_adoption_curve,
)
from repro.datasets import build_census
from repro.util.tables import TextTable, format_count_pct


def main(num_sites: int = 1500) -> None:
    print(f"Crawling a {num_sites}-site universe (5 link clicks per site) ...")
    census = build_census(num_sites=num_sites, seed=17)
    dataset = census.dataset

    # -- Figure 5 ------------------------------------------------------------
    b = census_breakdown(dataset)
    conn = b.connection_success
    table = TextTable(["category", "count (share of connected)"],
                      title="Site classification (Figure 5 analogue)")
    table.add_row(["total", b.total])
    table.add_row(["loading-failure (NXDOMAIN)", b.nxdomain])
    table.add_row(["loading-failure (other)", b.other_failure])
    table.add_row(["connection success", conn])
    table.add_row(["  IPv4-only", format_count_pct(b.ipv4_only, conn)])
    table.add_row(["  IPv6-partial", format_count_pct(b.ipv6_partial, conn)])
    table.add_row(["  IPv6-full", format_count_pct(b.ipv6_full, conn)])
    table.add_row(["    browser used IPv4", format_count_pct(b.browser_used_ipv4, conn)])
    table.add_row(["    browser used IPv6 only", format_count_pct(b.browser_used_ipv6_only, conn)])
    print(table.render())

    # -- Figure 6 ------------------------------------------------------------
    print("\nReadiness by popularity (Figure 6 analogue):")
    for row in top_n_breakdown(dataset, ns=(100, num_sites // 4, num_sites)):
        print(f"  top-{row.n:<6d} IPv4-only {row.ipv4_only_share:.1%}  "
              f"partial {row.ipv6_partial_share:.1%}  full {row.ipv6_full_share:.1%}")

    # -- Figures 7-10 ----------------------------------------------------------
    analysis = analyze_dependencies(dataset)
    counts = np.array(analysis.v4only_resource_counts)
    fractions = np.array(analysis.v4only_resource_fractions)
    print(f"\nIPv6-partial sites: {analysis.num_partial}")
    print(f"  IPv4-only resources per site: p25={np.percentile(counts, 25):.0f} "
          f"p50={np.percentile(counts, 50):.0f} p75={np.percentile(counts, 75):.0f}")
    print(f"  fraction IPv4-only:           p25={np.percentile(fractions, 25):.2f} "
          f"p50={np.percentile(fractions, 50):.2f} p75={np.percentile(fractions, 75):.2f}")
    spans = np.array([i.span for i in analysis.domain_impacts.values()])
    print(f"  IPv4-only domains: {len(spans)}; span p50={np.percentile(spans, 50):.0f} "
          f"p75={np.percentile(spans, 75):.0f} p95={np.percentile(spans, 95):.0f} max={spans.max()}")
    print(f"  partial due to first-party only: {len(analysis.first_party_only_sites)} "
          f"({len(analysis.first_party_only_sites) / analysis.num_partial:.1%})")

    pool = census.ecosystem.pool
    hh_span = max(3, num_sites // 250)
    categories = heavy_hitter_categories(
        analysis,
        lambda domain: pool.get(domain).category if domain in pool else None,
        min_span=hh_span,
    )
    print(f"\nHeavy-hitter IPv4-only domains (span >= {hh_span}), by category:")
    for category, count in categories.most_common():
        print(f"  {category.value if category else '(uncategorized)':26s} {count}")

    curve = whatif_adoption_curve(analysis)
    marks = [0.033, 0.10, 0.50, 1.0]
    print("\nWhat if IPv4-only domains adopted IPv6 in span order (Figure 10)?")
    for mark in marks:
        k = max(1, round(mark * len(curve)))
        adopted, full = curve[k - 1]
        print(f"  top {mark:.1%} of domains ({adopted}): "
              f"{full}/{analysis.num_partial} partial sites become full "
              f"({full / analysis.num_partial:.1%})")

    suspected, total = estimate_version_split_misclassification(dataset)
    print(f"\nPotential version-split misclassifications: {suspected}/{total} "
          f"({suspected / total:.1%} of partial sites)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1500)
