#!/usr/bin/env python3
"""Quickstart: the non-binary IPv6 view in three snapshots.

Runs a small version of each of the paper's three measurement
perspectives -- clients, servers, clouds -- through one lazy
:class:`repro.api.Study` session and prints the headline artifacts.
The census is built once and shared by the server and cloud views.
Takes well under a minute.

Usage::

    python examples/quickstart.py
"""

from repro.api import Study


def main() -> None:
    study = Study(days=21, sites=800, seed=7, residences=("A", "C"))

    print("=== Clients: how much of a household's traffic is IPv6? ===")
    print(study.artifact("table1").to_text())
    print("Same dual-stack access, very different IPv6 use: the fraction")
    print("depends on the services each household talks to.\n")

    print("=== Servers: how complete is website IPv6 support? ===")
    print(study.artifact("fig5").to_text())
    print("Most AAAA-enabled sites still depend on IPv4-only resources.\n")

    print("=== Clouds: which providers' tenants actually use IPv6? ===")
    print(study.artifact("table3", top=8).to_text())
    print("All clouds support IPv6; tenant uptake varies with how easy")
    print("each provider makes enabling it.")


if __name__ == "__main__":
    main()
