#!/usr/bin/env python3
"""Quickstart: the non-binary IPv6 view in three snapshots.

Runs a small version of each of the paper's three measurement
perspectives -- clients, servers, clouds -- and prints the headline
numbers.  Takes well under a minute.

Usage::

    python examples/quickstart.py
"""

from repro.core import (
    census_breakdown,
    cloud_provider_breakdown,
    attribute_domains,
    compute_residence_stats,
)
from repro.datasets import build_census, build_residence_study
from repro.util.tables import TextTable, format_count_pct


def client_view() -> None:
    print("=== Clients: how much of a household's traffic is IPv6? ===")
    study = build_residence_study(num_days=21, seed=7, residences=("A", "C"))
    table = TextTable(["residence", "GB", "IPv6 bytes", "IPv6 flows", "daily s.d."])
    for name, dataset in sorted(study.datasets.items()):
        stats = compute_residence_stats(dataset).external
        table.add_row([
            name,
            f"{stats.total_gb:.1f}",
            f"{stats.byte_fraction_overall:.1%}",
            f"{stats.flow_fraction_overall:.1%}",
            f"{stats.byte_fraction_daily_std:.2f}",
        ])
    print(table.render())
    print("Same dual-stack access, very different IPv6 use: the fraction")
    print("depends on the services each household talks to.\n")


def server_view() -> "object":
    print("=== Servers: how complete is website IPv6 support? ===")
    census = build_census(num_sites=800, seed=7)
    breakdown = census_breakdown(census.dataset)
    conn = breakdown.connection_success
    print(f"sites crawled:      {breakdown.total}")
    print(f"loading failures:   {breakdown.nxdomain + breakdown.other_failure}")
    print(f"IPv4-only:          {format_count_pct(breakdown.ipv4_only, conn)}")
    print(f"IPv6-partial:       {format_count_pct(breakdown.ipv6_partial, conn)}")
    print(f"IPv6-full:          {format_count_pct(breakdown.ipv6_full, conn)}")
    print("Most AAAA-enabled sites still depend on IPv4-only resources.\n")
    return census


def cloud_view(census) -> None:
    print("=== Clouds: which providers' tenants actually use IPv6? ===")
    eco = census.ecosystem
    views = attribute_domains(census.dataset, eco.routing, eco.registry)
    table = TextTable(["provider", "domains", "IPv6-full", "IPv6-only"])
    for stats in cloud_provider_breakdown(views)[:8]:
        table.add_row([
            stats.org.name,
            stats.total,
            f"{stats.share(stats.ipv6_full):.1%}",
            f"{stats.share(stats.ipv6_only):.1%}",
        ])
    print(table.render())
    print("All clouds support IPv6; tenant uptake varies with how easy")
    print("each provider makes enabling it.")


def main() -> None:
    client_view()
    census = server_view()
    cloud_view(census)


if __name__ == "__main__":
    main()
