"""Figures 14/15: MSTL of byte fractions at residences B and C, full period."""

import numpy as np
import pytest

from repro.core import hourly_fraction_series, mstl
from repro.util.tables import render_series


@pytest.mark.parametrize("residence", ["B", "C"])
def test_fig14_15_mstl_full_period(residence_study, benchmark, report, residence):
    dataset = residence_study.dataset(residence)
    series = hourly_fraction_series(dataset, metric="bytes")

    result = benchmark.pedantic(
        lambda: mstl(series, [24, 168]), rounds=1, iterations=1
    )

    hours = np.arange(series.size, dtype=float)
    figure = "fig14" if residence == "B" else "fig15"
    lines = [
        f"Figure {'14' if residence == 'B' else '15'}: MSTL of residence "
        f"{residence}'s IPv6 byte fraction over {residence_study.num_days} days",
        render_series("observed", hours, result.observed, max_points=16),
        render_series("trend   ", hours, result.trend, max_points=16),
        render_series("daily   ", hours, result.seasonal(24), max_points=16),
        render_series("weekly  ", hours, result.seasonal(168), max_points=16),
        render_series("residual", hours, result.residual, max_points=16),
    ]
    report(f"{figure}_mstl_{residence}", "\n".join(lines))

    assert np.allclose(result.reconstruction(), series)
    # Long-term trend stays inside the observable range and moves slowly.
    assert result.trend.min() > -0.1 and result.trend.max() < 1.1
    assert np.abs(np.diff(result.trend)).max() < 0.05
    # A diurnal component exists at both residences.
    assert result.seasonal(24).std() > 0.005
