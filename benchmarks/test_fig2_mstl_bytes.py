"""Figure 2: MSTL decomposition of residence A's IPv6 byte fraction.

The paper shows one month (March 2025) so the daily/weekly components are
visible, with the spring-break occupancy dip (March 16-19 = days 135-138
of the study) pulling the observed fraction down.
"""

import numpy as np

from repro.core import hourly_fraction_series, mstl
from repro.util.tables import render_series

MARCH_START_DAY = 120
MARCH_DAYS = 31


def test_fig2_mstl_bytes(residence_study, benchmark, report):
    dataset = residence_study.dataset("A")
    series = hourly_fraction_series(
        dataset, metric="bytes", start_day=MARCH_START_DAY, num_days=MARCH_DAYS
    )

    result = benchmark.pedantic(
        lambda: mstl(series, [24, 168]), rounds=1, iterations=1
    )

    hours = np.arange(series.size, dtype=float)
    lines = [
        "Figure 2: MSTL of residence A's hourly IPv6 byte fraction "
        f"(days {MARCH_START_DAY}..{MARCH_START_DAY + MARCH_DAYS - 1})",
        render_series("observed", hours, result.observed, max_points=16),
        render_series("trend   ", hours, result.trend, max_points=16),
        render_series("daily   ", hours, result.seasonal(24), max_points=16),
        render_series("weekly  ", hours, result.seasonal(168), max_points=16),
        render_series("residual", hours, result.residual, max_points=16),
    ]
    daily_profile = result.seasonal(24).reshape(-1, 24).mean(axis=0)
    lines.append(
        "mean daily profile by hour: "
        + ", ".join(f"{h:02d}:{v:+.3f}" for h, v in enumerate(daily_profile))
    )
    report("fig2_mstl_bytes", "\n".join(lines))

    # Exact additivity of the decomposition.
    assert np.allclose(result.reconstruction(), series)
    # A real diurnal component exists (paper: strong daily peaks).
    assert result.seasonal(24).std() > 0.01
    # The weekly component is weak relative to daily (paper section 3.3).
    assert result.seasonal(168).std() < 3.0 * result.seasonal(24).std()
    # Night trough: the fraction dips when humans sleep.
    night = daily_profile[3:6].mean()
    waking = daily_profile[10:23].mean()
    assert waking > night
    # Spring break (days 135-138) depresses the trend vs. the month mean.
    day_offset = (135 - MARCH_START_DAY) * 24
    break_trend = result.trend[day_offset : day_offset + 4 * 24].mean()
    assert break_trend < result.trend.mean() + 0.02
