"""Shared fixtures for the benchmark harness, plus per-phase timing.

Every table and figure of the paper has one bench module.  The expensive
universes (the five-residence traffic study and the web census) come from
one bench-scale :class:`repro.api.Study` session, so they are built once
per process and shared; each bench times only its *analysis* and emits
the paper-style rows/series both to stdout and to
``benchmarks/results/<name>.txt`` so the regenerated "figures" survive
output capture.

The harness also records wall times -- the expensive builds (traffic,
census, cloud attribution) via the session fixtures and every bench's
analysis+render via the pytest report hook -- and writes them to
``benchmarks/results/BENCH_results.json`` at session end.  Committed (or
CI-archived) snapshots of that file give every future PR a perf
trajectory to compare against; see the README's Performance section for
how to read it.

Scale note: the paper measures 273 days of traffic and crawls 100k sites;
the bench scale (154 days, 4000 sites) reproduces every qualitative shape
in minutes.  Pass the paper scale through ``StudyConfig`` when time
permits.
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, TypeVar

import pytest

from repro.api import Study, StudyConfig

T = TypeVar("T")

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_RESULTS = RESULTS_DIR / "BENCH_results.json"

#: One session at the bench scale; every bench shares its builds.
SESSION = Study(StudyConfig())

#: Phase name -> wall seconds, written to BENCH_results.json at exit.
PHASES: dict[str, float] = {}

#: Historical reference: the record-loop implementation measured on the
#: 1-CPU dev container right before the columnar FlowFrame rewrite
#: (PR 2), bench scale, full `Study(StudyConfig())` + all 26 artifacts.
#: Kept in every snapshot so the trajectory has a fixed origin.
PRE_COLUMNAR_BASELINE = {
    "label": "pre-FlowFrame record loops (PR 2 baseline, 1 CPU)",
    "build:traffic": 34.2,
    "build:census": 32.4,
    "artifact:fig17": 28.0,
    "artifact:fig4": 16.9,
    "artifact:heavydays": 6.9,
    "artifact:longitudinal": 66.5,
    "end_to_end_all_artifacts": 196.5,
}


def record_phase(name: str, thunk: Callable[[], T]) -> T:
    """Run ``thunk`` and record its wall time under ``name`` (first call
    only: later calls hit the session cache and would record ~0)."""
    if name in PHASES:
        return thunk()
    start = time.perf_counter()
    value = thunk()
    PHASES[name] = time.perf_counter() - start
    return value


def emit(name: str, text: str) -> None:
    """Print a rendered table/series and persist it under results/."""
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def residence_study():
    """154 days of traffic at residences A-E (covers spring break)."""
    return record_phase("build:traffic", lambda: SESSION.traffic)


@pytest.fixture(scope="session")
def census():
    """The 4000-site census with five link clicks per site."""
    return record_phase("build:census", lambda: SESSION.census)


@pytest.fixture(scope="session")
def census_views(census):
    """Per-FQDN cloud attribution of the census."""
    return record_phase("build:cloud", lambda: SESSION.cloud)


@pytest.fixture(scope="session")
def observatory(census):
    """Probe rounds from the vantage fleet over the census universe."""
    return record_phase("build:observatory", lambda: SESSION.observatory)


#: The bench sweep grid: observatory-layer scenarios only, so the sweep
#: reuses the session's traffic and census builds outright and its cost
#: is pure overlay work.
WHATIF_BENCH_GRID = ("nat64:US", "block:CN@0.8", "accelerate:3")


@pytest.fixture(scope="session")
def whatif_sweep(observatory, residence_study):
    """A cache-reusing counterfactual sweep against the bench session.

    Depends on the baseline layer fixtures so their builds are recorded
    under their own phases; ``whatif:sweep`` then times pure overlay
    work (the cache-reuse contract, measured).
    """
    from repro.whatif.sweep import run_sweep

    return record_phase(
        "whatif:sweep",
        lambda: run_sweep(SESSION, WHATIF_BENCH_GRID, parallel=False),
    )


@pytest.fixture()
def report():
    return emit


def pytest_runtest_logreport(report):
    """Record each bench's analysis+render wall time as its own phase."""
    if report.when == "call":
        PHASES[f"bench:{report.nodeid}"] = report.duration


def pytest_sessionfinish(session, exitstatus):
    """Persist the phase timings so future PRs can compare against them."""
    if not PHASES:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": 1,
        "recorded_at": datetime.now(timezone.utc).isoformat(),
        "config": {
            "days": SESSION.config.days,
            "sites": SESSION.config.sites,
            "seed": SESSION.config.seed,
        },
        "machine": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "phases": {name: round(seconds, 4) for name, seconds in sorted(PHASES.items())},
        "total_wall_s": round(sum(PHASES.values()), 3),
        "reference": PRE_COLUMNAR_BASELINE,
    }
    BENCH_RESULTS.write_text(json.dumps(payload, indent=2) + "\n")
