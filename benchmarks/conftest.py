"""Shared fixtures for the benchmark harness.

Every table and figure of the paper has one bench module.  The expensive
universes (the five-residence traffic study and the web census) come from
one bench-scale :class:`repro.api.Study` session, so they are built once
per process and shared; each bench times only its *analysis* and emits
the paper-style rows/series both to stdout and to
``benchmarks/results/<name>.txt`` so the regenerated "figures" survive
output capture.

Scale note: the paper measures 273 days of traffic and crawls 100k sites;
the bench scale (154 days, 4000 sites) reproduces every qualitative shape
in minutes.  Pass the paper scale through ``StudyConfig`` when time
permits.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import Study, StudyConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: One session at the bench scale; every bench shares its builds.
SESSION = Study(StudyConfig())


def emit(name: str, text: str) -> None:
    """Print a rendered table/series and persist it under results/."""
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def residence_study():
    """154 days of traffic at residences A-E (covers spring break)."""
    return SESSION.traffic


@pytest.fixture(scope="session")
def census():
    """The 4000-site census with five link clicks per site."""
    return SESSION.census


@pytest.fixture(scope="session")
def census_views(census):
    """Per-FQDN cloud attribution of the census."""
    return SESSION.cloud


@pytest.fixture()
def report():
    return emit
