"""Figure 3: cumulative distribution of per-AS IPv6 byte fractions."""

from repro.core import as_traffic_breakdown
from repro.util.stats import empirical_cdf
from repro.util.tables import render_series


def test_fig3_as_cdf(residence_study, benchmark, report):
    def compute():
        return {
            name: as_traffic_breakdown(dataset)
            for name, dataset in residence_study.datasets.items()
        }

    breakdowns = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = ["Figure 3: CDF of per-AS IPv6 byte fractions by residence"]
    cdfs = {}
    for name, entries in sorted(breakdowns.items()):
        if not entries:
            continue
        fractions = [entry.fraction_v6 for entry in entries]
        cdfs[name] = empirical_cdf(fractions)
        lines.append(render_series(f"residence {name} ({len(entries)} ASes)",
                                   cdfs[name].points, cdfs[name].fractions))
    report("fig3_as_cdf", "\n".join(lines))

    # Shape (paper section 3.4):
    for name, entries in breakdowns.items():
        if len(entries) < 8:
            continue
        zero_share = sum(1 for e in entries if e.fraction_v6 == 0.0) / len(entries)
        # "At least one quarter of ASes at every location provide no IPv6."
        assert zero_share >= 0.15, f"residence {name}: only {zero_share:.0%} zero-v6"
    # Residence C's best AS stays far below 1.0 (broken device conjecture).
    c_entries = breakdowns["C"]
    assert max(e.fraction_v6 for e in c_entries) < 0.6
    # IPv6-dominant ASes exist at the dual-stack-verified residences.
    a_entries = breakdowns["A"]
    assert max(e.fraction_v6 for e in a_entries) > 0.8
