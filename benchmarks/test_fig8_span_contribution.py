"""Figure 8: span and median contribution of IPv4-only domains."""

import numpy as np

from repro.core import analyze_dependencies
from repro.util.stats import empirical_cdf
from repro.util.tables import render_series


def test_fig8_span_contribution(census, benchmark, report):
    analysis = benchmark.pedantic(
        lambda: analyze_dependencies(census.dataset), rounds=1, iterations=1
    )

    impacts = list(analysis.domain_impacts.values())
    spans = np.array([impact.span for impact in impacts])
    contributions = np.array([impact.median_contribution for impact in impacts])
    span_cdf = empirical_cdf(spans)
    contribution_cdf = empirical_cdf(contributions)

    lines = [
        f"Figure 8: {len(impacts)} IPv4-only eTLD+1 domains on partial sites",
        render_series("span CDF               ", span_cdf.points, span_cdf.fractions),
        render_series("median-contribution CDF",
                      contribution_cdf.points, contribution_cdf.fractions),
        f"span p50={np.percentile(spans, 50):.0f} p75={np.percentile(spans, 75):.0f} "
        f"p95={np.percentile(spans, 95):.0f} max={spans.max()}   (paper: 1 / 2 / 20 / >1000)",
        f"median contribution p25={np.percentile(contributions, 25):.2f} "
        f"p50={np.percentile(contributions, 50):.2f} p75={np.percentile(contributions, 75):.2f} "
        f"p95={np.percentile(contributions, 95):.2f}   (paper: 0.01 / 0.04 / 0.13 / 0.72)",
    ]
    report("fig8_span_contribution", "\n".join(lines))

    # Shape (paper): the span distribution is highly skewed with a long
    # tail -- most domains touch one or two sites; a few touch very many.
    assert np.percentile(spans, 75) <= 4
    assert spans.max() >= 10 * np.percentile(spans, 75)
    assert spans.max() >= 0.02 * analysis.num_partial
    # High-span domains supply a large share of their dependents'
    # IPv4-only resources at the tail of the contribution distribution.
    assert np.percentile(contributions, 95) > np.percentile(contributions, 50)
    assert 0.0 < np.percentile(contributions, 50) <= 1.0
