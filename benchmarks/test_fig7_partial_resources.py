"""Figure 7: count and fraction of IPv4-only resources on partial sites."""

import numpy as np

from repro.core import analyze_dependencies
from repro.util.stats import empirical_cdf
from repro.util.tables import render_series


def test_fig7_partial_resources(census, benchmark, report):
    analysis = benchmark.pedantic(
        lambda: analyze_dependencies(census.dataset), rounds=1, iterations=1
    )

    counts = np.array(analysis.v4only_resource_counts)
    fractions = np.array(analysis.v4only_resource_fractions)
    count_cdf = empirical_cdf(counts)
    fraction_cdf = empirical_cdf(fractions)
    lines = [
        f"Figure 7: IPv4-only resources on {analysis.num_partial} IPv6-partial sites",
        render_series("count CDF   ", count_cdf.points, count_cdf.fractions),
        render_series("fraction CDF", fraction_cdf.points, fraction_cdf.fractions),
        f"count     p25={np.percentile(counts, 25):.0f} p50={np.percentile(counts, 50):.0f} "
        f"p75={np.percentile(counts, 75):.0f}   (paper: 3 / 7 / 21)",
        f"fraction  p25={np.percentile(fractions, 25):.2f} p50={np.percentile(fractions, 50):.2f} "
        f"p75={np.percentile(fractions, 75):.2f}   (paper: 0.09 / 0.21 / 0.41)",
    ]
    report("fig7_partial_resources", "\n".join(lines))

    # Shape (paper): most partial sites depend on multiple IPv4-only
    # resources, yet the majority of their resources are IPv6-capable.
    assert np.percentile(counts, 50) >= 2
    assert np.percentile(counts, 75) > np.percentile(counts, 25)
    assert np.percentile(fractions, 75) < 0.55  # most resources are v6-ready
    assert fractions.min() > 0.0
