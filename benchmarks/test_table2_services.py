"""Table 2: per-service IPv6 adoption versus enablement policy."""

from repro.cloud.providers import Ipv6Policy
from repro.core import service_adoption_table
from repro.util.tables import TextTable


def test_table2_services(census, census_views, benchmark, report):
    eco = census.ecosystem

    table_rows = benchmark.pedantic(
        lambda: service_adoption_table(census_views, eco.service_of_cname, min_domains=10),
        rounds=1,
        iterations=1,
    )

    table = TextTable(
        ["provider", "service", "IPv6 policy", "# ready", "# total", "% ready"],
        title="Table 2: IPv6 adoption across cloud services",
    )
    for row in table_rows:
        table.add_row([
            row.provider.name, row.service.name, row.service.policy.value,
            row.ipv6_ready, row.total, f"{row.share:.1%}",
        ])
    report("table2_services", table.render())

    by_policy: dict[Ipv6Policy, list[float]] = {}
    for row in table_rows:
        by_policy.setdefault(row.service.policy, []).append(row.share)

    def mean(policy: Ipv6Policy) -> float | None:
        values = by_policy.get(policy)
        return sum(values) / len(values) if values else None

    always_on = mean(Ipv6Policy.ALWAYS_ON)
    default_on = mean(Ipv6Policy.DEFAULT_ON)
    opt_in = mean(Ipv6Policy.OPT_IN)
    code_change = mean(Ipv6Policy.OPT_IN_CODE_CHANGE)
    none = mean(Ipv6Policy.NONE)

    # Table 2's central claim: the policy ladder decides adoption.
    assert always_on == 1.0  # "Always On ... 100.0%"
    assert default_on is not None and 0.45 <= default_on <= 0.95
    assert opt_in is not None and opt_in < default_on - 0.2
    if code_change is not None:
        assert code_change < 0.15  # S3-style: near zero after years
    if none is not None:
        assert none == 0.0

    # The S3 row specifically (paper: 0.4%).
    s3 = [r for r in table_rows if r.service.name == "Amazon S3"]
    if s3:
        assert s3[0].share < 0.1
    # Azure Front Door cannot be disabled: always exactly 100%.
    afd = [r for r in table_rows if "Front Door" in r.service.name]
    if afd:
        assert afd[0].share == 1.0
