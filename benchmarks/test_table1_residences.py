"""Table 1: per-residence traffic volume, flow counts, IPv6 fractions."""

from repro.core import compute_residence_stats
from repro.util.tables import TextTable


def test_table1_residences(residence_study, benchmark, report):
    stats_by_residence = benchmark.pedantic(
        lambda: {
            name: compute_residence_stats(dataset)
            for name, dataset in residence_study.datasets.items()
        },
        rounds=1,
        iterations=1,
    )

    table = TextTable(
        ["res", "scope", "total GB", "v4 GB", "v6 GB", "frac v6",
         "daily mean (s.d.)", "flows", "frac v6 flows", "daily mean (s.d.)"],
        title="Table 1: per-residence IPv6 traffic volume and flow count",
    )
    for name in sorted(stats_by_residence):
        stats = stats_by_residence[name]
        for scope in (stats.external, stats.internal):
            table.add_row([
                name, scope.scope.value,
                f"{scope.total_gb:.2f}",
                f"{scope.v4_bytes / 1e9:.2f}",
                f"{scope.v6_bytes / 1e9:.2f}",
                f"{scope.byte_fraction_overall:.3f}",
                f"{scope.byte_fraction_daily_mean:.3f} ({scope.byte_fraction_daily_std:.3f})",
                scope.total_flows,
                f"{scope.flow_fraction_overall:.3f}",
                f"{scope.flow_fraction_daily_mean:.3f} ({scope.flow_fraction_daily_std:.3f})",
            ])
    report("table1_residences", table.render())

    # Shape assertions (paper Table 1):
    external = {n: s.external for n, s in stats_by_residence.items()}
    fractions = [s.byte_fraction_overall for s in external.values()]
    # Wide spread across residences (paper: 0.07 .. 0.68 by bytes).
    assert max(fractions) - min(fractions) > 0.3
    assert max(fractions) > 0.5 and min(fractions) < 0.25
    # High day-to-day variation somewhere (paper: s.d. > 0.15).
    assert max(s.byte_fraction_daily_std for s in external.values()) > 0.12
    # Flow majorities and byte majorities disagree for some residences.
    byte_majority_v6 = sum(1 for s in external.values() if s.byte_fraction_overall > 0.5)
    flow_majority_v6 = sum(1 for s in external.values() if s.flow_fraction_overall > 0.5)
    assert byte_majority_v6 >= 1 and flow_majority_v6 >= 1
    # Internal traffic is a tiny share of external at most residences.
    small_internal = sum(
        1
        for s in stats_by_residence.values()
        if s.internal.total_bytes < 0.05 * max(1, s.external.total_bytes)
    )
    assert small_internal >= 3
    # Residence D: internal flows exceed external (partial visibility + NAS).
    d = stats_by_residence["D"]
    assert d.internal.total_flows > d.external.total_flows
    # Residence C (broken CPE): low external, healthy internal IPv6.
    c = stats_by_residence["C"]
    assert c.external.byte_fraction_overall < 0.25
    assert c.internal.flow_fraction_overall > c.external.flow_fraction_overall
