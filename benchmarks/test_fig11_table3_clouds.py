"""Figure 11 / Table 3: per-cloud tenant IPv6 readiness breakdown."""

from repro.core import cloud_provider_breakdown, overall_domain_counts
from repro.util.tables import TextTable


def test_fig11_table3_clouds(census_views, benchmark, report):
    stats = benchmark.pedantic(
        lambda: cloud_provider_breakdown(census_views), rounds=1, iterations=1
    )

    total, ipv4_only, full, v6_only = overall_domain_counts(census_views)
    table = TextTable(
        ["organization", "# domains", "IPv4-only", "IPv6-full", "IPv6-only"],
        title="Figure 11 / Table 3: domains per cloud by IPv6 readiness",
    )
    table.add_row([
        "Overall", total,
        f"{ipv4_only} ({ipv4_only / total:.1%})",
        f"{full} ({full / total:.1%})",
        f"{v6_only} ({v6_only / total:.1%})",
    ])
    for s in stats[:15]:
        table.add_row([
            s.org.name, s.total,
            f"{s.ipv4_only} ({s.share(s.ipv4_only):.1%})",
            f"{s.ipv6_full} ({s.share(s.ipv6_full):.1%})",
            f"{s.ipv6_only} ({s.share(s.ipv6_only):.1%})",
        ])
    report("fig11_table3_clouds", table.render())

    by_name = {s.org.name: s for s in stats}
    cloudflare = by_name["Cloudflare, Inc."]
    amazon = by_name["Amazon.com, Inc."]
    google = by_name["Google LLC"]

    # Shape (paper Table 3): Cloudflare ~85% full, Google ~68%, Amazon ~25%.
    assert cloudflare.share(cloudflare.ipv6_full) > 0.55
    assert google.share(google.ipv6_full) > 0.5
    assert amazon.share(amazon.ipv6_full) < 0.5
    assert cloudflare.share(cloudflare.ipv6_full) > amazon.share(amazon.ipv6_full) + 0.2

    # The Bunnyway artifact: nearly all its domains are IPv6-only, because
    # their A records sit on Datacamp (paper section 5.1).
    bunny = by_name.get("BUNNYWAY, informacijske storitve d.o.o.")
    if bunny is not None and bunny.total >= 5:
        assert bunny.share(bunny.ipv6_only) > 0.9

    # The dual-Akamai artifact: the legacy org is overwhelmingly
    # IPv4-only while the international org carries the AAAA side.
    tech = by_name.get("Akamai Technologies, Inc.")
    intl = by_name.get("Akamai International B.V.")
    if tech is not None and tech.total >= 5:
        assert tech.share(tech.ipv4_only) > 0.85
    if intl is not None and intl.total >= 5:
        assert intl.ipv6_only > 0

    # The top three clouds host most observed domains (paper: ~60%).
    top3 = sum(s.total for s in stats[:3])
    assert top3 > 0.4 * total
