"""Figure 17: per-domain (reverse-DNS eTLD+1) IPv6 fraction box stats."""

from repro.core import shared_domain_box_stats
from repro.util.tables import TextTable

#: Scaled-down volume threshold (paper: 100 MB over nine months).
MIN_BYTES = 50_000_000


def test_fig17_domains(residence_study, benchmark, report):
    rows = benchmark.pedantic(
        lambda: shared_domain_box_stats(
            residence_study.datasets, min_residences=3, min_bytes=MIN_BYTES
        ),
        rounds=1,
        iterations=1,
    )

    table = TextTable(
        ["domain", "min", "p25", "median", "p75", "max", "residences"],
        title="Figure 17: IPv6 fraction by rDNS domain (3+ residences, volume filter)",
    )
    for domain, stats in rows:
        table.add_row([
            domain, f"{stats.minimum:.2f}", f"{stats.p25:.2f}",
            f"{stats.median:.2f}", f"{stats.p75:.2f}", f"{stats.maximum:.2f}",
            stats.n,
        ])
    report("fig17_domains", table.render())

    assert rows, "expected shared prominent domains"
    by_domain = dict(rows)
    # Paper's named laggards: zero IPv6 wherever observed.
    for laggard in ("zoom.us", "justin.tv", "github.com", "usc.edu", "wp.com"):
        if laggard in by_domain:
            assert by_domain[laggard].maximum == 0.0, laggard
    # Leaders exist: some domain is consistently above 80%.
    assert any(stats.median > 0.8 for _, stats in rows)
    # Rows are sorted by median, descending.
    medians = [stats.median for _, stats in rows]
    assert medians == sorted(medians, reverse=True)
