"""Observatory benches: the binary tables and the three-way contrast.

The observatory produces the *binary* availability numbers prior work
reports, so the paper's thesis can be rendered as one table: per
country, "IPv6 available" (binary, vantage-policy dependent) next to
graded census readiness and the traffic study's actual IPv6 byte
fraction -- three answers to "how adopted is IPv6?" that visibly
disagree.
"""

from repro.observatory import (
    country_availability,
    policy_verdicts,
    takeoff_series,
    three_way_contrast,
)
from repro.observatory.vantage import NetworkPolicy
from repro.util.tables import TextTable, render_series


def test_observatory_availability(observatory, benchmark, report):
    rows = benchmark.pedantic(
        lambda: country_availability(observatory), rounds=1, iterations=1
    )

    table = TextTable(
        ["country", "vantages", "probes", "AAAA seen", "v6 available",
         "client used v6"],
        title="Observatory: per-country IPv6 availability (all rounds)",
    )
    for row in rows:
        table.add_row([
            row.country, row.vantages, row.probes,
            f"{row.aaaa_share:.1%}", f"{row.available_share:.1%}",
            f"{row.client_v6_share:.1%}",
        ])
    report("obs_availability", table.render())

    assert [r.country for r in rows] == list(observatory.countries)
    shares = [r.available_share for r in rows]
    # The same universe yields different binary answers per country.
    assert max(shares) - min(shares) > 0.2


def test_observatory_takeoff(observatory, benchmark, report):
    series = benchmark.pedantic(
        lambda: takeoff_series(observatory), rounds=1, iterations=1
    )

    days = [float(d) for d in series.days]
    lines = [render_series("overall", days, list(series.overall))]
    lines.extend(
        render_series(country, days, list(shares))
        for country, shares in series.by_country.items()
    )
    report("obs_takeoff", "\n".join(lines))

    assert len(series.overall) == observatory.num_rounds
    assert all(0.0 <= share <= 1.0 for share in series.overall)
    # The takeoff: mid-window adopters lift availability where the
    # vantage can see real AAAA records...
    assert series.overall[-1] > series.overall[0]
    assert series.by_country["NL"][-1] > series.by_country["NL"][0]
    # ...while v4-only transit stays pinned at zero forever.
    assert all(share == 0.0 for share in series.by_country["ZA"])


def test_observatory_policies(observatory, benchmark, report):
    rows = benchmark.pedantic(
        lambda: policy_verdicts(observatory), rounds=1, iterations=1
    )

    table = TextTable(
        ["policy", "vantages", "probes", "available", "top verdicts"],
        title="Observatory: probe verdicts by network policy",
    )
    for entry in rows:
        top = sorted(entry.verdict_counts.items(), key=lambda kv: -kv[1])[:3]
        table.add_row([
            entry.policy.value, entry.vantages, entry.probes,
            f"{entry.available_share:.1%}",
            ", ".join(f"{v.name}={c}" for v, c in top),
        ])
    report("obs_policies", table.render())

    by_policy = {entry.policy: entry for entry in rows}
    # NAT64 overcounts native; v4-only transit reports zero.
    assert (
        by_policy[NetworkPolicy.NAT64].available_share
        > by_policy[NetworkPolicy.NATIVE].available_share
    )
    assert by_policy[NetworkPolicy.V4_ONLY].available_share == 0.0


def test_three_way_contrast(observatory, census, residence_study, benchmark, report):
    rows = benchmark.pedantic(
        lambda: three_way_contrast(observatory, census.dataset, residence_study),
        rounds=1,
        iterations=1,
    )

    table = TextTable(
        ["country", "binary: v6 available", "graded: full", "graded: partial",
         "graded: v4-only", "usage: v6 byte share"],
        title="Three-way contrast: binary availability vs graded readiness "
        "vs actual usage",
    )
    for row in rows:
        table.add_row([
            row.country, f"{row.available_share:.1%}",
            f"{row.census_full_share:.1%}", f"{row.census_partial_share:.1%}",
            f"{row.census_v4only_share:.1%}",
            f"{row.traffic_v6_byte_fraction:.1%}",
        ])
    report("contrast", table.render())

    assert rows
    shares = [row.available_share for row in rows]
    # Binary answers disagree across countries...
    assert max(shares) - min(shares) > 0.2
    # ...while the graded and usage columns are country-independent truths.
    assert len({row.census_full_share for row in rows}) == 1
    assert len({row.traffic_v6_byte_fraction for row in rows}) == 1
    # And the binary check overstates full readiness somewhere (NAT64).
    assert any(row.binary_minus_graded > 0.2 for row in rows)
