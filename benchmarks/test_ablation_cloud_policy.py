"""Ablation: what if a service's IPv6 enablement policy changed?

Table 2's causal claim is that policy, not tenant interest, decides
adoption.  This ablation holds the tenant population fixed (same seeds,
same inclinations) and sweeps one service's policy from
opt-in-by-code-change to always-on, measuring tenant adoption directly
through the placement machinery -- the counterfactual the paper's
recommendation ("default-on, no-disable") rests on.
"""

from repro.cloud.providers import CloudService, Ipv6Policy
from repro.util.rng import RngStream
from repro.util.tables import TextTable

TENANTS = 3000
POLICIES = (
    Ipv6Policy.NONE,
    Ipv6Policy.OPT_IN_CODE_CHANGE,
    Ipv6Policy.OPT_IN,
    Ipv6Policy.DEFAULT_ON,
    Ipv6Policy.ALWAYS_ON,
)


def adoption_under(policy: Ipv6Policy) -> float:
    """Adoption rate of one service under ``policy`` for a fixed tenant
    population (identical inclinations and random draws)."""
    service = CloudService(
        name="svc", cname_suffix="svc.ablation.example", policy=policy,
        weight=1.0, v4_org_id="org", v6_org_id="org",
    )
    inclination_rng = RngStream(42, "inclinations")
    decision_rng = RngStream(42, "decisions")
    enabled = 0
    for _ in range(TENANTS):
        inclination = inclination_rng.random()
        if service.tenant_enables_ipv6(inclination, decision_rng):
            enabled += 1
    return enabled / TENANTS


def test_ablation_cloud_policy(benchmark, report):
    rates = benchmark.pedantic(
        lambda: {policy: adoption_under(policy) for policy in POLICIES},
        rounds=1,
        iterations=1,
    )

    table = TextTable(
        ["policy", "tenant adoption"],
        title=f"Ablation: one service, {TENANTS} fixed tenants, policy swept",
    )
    for policy in POLICIES:
        table.add_row([policy.value, f"{rates[policy]:.1%}"])
    report("ablation_cloud_policy", table.render())

    # The policy ladder (Table 2): every rung strictly improves adoption.
    assert rates[Ipv6Policy.NONE] == 0.0
    assert rates[Ipv6Policy.OPT_IN_CODE_CHANGE] < 0.05  # S3-style: ~0.4%
    assert rates[Ipv6Policy.OPT_IN] < 0.35
    assert rates[Ipv6Policy.DEFAULT_ON] > rates[Ipv6Policy.OPT_IN] + 0.2
    assert rates[Ipv6Policy.ALWAYS_ON] == 1.0
    ladder = [rates[p] for p in POLICIES]
    assert ladder == sorted(ladder)
