"""Figure 4: per-AS IPv6 byte fractions across residences, by category."""

from repro.core import shared_as_box_stats
from repro.net.asn import AsCategory
from repro.util.tables import TextTable


def test_fig4_as_categories(residence_study, benchmark, report):
    grouped = benchmark.pedantic(
        lambda: shared_as_box_stats(residence_study.datasets, min_residences=3),
        rounds=1,
        iterations=1,
    )

    table = TextTable(
        ["category", "AS", "asn", "min", "p25", "median", "p75", "max", "n"],
        title="Figure 4: IPv6 byte fraction by AS (seen at 3+ residences), by category",
    )
    for category in AsCategory:
        for info, stats in grouped.get(category, []):
            table.add_row([
                category.value, info.name, info.asn,
                f"{stats.minimum:.2f}", f"{stats.p25:.2f}", f"{stats.median:.2f}",
                f"{stats.p75:.2f}", f"{stats.maximum:.2f}", stats.n,
            ])
    report("fig4_as_categories", table.render())

    # Shape (paper): ISPs consistently low; Web/Social consistently high
    # except ByteDance; named laggards at zero.
    isps = grouped.get(AsCategory.ISP, [])
    web = grouped.get(AsCategory.WEB_SOCIAL, [])
    assert web, "web/social ASes must be observed at 3+ residences"
    for info, stats in isps:
        assert stats.median <= 0.5, f"{info.name} median too high for an ISP"
    web_medians = {info.name: stats.median for info, stats in web}
    bytedance = web_medians.pop("BYTEDANCE", None)
    assert web_medians and min(web_medians.values()) > 0.5
    if bytedance is not None:
        assert bytedance < 0.3  # the paper's explicit exception
    # Zoom lags among software ASes (paper: zero IPv6).
    for info, stats in grouped.get(AsCategory.SOFTWARE, []):
        if info.asn == 30103:
            assert stats.maximum == 0.0
