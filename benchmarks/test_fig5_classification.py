"""Figure 5: classification of the top sites (table + Sankey counts)."""

from repro.core import census_breakdown
from repro.util.tables import TextTable, format_count_pct


def test_fig5_classification(census, benchmark, report):
    breakdown = benchmark.pedantic(
        lambda: census_breakdown(census.dataset), rounds=1, iterations=1
    )

    b = breakdown
    conn = b.connection_success
    table = TextTable(["category", "count (%)"],
                      title="Figure 5: site classification breakdown")
    table.add_row(["Total", b.total])
    table.add_row(["Loading-Failure (NXDOMAIN)", b.nxdomain])
    table.add_row(["Loading-Failure (Others)", b.other_failure])
    table.add_row(["Connection Success", format_count_pct(conn, conn)])
    table.add_row(["Unknown Primary Domain", format_count_pct(b.unknown_primary, conn)])
    table.add_row(["IPv4-only (A-only domain)", format_count_pct(b.ipv4_only, conn)])
    table.add_row(["AAAA-enabled Domain", format_count_pct(b.aaaa_enabled, conn)])
    table.add_row(["IPv6-partial (some A-only resources)", format_count_pct(b.ipv6_partial, conn)])
    table.add_row(["IPv6-full (AAAA for all resources)", format_count_pct(b.ipv6_full, conn)])
    table.add_row(["Browser Used IPv4", format_count_pct(b.browser_used_ipv4, conn)])
    table.add_row(["Browser Used IPv6 Only", format_count_pct(b.browser_used_ipv6_only, conn)])
    report("fig5_classification", table.render())

    # Partition identities hold exactly (the Sankey's conservation).
    breakdown.check_invariants()
    # Shape (paper, July 2025): failures ~18%; of connected sites 57.6%
    # IPv4-only, 29.8% partial, 12.6% full; ~1 in 10 full sites used IPv4.
    failure_share = (b.nxdomain + b.other_failure) / b.total
    assert 0.12 <= failure_share <= 0.25
    assert 0.45 <= b.share_of_connected(b.ipv4_only) <= 0.70
    assert b.share_of_connected(b.ipv6_partial) > b.share_of_connected(b.ipv6_full)
    assert 0.05 <= b.share_of_connected(b.ipv6_full) <= 0.30
    assert 0 < b.browser_used_ipv4 < 0.5 * b.ipv6_full
    # The majority of AAAA-enabled sites are held back by resources.
    assert b.ipv6_partial / b.aaaa_enabled > 0.5
