"""Figure 9: categories of heavy-hitter IPv4-only resource domains."""

from repro.core import analyze_dependencies, heavy_hitter_categories
from repro.util.tables import TextTable


def test_fig9_categories(census, benchmark, report):
    pool = census.ecosystem.pool
    num_sites = len(census.dataset.results)
    # The paper's threshold is span >= 100 over 100k sites; scale it.
    min_span = max(3, round(num_sites * 100 / 100_000))

    def compute():
        analysis = analyze_dependencies(census.dataset)
        histogram = heavy_hitter_categories(
            analysis,
            lambda domain: pool.get(domain).category if domain in pool else None,
            min_span=min_span,
        )
        return analysis, histogram

    analysis, histogram = benchmark.pedantic(compute, rounds=1, iterations=1)

    table = TextTable(
        ["category", "heavy-hitter IPv4-only domains"],
        title=f"Figure 9: categories of IPv4-only domains with span >= {min_span}",
    )
    for category, count in histogram.most_common():
        table.add_row([category.value if category else "(uncategorized)", count])
    report("fig9_categories", table.render())

    # Shape (paper): advertising is the most frequent category among
    # heavy hitters, accounting for the largest share.
    assert histogram, "expected heavy hitters at this scale"
    top_category, top_count = histogram.most_common(1)[0]
    assert top_category is not None and top_category.value == "ads"
    assert top_count >= 0.3 * sum(histogram.values())
