"""Figure 5 (longitudinal): the three measurement rounds and their drift.

The paper crawls in October 2024, April 2025, and July 2025, finding a
slight but consistent shift: IPv4-only down ~0.6 points, IPv6-full up by
the same, with the partition identities holding in every round.
"""

from repro.core.longitudinal import adoption_change, compare_snapshots, run_snapshots

SNAPSHOT_SITES = 1200


def test_fig5_longitudinal(benchmark, report):
    snapshots = benchmark.pedantic(
        lambda: run_snapshots(num_sites=SNAPSHOT_SITES, seed=42),
        rounds=1,
        iterations=1,
    )

    rendered = compare_snapshots(snapshots)
    change = adoption_change(snapshots)
    report(
        "fig5_longitudinal",
        rendered + f"\n\nIPv6-full share change over the rounds: {change:+.1%} "
        "(paper: +0.6pp over nine months)",
    )

    # Partition identities hold in every round.
    for snapshot in snapshots:
        snapshot.breakdown.check_invariants()
    # Adoption drifts forward: IPv6-full grows, IPv4-only shrinks.
    assert change >= 0.0
    first, last = snapshots[0].breakdown, snapshots[-1].breakdown
    assert (
        last.ipv4_only / last.connection_success
        <= first.ipv4_only / first.connection_success + 1e-9
    )
    # The drift is modest, as in the paper (not a regime change).
    assert change < 0.1
