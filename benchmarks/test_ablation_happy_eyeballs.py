"""Ablation: Happy Eyeballs timing and the "Browser Used IPv4" population.

The paper attributes the ~1-in-10 IPv6-capable page loads that still ride
IPv4 to Happy Eyeballs races lost by IPv6 (section 4.2).  This ablation
sweeps the AAAA-lateness probability to show the mechanism: the more
often the AAAA answer misses the RFC 8305 resolution-delay window, the
more full sites report IPv4 use -- while the *classification* stays
unchanged, because it relies on availability, not the race winner.
"""

from repro.core import census_breakdown
from repro.crawler.browser import BrowserConfig
from repro.crawler.crawl import CensusConfig, WebCensus
from repro.util.tables import TextTable
from repro.web.ecosystem import WebEcosystem, WebEcosystemConfig

ABLATION_SITES = 800
SWEEP = (0.0, 0.01, 0.05, 0.20)


def test_ablation_happy_eyeballs(benchmark, report):
    ecosystem = WebEcosystem(WebEcosystemConfig(num_sites=ABLATION_SITES, seed=42))

    def compute():
        outcomes = []
        for probability in SWEEP:
            config = CensusConfig(
                browser=BrowserConfig(slow_aaaa_probability=probability), seed=42
            )
            breakdown = census_breakdown(WebCensus(ecosystem, config).run())
            outcomes.append((probability, breakdown))
        return outcomes

    outcomes = benchmark.pedantic(compute, rounds=1, iterations=1)

    table = TextTable(
        ["P(slow AAAA)", "IPv6-full", "browser used IPv4", "share of full"],
        title="Ablation: AAAA lateness vs. IPv4 use on IPv6-full sites",
    )
    for probability, b in outcomes:
        share = b.browser_used_ipv4 / b.ipv6_full if b.ipv6_full else 0.0
        table.add_row([
            f"{probability:.2f}", b.ipv6_full, b.browser_used_ipv4, f"{share:.1%}",
        ])
    report("ablation_happy_eyeballs", table.render())

    # Classification is invariant: availability, not the race, decides it.
    full_counts = {b.ipv6_full for _, b in outcomes}
    assert len(full_counts) == 1
    # The IPv4-use share rises monotonically with AAAA lateness.
    shares = [
        b.browser_used_ipv4 / b.ipv6_full if b.ipv6_full else 0.0
        for _, b in outcomes
    ]
    assert shares[0] == 0.0  # never-late AAAA -> IPv6 always wins
    assert all(a <= b + 1e-9 for a, b in zip(shares, shares[1:]))
    assert shares[-1] > 0.0
