"""Figure 16: daily fraction CDFs for the light-traffic residences D and E."""

import numpy as np

from repro.core import daily_fractions
from repro.flowmon.monitor import FlowScope
from repro.util.stats import empirical_cdf
from repro.util.tables import render_series


def test_fig16_residences_de(residence_study, benchmark, report):
    def compute():
        series = {}
        for name in ("D", "E"):
            dataset = residence_study.dataset(name)
            for scope in (FlowScope.EXTERNAL, FlowScope.INTERNAL):
                for metric in ("bytes", "flows"):
                    values = daily_fractions(dataset, scope=scope, metric=metric)
                    if values:
                        series[(name, scope.value, metric)] = values
        return series

    series = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = ["Figure 16: per-day IPv6 fractions at residences D and E"]
    for key, values in sorted(series.items()):
        cdf = empirical_cdf(values)
        lines.append(render_series("/".join(key), cdf.points, cdf.fractions))
    report("fig16_residences_de", "\n".join(lines))

    # Shape (paper): light traffic makes D and E extremely variable by
    # day (Table 1: s.d. 0.32-0.42), with IPv4-dominated days and the
    # occasional IPv6-heavy download day.
    e_external = np.array(series[("E", "external", "bytes")])
    assert e_external.std() > 0.10
    assert e_external.max() > 0.5  # an IPv6-heavy outlier day exists
    assert np.median(e_external) < 0.3  # typical days are IPv4-dominated
    # D's internal traffic is consistently IPv6 (NAS, 0.98 in Table 1).
    d_internal = np.array(series[("D", "internal", "flows")])
    assert np.median(d_internal) > 0.8
    # Light traffic -> extreme days exist at both ends for E.
    assert e_external.min() < 0.3
