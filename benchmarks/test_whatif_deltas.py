"""What-if benches: the counterfactual sweep at bench scale.

The sweep is the paper's thesis run forward: interventions move the
three adoption signals by *different* amounts.  The bench pins the two
headline facts -- NAT64 inflates the binary availability answer without
touching the census ground truth, and the sweep reuses the session's
traffic/census builds outright (zero rebuilds, by ``BUILD_COUNTS``).
"""

import numpy as np

from repro.api import BUILD_COUNTS
from repro.util.tables import TextTable
from repro.whatif.analysis import scenario_summaries


def test_whatif_sweep_deltas(whatif_sweep, benchmark, report):
    summaries = benchmark.pedantic(
        lambda: scenario_summaries(whatif_sweep), rounds=1, iterations=1
    )

    table = TextTable(
        ["scenario", "perturbs", "d avail (mean)", "d avail (max @country)",
         "d readiness", "d usage"],
        title="What-if: per-scenario deltas vs baseline (bench scale)",
    )
    for summary in summaries:
        table.add_row([
            summary.scenario, ",".join(summary.layers),
            f"{summary.d_availability_mean:+.1%}",
            f"{summary.d_availability_max:+.1%} @{summary.d_availability_max_country}",
            f"{summary.d_readiness:+.1%}", f"{summary.d_usage:+.1%}",
        ])
    report("whatif_deltas", table.render())

    by_spec = {summary.scenario: summary for summary in summaries}
    # NAT64 lifts the deploying country's binary answer and nothing else.
    nat64 = by_spec["nat64:US"]
    assert nat64.d_availability_max > 0.2
    assert nat64.d_availability_max_country == "US"
    assert nat64.d_readiness == 0.0 and nat64.d_usage == 0.0
    # A policy block pushes availability down; readiness is untouched.
    block = by_spec["block:CN@0.8"]
    assert block.d_availability_max < 0.0
    assert block.d_readiness == 0.0
    # Accelerated takeoff only raises availability (later rounds see
    # more real AAAA records).
    accelerate = by_spec["accelerate:3"]
    assert accelerate.d_availability_mean > 0.0


def test_whatif_sweep_reuses_session_builds(whatif_sweep):
    """Observatory-only overlays rebuild zero traffic/census layers."""
    from repro.api import Study, StudyConfig
    from repro.whatif import OverlayStudy

    frame = whatif_sweep.frame
    assert len(frame) == whatif_sweep.num_scenarios * len(frame.countries)
    assert np.all(frame.d_readiness == 0.0)
    assert np.all(frame.d_usage == 0.0)
    # A fresh observatory-only overlay against the bench session costs
    # exactly one observatory rebuild -- nothing else.
    before = BUILD_COUNTS.copy()
    # An equal config shares the bench session's process caches.
    overlay = OverlayStudy(Study(StudyConfig()), "block:DE@0.55")
    overlay.observatory
    overlay.traffic
    overlay.census
    deltas = {
        key: BUILD_COUNTS[key] - before.get(key, 0)
        for key in set(BUILD_COUNTS) | set(before)
        if BUILD_COUNTS[key] != before.get(key, 0)
    }
    assert deltas == {"whatif:observatory": 1}
