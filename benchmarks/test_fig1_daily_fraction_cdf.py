"""Figure 1: CDFs of per-day IPv6 byte/flow fractions, residences A-C."""

import numpy as np

from repro.core import daily_fractions
from repro.flowmon.monitor import FlowScope
from repro.util.stats import empirical_cdf
from repro.util.tables import render_series


def test_fig1_daily_fraction_cdf(residence_study, benchmark, report):
    def compute():
        series = {}
        for name in ("A", "B", "C"):
            dataset = residence_study.dataset(name)
            for scope in (FlowScope.EXTERNAL, FlowScope.INTERNAL):
                for metric in ("bytes", "flows"):
                    values = daily_fractions(dataset, scope=scope, metric=metric)
                    if values:
                        series[(name, scope.value, metric)] = empirical_cdf(values)
        return series

    cdfs = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = ["Figure 1: fraction of per-day IPv6 bytes/flows (CDFs)"]
    for (name, scope, metric), cdf in sorted(cdfs.items()):
        lines.append(
            render_series(f"{name}/{scope}/{metric}", cdf.points, cdf.fractions)
        )
    report("fig1_daily_fraction_cdf", "\n".join(lines))

    # Shape: byte-fraction CDFs spread broadly; flow CDFs rise sharply
    # over a narrower range (paper section 3.2).
    for name in ("A", "B"):
        byte_cdf = cdfs[(name, "external", "bytes")]
        flow_cdf = cdfs[(name, "external", "flows")]
        byte_spread = np.percentile(byte_cdf.points, 90) - np.percentile(byte_cdf.points, 10)
        flow_spread = np.percentile(flow_cdf.points, 90) - np.percentile(flow_cdf.points, 10)
        assert byte_spread > flow_spread
    # Residence A and B are IPv6-leaning by bytes on the median day; C is not.
    assert cdfs[("A", "external", "bytes")].value_at_fraction(0.5) > 0.4
    assert cdfs[("C", "external", "bytes")].value_at_fraction(0.5) < 0.3
