"""Figure 6: IPv6 readiness of the top-N slices of the list."""

from repro.core import top_n_breakdown
from repro.util.tables import TextTable


def test_fig6_topn(census, benchmark, report):
    num_sites = len(census.dataset.results)
    ns = (100, num_sites // 10, num_sites // 3, num_sites)

    rows = benchmark.pedantic(
        lambda: top_n_breakdown(census.dataset, ns=ns), rounds=1, iterations=1
    )

    table = TextTable(
        ["top N", "classified", "IPv4-only %", "IPv6-partial %", "IPv6-full %"],
        title="Figure 6: readiness of top-N websites",
    )
    for row in rows:
        table.add_row([
            row.n, row.classified,
            f"{row.ipv4_only_share:.1%}",
            f"{row.ipv6_partial_share:.1%}",
            f"{row.ipv6_full_share:.1%}",
        ])
    report("fig6_topn", table.render())

    # Shape (paper): the most popular sites are markedly more IPv6-full
    # and less IPv4-only than the long tail; the gradient is monotone-ish.
    assert len(rows) == len(ns)
    top, tail = rows[0], rows[-1]
    assert top.ipv6_full_share > 1.2 * tail.ipv6_full_share
    assert top.ipv4_only_share < tail.ipv4_only_share
    full_shares = [row.ipv6_full_share for row in rows]
    assert full_shares[0] == max(full_shares)
