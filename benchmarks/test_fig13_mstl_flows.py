"""Figure 13: MSTL of residence A's IPv6 *flow* fraction (appendix B)."""

import numpy as np

from repro.core import hourly_fraction_series, mstl
from repro.util.tables import render_series

MARCH_START_DAY = 120
MARCH_DAYS = 31


def test_fig13_mstl_flows(residence_study, benchmark, report):
    dataset = residence_study.dataset("A")
    byte_series = hourly_fraction_series(
        dataset, metric="bytes", start_day=MARCH_START_DAY, num_days=MARCH_DAYS
    )
    flow_series = hourly_fraction_series(
        dataset, metric="flows", start_day=MARCH_START_DAY, num_days=MARCH_DAYS
    )

    result = benchmark.pedantic(
        lambda: mstl(flow_series, [24, 168]), rounds=1, iterations=1
    )

    hours = np.arange(flow_series.size, dtype=float)
    lines = [
        "Figure 13: MSTL of residence A's hourly IPv6 flow fraction",
        render_series("observed", hours, result.observed, max_points=16),
        render_series("trend   ", hours, result.trend, max_points=16),
        render_series("daily   ", hours, result.seasonal(24), max_points=16),
        render_series("weekly  ", hours, result.seasonal(168), max_points=16),
        render_series("residual", hours, result.residual, max_points=16),
    ]
    report("fig13_mstl_flows", "\n".join(lines))

    assert np.allclose(result.reconstruction(), flow_series)
    # Paper: flow fractions follow the same structure but vary less than
    # byte fractions (compare Figure 13's axes with Figure 2's).
    assert flow_series.std() < byte_series.std()
    assert result.seasonal(24).std() > 0.0
