"""Figure 18: top IPv4-only domains by the resource types they serve."""

from repro.core import analyze_dependencies, resource_type_matrix
from repro.util.tables import TextTable


def test_fig18_resource_types(census, benchmark, report):
    def compute():
        analysis = analyze_dependencies(census.dataset)
        return analysis, resource_type_matrix(analysis, top_k=20)

    analysis, (domains, types, matrix) = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    table = TextTable(
        ["IPv4-only domain", "(any)"] + [t.value for t in types],
        title="Figure 18: IPv6-partial websites relying on each domain, by resource type",
    )
    for i, domain in enumerate(domains):
        span = analysis.domain_impacts[domain].span
        table.add_row([domain, span] + [int(v) for v in matrix[i]])
    report("fig18_resource_types", table.render())

    assert len(domains) > 0 and matrix.sum() > 0
    # Shape (paper): images are the most frequently served type among
    # heavy-hitter IPv4-only domains, and rows are span-ordered.
    type_totals = {t.value: int(matrix[:, j].sum()) for j, t in enumerate(types)}
    heavy_types = sorted(type_totals, key=type_totals.get, reverse=True)[:3]
    assert "image" in heavy_types
    spans = [analysis.domain_impacts[d].span for d in domains]
    assert spans == sorted(spans, reverse=True)
    # Each cell is bounded by its domain's span.
    for i, domain in enumerate(domains):
        assert matrix[i].max() <= analysis.domain_impacts[domain].span
