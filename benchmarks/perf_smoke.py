"""Perf smoke: build a small Study under a wall-clock budget.

Runs the full pipeline -- traffic generation, census crawl, cloud
attribution, and every registered artifact -- at a deliberately small
scale (``days=14, sites=300`` by default), times each phase, and writes
the same ``BENCH_results.json`` schema the benchmark harness produces.
CI runs this per-PR and uploads the JSON as a build artifact, so a perf
regression shows up as a failed budget or a visibly slower trajectory
across PR artifacts.

Usage::

    python benchmarks/perf_smoke.py [--days 14] [--sites 300]
        [--budget 300] [--output benchmarks/results/BENCH_results.json]

Exits non-zero when total wall time exceeds ``--budget`` seconds.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.api import Study, StudyConfig, registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=int, default=14)
    parser.add_argument("--sites", type=int, default=300)
    parser.add_argument(
        "--budget",
        type=float,
        default=300.0,
        help="fail if total wall time exceeds this many seconds",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_results.json",
    )
    args = parser.parse_args(argv)

    study = Study(StudyConfig(days=args.days, sites=args.sites))
    phases: dict[str, float] = {}
    overall_start = time.perf_counter()

    def timed(name: str, thunk) -> None:
        start = time.perf_counter()
        thunk()
        phases[name] = time.perf_counter() - start

    timed("build:traffic", lambda: study.traffic)
    timed("build:census", lambda: study.census)
    timed("build:cloud", lambda: study.cloud)
    for name in registry.names():
        timed(f"artifact:{name}", lambda name=name: study.artifact(name).to_text())

    total = time.perf_counter() - overall_start
    payload = {
        "schema": 1,
        "recorded_at": datetime.now(timezone.utc).isoformat(),
        "config": {
            "days": args.days,
            "sites": args.sites,
            "seed": study.config.seed,
        },
        "machine": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "phases": {name: round(seconds, 4) for name, seconds in sorted(phases.items())},
        "total_wall_s": round(total, 3),
        "budget_s": args.budget,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    slowest = sorted(phases.items(), key=lambda kv: -kv[1])[:5]
    print(f"perf-smoke: days={args.days} sites={args.sites} "
          f"total={total:.1f}s (budget {args.budget:.0f}s)")
    for name, seconds in slowest:
        print(f"  {seconds:8.2f}s  {name}")
    print(f"  wrote {args.output}")
    if total > args.budget:
        print("perf-smoke: FAILED -- over budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
