"""Perf smoke: build a small Study under a wall-clock budget.

Runs the full pipeline -- traffic generation, census crawl, cloud
attribution, and every registered artifact -- at a deliberately small
scale (``days=14, sites=300`` by default), times each phase, and writes
the same ``BENCH_results.json`` schema the benchmark harness produces.
CI runs this per-PR and uploads the JSON as a build artifact, so a perf
regression shows up as a failed budget or a visibly slower trajectory
across PR artifacts.

Usage::

    python benchmarks/perf_smoke.py [--days 14] [--sites 300]
        [--budget 300] [--max-regression 0.25]
        [--output benchmarks/results/BENCH_results.json]

Exits non-zero when total wall time exceeds ``--budget`` seconds, or --
when ``--max-regression`` is given and the run matches the committed
:data:`SMOKE_REFERENCE` scale -- when ``total_wall_s`` regressed more
than that fraction over the reference.  The absolute budget catches
catastrophic slowdowns; the relative gate catches the gradual ones that
used to slip through it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.api import Study, StudyConfig, clear_caches, registry
from repro.prof import (
    append_history,
    build_peaks,
    history_record,
    profiled_spans,
    profiling,
)
from repro.telemetry import (
    recent_spans,
    registry as metrics_registry,
    reset_trace,
    span,
    span_tree,
)

#: The committed perf trajectory anchor for the smoke scale.  Update it
#: deliberately (with a PR that explains the new cost) whenever the
#: pipeline legitimately grows; CI fails any run at this scale whose
#: ``total_wall_s`` exceeds it by more than ``--max-regression``.
SMOKE_REFERENCE = {
    "label": "full pipeline + all artifacts (observatory + whatif default "
    "grid) + the sentinel:scan phase + the warm-vs-cold whatif sweep "
    "phases + the store cold-write/warm-load phases; ~26 s measured, "
    "anchored at 42 s for shared-runner variance",
    "config": {"days": 14, "sites": 300},
    "total_wall_s": 42.0,
    # The serving gate serve_load.py enforces by default: cached-artifact
    # GETs at smoke scale must sustain at least this many requests/sec.
    "serve_min_rps": 1000.0,
}

#: The warm-vs-cold sweep grid: observatory-only scenarios *not* in the
#: default grid, so the warm pass measures baseline-cache reuse (fresh
#: overlays, cached baseline) rather than overlay-cache hits.
WHATIF_SMOKE_GRID = ("nat64:FR", "block:DE@0.8", "accelerate:5")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=int, default=14)
    parser.add_argument("--sites", type=int, default=300)
    parser.add_argument(
        "--budget",
        type=float,
        default=300.0,
        help="fail if total wall time exceeds this many seconds",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        help="fail if total_wall_s exceeds the committed SMOKE_REFERENCE "
        "by more than this fraction (only enforced when --days/--sites "
        "match the reference scale)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_results.json",
    )
    parser.add_argument(
        "--profile-phase",
        default="build:cloud",
        metavar="PHASE",
        help="run this one phase under span-scoped CPU profiling "
        "(+ tracemalloc build peaks) and write PROF_smoke.json; "
        "'none' disables (default: build:cloud)",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_history.jsonl",
        help="append this run's per-phase timings here "
        "(the series 'repro bench history' scans)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip the history append (throwaway experiments)",
    )
    args = parser.parse_args(argv)

    study = Study(StudyConfig(days=args.days, sites=args.sites))
    phases: dict[str, float] = {}
    overall_start = time.perf_counter()

    # Every phase runs inside a span, all under one perf:smoke root, so
    # the same run that times the phases also produces the span tree CI
    # uploads (TRACE_smoke.json) -- one clock, two reports.
    reset_trace()
    smoke_span = span("perf:smoke", days=args.days, sites=args.sites)
    smoke_span.__enter__()

    def timed(name: str, thunk) -> None:
        if name == args.profile_phase:
            # One phase runs under the span profiler: CPU capture on
            # the phase span, tracemalloc peaks on the build spans it
            # contains.  Scoped to the phase so the rest of the smoke
            # run measures the unprofiled cost.
            with profiling(spans=(f"perf:{name}",), memory=True):
                with span(f"perf:{name}") as phase_span:
                    thunk()
        else:
            with span(f"perf:{name}") as phase_span:
                thunk()
        phases[name] = phase_span.duration_s

    timed("build:traffic", lambda: study.traffic)
    timed("build:census", lambda: study.census)
    timed("build:cloud", lambda: study.cloud)
    timed("build:observatory", lambda: study.observatory)
    timed("sentinel:scan", lambda: study.sentinel)
    for name in registry.names():
        timed(f"artifact:{name}", lambda name=name: study.artifact(name).to_text())

    # The whatif cache-reuse contract, measured: the same sweep grid
    # run warm (baseline layers cached -- only the overlays build) and
    # cold (cleared caches -- the baseline rebuilds too, what a
    # cache-less engine would pay per sweep).
    from repro.whatif.sweep import run_sweep

    timed(
        "whatif:sweep",
        lambda: run_sweep(study, WHATIF_SMOKE_GRID, parallel=False),
    )

    def cold_sweep() -> None:
        clear_caches()
        run_sweep(
            Study(StudyConfig(days=args.days, sites=args.sites)),
            WHATIF_SMOKE_GRID,
            parallel=False,
        )

    timed("whatif:sweep_cold", cold_sweep)

    # The warehouse warm-start contract, measured: persist the built
    # layers (cold write), then rebuild the whole baseline from disk in
    # a cache-cleared "process" (warm load) and compare against what
    # the in-process cold build cost above.
    import tempfile

    from repro.store import set_store, snapshot_study

    store_dir = tempfile.mkdtemp(prefix="repro-perf-store-")
    store = set_store(store_dir)
    timed("store:cold-write", lambda: snapshot_study(store, study))

    def warm_load() -> None:
        clear_caches()
        warmed = Study(StudyConfig(days=args.days, sites=args.sites))
        warmed.traffic, warmed.census, warmed.cloud, warmed.dependencies
        warmed.observatory

    timed("store:warm-load", warm_load)
    set_store(None)
    cold_build_s = sum(
        phases[name]
        for name in (
            "build:traffic", "build:census", "build:cloud", "build:observatory",
        )
    )

    total = time.perf_counter() - overall_start
    smoke_span.__exit__(None, None, None)
    smoke_tree = span_tree(recent_spans()[-1])
    captured = profiled_spans(recent_spans())
    profile_block = None
    if captured:
        node = captured[0]
        profile_block = {
            "phase": args.profile_phase,
            "duration_ms": round(node.duration_s * 1000.0, 3),
            "coverage": node.profile["coverage"],
            "functions": node.profile["functions"],
            # tracemalloc peaks of the build spans inside the phase.
            "build_peak_bytes": build_peaks(),
        }
    sweep_warm = phases["whatif:sweep"]
    sweep_cold = phases["whatif:sweep_cold"]
    payload = {
        "schema": 1,
        "recorded_at": datetime.now(timezone.utc).isoformat(),
        "config": {
            "days": args.days,
            "sites": args.sites,
            "seed": study.config.seed,
        },
        "machine": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "phases": {name: round(seconds, 4) for name, seconds in sorted(phases.items())},
        "whatif": {
            "scenarios": list(WHATIF_SMOKE_GRID),
            "sweep_warm_s": round(sweep_warm, 4),
            "sweep_cold_s": round(sweep_cold, 4),
            "cache_reuse_speedup": round(sweep_cold / sweep_warm, 2)
            if sweep_warm > 0
            else None,
        },
        "sentinel": {
            "events": len(study.sentinel.events),
            "points": study.sentinel.points,
            "scan_s": round(phases["sentinel:scan"], 4),
            "events_per_s": round(
                len(study.sentinel.events) / phases["sentinel:scan"], 2
            )
            if phases["sentinel:scan"] > 0
            else None,
        },
        "store": {
            "cold_write_s": round(phases["store:cold-write"], 4),
            "warm_load_s": round(phases["store:warm-load"], 4),
            "cold_build_s": round(cold_build_s, 4),
            "warm_start_speedup": round(
                cold_build_s / phases["store:warm-load"], 2
            )
            if phases["store:warm-load"] > 0
            else None,
        },
        "total_wall_s": round(total, 3),
        "budget_s": args.budget,
        # The same run's span tree + registry snapshot: per-phase wall
        # attribution with the layer/store/artifact spans nested inside.
        "telemetry": {
            "span_tree": smoke_tree,
            "metrics": metrics_registry().snapshot(),
        },
        # The profiled phase's summary (full call tree: PROF_smoke.json).
        "profiling": profile_block,
        # Distinct key from the benchmark harness's per-phase "reference"
        # block: both writers share this file path and schema tag.
        "smoke_reference": SMOKE_REFERENCE,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    trace_path = args.output.parent / "TRACE_smoke.json"
    trace_path.write_text(json.dumps({"spans": [smoke_tree]}, indent=2) + "\n")
    prof_path = None
    if captured:
        prof_path = args.output.parent / "PROF_smoke.json"
        prof_path.write_text(json.dumps(
            {
                "phase": args.profile_phase,
                "profiles": [
                    {
                        "span": node.name,
                        "duration_ms": round(node.duration_s * 1000.0, 3),
                        "peak_bytes": node.peak_bytes,
                        "profile": node.profile,
                    }
                    for node in captured
                ],
            },
            indent=2,
        ) + "\n")
    if not args.no_history:
        # One line per run: what `repro bench history` scans for
        # per-phase drift against this scale's trailing baseline.
        append_history(args.history, history_record(
            kind="perf_smoke",
            config={"days": args.days, "sites": args.sites,
                    "seed": study.config.seed},
            phases={**phases, "total:wall": total},
            recorded_at=payload["recorded_at"],
        ))

    slowest = sorted(phases.items(), key=lambda kv: -kv[1])[:5]
    print(f"perf-smoke: days={args.days} sites={args.sites} "
          f"total={total:.1f}s (budget {args.budget:.0f}s)")
    print(f"  whatif sweep: warm {sweep_warm:.2f}s vs cold {sweep_cold:.2f}s "
          f"({sweep_cold / max(sweep_warm, 1e-9):.1f}x cache-reuse speedup)")
    print(f"  store: warm-load {phases['store:warm-load']:.2f}s vs cold build "
          f"{cold_build_s:.2f}s "
          f"({cold_build_s / max(phases['store:warm-load'], 1e-9):.1f}x "
          f"warm-start speedup; cold write {phases['store:cold-write']:.2f}s)")
    if profile_block is not None:
        peaks = profile_block["build_peak_bytes"]
        print(
            f"  profiled {profile_block['phase']}: "
            f"{profile_block['functions']} functions, "
            f"coverage {profile_block['coverage']:.1%}, "
            f"build peaks "
            + (", ".join(f"{layer}={peak:,}B" for layer, peak in peaks.items())
               or "none")
        )
    for name, seconds in slowest:
        print(f"  {seconds:8.2f}s  {name}")
    print(f"  wrote {args.output}")
    print(f"  wrote {trace_path}")
    if prof_path is not None:
        print(f"  wrote {prof_path}")
    if not args.no_history:
        print(f"  appended {args.history}")
    if total > args.budget:
        print("perf-smoke: FAILED -- over budget", file=sys.stderr)
        return 1
    if args.max_regression is not None:
        reference_config = SMOKE_REFERENCE["config"]
        if {"days": args.days, "sites": args.sites} != reference_config:
            print(
                "perf-smoke: regression gate skipped -- scale "
                f"{args.days}d/{args.sites} does not match the committed "
                f"reference {reference_config['days']}d/{reference_config['sites']}"
            )
            return 0
        limit = SMOKE_REFERENCE["total_wall_s"] * (1.0 + args.max_regression)
        print(
            f"perf-smoke: reference {SMOKE_REFERENCE['total_wall_s']:.1f}s "
            f"-> limit {limit:.1f}s (+{args.max_regression:.0%}), "
            f"measured {total:.1f}s"
        )
        if total > limit:
            print(
                f"perf-smoke: FAILED -- total_wall_s {total:.1f}s regressed "
                f"more than {args.max_regression:.0%} over the committed "
                f"reference {SMOKE_REFERENCE['total_wall_s']:.1f}s",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
