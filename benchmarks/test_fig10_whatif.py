"""Figure 10: partial sites becoming full as domains adopt IPv6 in span order."""

from repro.core import analyze_dependencies, whatif_adoption_curve
from repro.util.tables import render_series


def test_fig10_whatif(census, benchmark, report):
    def compute():
        analysis = analyze_dependencies(census.dataset)
        return analysis, whatif_adoption_curve(analysis)

    analysis, curve = benchmark.pedantic(compute, rounds=1, iterations=1)

    xs = [float(adopted) for adopted, _ in curve]
    ys = [float(full) for _, full in curve]
    lines = [
        "Figure 10: sites becoming IPv6-full as IPv4-only domains adopt "
        "IPv6 in descending span order",
        render_series("cumulative full", xs, ys, max_points=16),
    ]
    for mark in (0.033, 0.10, 0.25, 1.0):
        k = max(1, round(mark * len(curve)))
        adopted, full = curve[k - 1]
        lines.append(
            f"top {mark:6.1%} of domains ({adopted:5d}) -> "
            f"{full}/{analysis.num_partial} partial sites full "
            f"({full / analysis.num_partial:.1%})"
        )
    report("fig10_whatif", "\n".join(lines))

    # Shape (paper): enabling the top ~3% of domains flips >25% of
    # partial sites; universal readiness needs nearly every domain.
    k = max(1, round(0.033 * len(curve)))
    assert curve[k - 1][1] / analysis.num_partial > 0.25
    assert curve[-1][1] == analysis.num_partial
    # Monotone non-decreasing curve.
    fulls = [full for _, full in curve]
    assert fulls == sorted(fulls)
    # Long tail: the last half of domains contributes far less than the
    # first few percent.
    half = curve[len(curve) // 2][1]
    assert (analysis.num_partial - half) < curve[k - 1][1]
