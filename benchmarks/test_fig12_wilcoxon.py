"""Figure 12: pairwise Wilcoxon comparisons of clouds on shared tenants."""

from repro.core import cloud_pair_heatmap, multicloud_tenants, rank_clouds_by_wins
from repro.util.tables import TextTable


def test_fig12_wilcoxon(census_views, benchmark, report):
    def compute():
        tenants = multicloud_tenants(census_views)
        comparisons = cloud_pair_heatmap(tenants, alpha=0.05, min_differing=2)
        return tenants, comparisons

    tenants, comparisons = benchmark.pedantic(compute, rounds=1, iterations=1)

    comparable = [c for c in comparisons if c.comparable]
    significant = [c for c in comparisons if c.significant]
    ranking = rank_clouds_by_wins(comparisons)

    table = TextTable(
        ["cloud 1", "cloud 2", "effect r", "p-value", "n shared", "significant"],
        title=(
            f"Figure 12: Wilcoxon signed-rank comparisons "
            f"({len(tenants)} multi-cloud tenants, "
            f"{len(comparable)}/{len(comparisons)} pairs comparable)"
        ),
    )
    for cell in sorted(comparable, key=lambda c: -abs(c.effect_size)):
        table.add_row([
            cell.org_a, cell.org_b, f"{cell.effect_size:+.2f}",
            f"{cell.p_value:.2e}", cell.n_shared,
            "yes" if cell.significant else "no",
        ])
    rendered = table.render() + "\n\nwin ordering: " + " > ".join(ranking[:8])
    report("fig12_wilcoxon", rendered)

    # Shape (paper): a sizable multi-cloud tenant population exists, some
    # pairs are statistically distinguishable after Holm-Bonferroni, and
    # where they are, effortless-IPv6 CDNs beat opt-in providers.
    assert len(tenants) > 100
    assert comparable
    assert significant, "expected significant pairs at this scale"
    effortless = {"Cloudflare, Inc.", "Google LLC", "Akamai International B.V.",
                  "Datacamp Limited", "BUNNYWAY, informacijske storitve d.o.o."}
    laggards = {"(self-hosted / other)", "Amazon.com, Inc.",
                "DigitalOcean, LLC", "OVH SAS", "Hetzner Online GmbH",
                "Fastly, Inc.", "Cloudflare London, LLC"}
    for cell in significant:
        a_effortless = cell.org_a in effortless
        b_effortless = cell.org_b in effortless
        if a_effortless and cell.org_b in laggards:
            assert cell.effect_size > 0, f"{cell.org_a} should beat {cell.org_b}"
        if b_effortless and cell.org_a in laggards:
            assert cell.effect_size < 0, f"{cell.org_b} should beat {cell.org_a}"
