"""Ablation: link-click depth (main page only vs. five same-site clicks).

The paper reports that skipping the five internal link clicks raises the
apparent IPv6-full share from 12.5% to 14.1% -- a bigger jump than nine
months of actual growth, demonstrating that main-page-only methodology
overstates readiness (section 4.2).
"""

from repro.core import census_breakdown
from repro.datasets.scenarios import census_scenario
from repro.util.tables import TextTable

ABLATION_SITES = 1500


def test_ablation_link_clicks(benchmark, report):
    def compute():
        with_clicks = census_scenario(num_sites=ABLATION_SITES, seed=42, link_clicks=5)
        without_clicks = census_scenario(num_sites=ABLATION_SITES, seed=42, link_clicks=0)
        return (
            census_breakdown(with_clicks.dataset),
            census_breakdown(without_clicks.dataset),
        )

    clicked, main_only = benchmark.pedantic(compute, rounds=1, iterations=1)

    table = TextTable(
        ["crawl mode", "IPv4-only", "IPv6-partial", "IPv6-full", "full share"],
        title="Ablation: five same-site link clicks vs. main page only",
    )
    for label, b in (("5 link clicks", clicked), ("main page only", main_only)):
        table.add_row([
            label, b.ipv4_only, b.ipv6_partial, b.ipv6_full,
            f"{b.share_of_connected(b.ipv6_full):.1%}",
        ])
    delta = (
        main_only.share_of_connected(main_only.ipv6_full)
        - clicked.share_of_connected(clicked.ipv6_full)
    )
    report(
        "ablation_link_clicks",
        table.render() + f"\n\nmain-page-only inflation of IPv6-full: +{delta:.1%} "
        "(paper: +1.6%)",
    )

    # Skipping clicks can only hide IPv4-only resources, never add them.
    assert main_only.ipv6_full >= clicked.ipv6_full
    assert delta >= 0.0
    # The same site population connects either way.
    assert main_only.connection_success == clicked.connection_success
