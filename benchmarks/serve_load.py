"""Serving-throughput benchmark: asyncio client fan-out against repro.serve.

Starts an in-process :class:`~repro.serve.ArtifactService` server on an
ephemeral port, pre-warms the measured artifact set (so the benchmark
exercises the *serving* tier, not the build pipeline), then fans
keep-alive client connections over it and records requests/sec with
p50/p99 latency -- once for full-body GETs and once for
``If-None-Match`` revalidation (the 304 path a polling tracker pays).

Results merge into ``benchmarks/results/BENCH_results.json`` under a
``"serve"`` block (the file the perf harnesses already share), and the
run fails when cached-GET throughput lands under ``--min-rps`` -- the
committed ``SMOKE_REFERENCE["serve_min_rps"]`` gate from
``perf_smoke.py`` by default.

Usage::

    python benchmarks/serve_load.py [--connections 8] [--requests 4000]
        [--days 7] [--sites 250] [--probe-targets 120]
        [--paths /v1/artifact/contrast,/v1/artifact/obs_availability]
        [--store DIR] [--min-rps 1000]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

from repro.api import StudyConfig
from repro.serve import ArtifactService, start_server

DEFAULT_PATHS = (
    "/v1/artifact/contrast",
    "/v1/artifact/obs_availability",
    "/v1/artifact/table1",
)


async def _client(
    port: int,
    paths: list[str],
    count: int,
    latencies: list[float],
    revalidate: str | None = None,
) -> None:
    """One keep-alive connection issuing ``count`` GETs round-robin."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for index in range(count):
            target = paths[index % len(paths)]
            lines = [f"GET {target} HTTP/1.1", "Host: bench"]
            if revalidate is not None:
                lines.append(f"If-None-Match: {revalidate}")
            start = time.perf_counter()
            writer.write(("\r\n".join(lines) + "\r\n\r\n").encode())
            await writer.drain()
            head = (await reader.readuntil(b"\r\n\r\n")).decode("latin-1")
            status = int(head.split(" ", 2)[1])
            length = 0
            for line in head.split("\r\n"):
                if line.lower().startswith("content-length:"):
                    length = int(line.partition(":")[2])
            if length:
                await reader.readexactly(length)
            latencies.append(time.perf_counter() - start)
            expected = 304 if revalidate == "*" else 200
            if status != expected:
                raise RuntimeError(f"{target}: HTTP {status}, expected {expected}")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover
            pass


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


async def _measure(
    port: int, paths: list[str], connections: int, total: int, revalidate: str | None
) -> dict:
    latencies: list[float] = []
    per_connection = max(1, total // connections)
    start = time.perf_counter()
    await asyncio.gather(*[
        _client(port, paths, per_connection, latencies, revalidate)
        for _ in range(connections)
    ])
    elapsed = time.perf_counter() - start
    latencies.sort()
    return {
        "requests": len(latencies),
        "wall_s": round(elapsed, 4),
        "rps": round(len(latencies) / elapsed, 1) if elapsed > 0 else None,
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
    }


async def run_benchmark(args: argparse.Namespace, paths: list[str]) -> dict:
    config = StudyConfig(
        days=args.days,
        sites=args.sites,
        probe_targets=args.probe_targets,
        parallel=False,
    )
    service = ArtifactService(config)
    # Warm synchronously: the measurement is of the serving tier.
    names = [p.rsplit("/", 1)[1] for p in paths if p.startswith("/v1/artifact/")]
    warm_start = time.perf_counter()
    service.warm(names)
    warm_s = time.perf_counter() - warm_start

    server = await start_server(service, "127.0.0.1", 0, warm=False)
    port = server.sockets[0].getsockname()[1]
    try:
        cached = await _measure(
            port, paths, args.connections, args.requests, revalidate=None
        )
        revalidated = await _measure(
            port, paths, args.connections, args.requests, revalidate="*"
        )
    finally:
        server.close()
        await server.wait_closed()
    return {
        "connections": args.connections,
        "paths": paths,
        "config": {"days": args.days, "sites": args.sites,
                   "probe_targets": args.probe_targets},
        "warm_s": round(warm_s, 3),
        "cached_get": cached,
        "revalidate_304": revalidated,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--requests", type=int, default=4000,
                        help="total requests per measurement pass")
    parser.add_argument("--days", type=int, default=7)
    parser.add_argument("--sites", type=int, default=250)
    parser.add_argument("--probe-targets", type=int, default=120)
    parser.add_argument("--paths", default=",".join(DEFAULT_PATHS),
                        help="comma-separated request targets")
    parser.add_argument("--store", default=None,
                        help="warehouse directory (default: $REPRO_STORE); "
                        "warming loads from it instead of building")
    parser.add_argument("--min-rps", type=float, default=None,
                        help="fail when cached-GET rps lands below this "
                        "(default: the committed SMOKE_REFERENCE serve gate)")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_results.json",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_history.jsonl",
        help="append this run's throughput/latency series here "
        "(the series 'repro bench history' scans; rps phases regress "
        "downward)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip the history append (throwaway experiments)",
    )
    args = parser.parse_args(argv)

    if args.store:
        from repro.store import set_store

        set_store(args.store)

    paths = [p for p in args.paths.split(",") if p]
    serve_block = asyncio.run(run_benchmark(args, paths))

    # Merge into the shared results file (perf_smoke/conftest write the
    # envelope; this benchmark owns only the "serve" block).
    payload: dict = {}
    if args.output.is_file():
        try:
            payload = json.loads(args.output.read_text())
        except json.JSONDecodeError:
            payload = {}
    if not payload:
        payload = {"schema": 1, "phases": {}}
    payload["serve"] = serve_block
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    if not args.no_history:
        from datetime import datetime, timezone

        from repro.prof import append_history, history_record

        cached_block = serve_block["cached_get"]
        revalidated_block = serve_block["revalidate_304"]
        append_history(args.history, history_record(
            kind="serve_load",
            config={**serve_block["config"],
                    "connections": args.connections,
                    "requests": args.requests},
            phases={
                "serve:warm_s": serve_block["warm_s"],
                "serve:cached_rps": cached_block["rps"] or 0.0,
                "serve:cached_p99_ms": cached_block["p99_ms"],
                "serve:revalidate_rps": revalidated_block["rps"] or 0.0,
                "serve:revalidate_p99_ms": revalidated_block["p99_ms"],
            },
            recorded_at=datetime.now(timezone.utc).isoformat(),
        ))

    min_rps = args.min_rps
    if min_rps is None:
        # Sibling module: the script directory is on sys.path when this
        # file runs as a script, which is the only way it is run.
        from perf_smoke import SMOKE_REFERENCE

        min_rps = SMOKE_REFERENCE["serve_min_rps"]
    cached = serve_block["cached_get"]
    revalidated = serve_block["revalidate_304"]
    print(
        f"serve-load: {cached['requests']} GETs over "
        f"{serve_block['connections']} connections -> {cached['rps']:.0f} req/s "
        f"(p50 {cached['p50_ms']:.2f} ms, p99 {cached['p99_ms']:.2f} ms)"
    )
    print(
        f"serve-load: 304 revalidation -> {revalidated['rps']:.0f} req/s "
        f"(p50 {revalidated['p50_ms']:.2f} ms, p99 {revalidated['p99_ms']:.2f} ms)"
    )
    print(f"  wrote {args.output}")
    if not args.no_history:
        print(f"  appended {args.history}")
    if min_rps and cached["rps"] < min_rps:
        print(
            f"serve-load: FAILED -- {cached['rps']:.0f} req/s on cached "
            f"artifacts is under the {min_rps:.0f} req/s gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
