"""CI gate: a /metrics scrape parses and shows real serving traffic.

Usage: ``python .github/scripts/check_metrics.py /tmp/metrics.prom``

Asserts the scrape the serve-smoke job curled is well-formed Prometheus
text exposition (0.0.4) and that the counters the curls must have moved
-- requests, hot-cache hits, 304 revalidations -- are present and
non-zero.  A serving tier whose own traffic does not show up on its
/metrics endpoint has broken observability, whatever else still works.
"""

from __future__ import annotations

import re
import sys

#: ``name{labels} value`` or ``name value`` -- one exposition sample.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+(?: [0-9.+-]+)?$"
)


def parse(text: str) -> tuple[dict[str, float], set[str]]:
    """Validate every line; return per-name totals and declared families.

    The ``typed`` set carries every ``# TYPE``-declared family --
    including sample-less ones (a declared-but-empty family is how the
    registry exposes instruments that have not fired yet, e.g.
    ``build_peak_bytes`` on a server that never ran a profiled build).
    """
    totals: dict[str, float] = {}
    typed: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            raise SystemExit(f"line {lineno}: blank line in exposition")
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            if line.startswith("# TYPE "):
                typed.add(line.split()[2])
            continue
        if not SAMPLE_RE.match(line):
            raise SystemExit(f"line {lineno}: not a valid sample: {line!r}")
        name_part, _, value = line.rpartition(" ")
        name = name_part.split("{", 1)[0]
        totals[name] = totals.get(name, 0.0) + float(value)
    if not typed:
        raise SystemExit("no # TYPE lines: not a Prometheus exposition")
    return totals, typed


def main(path: str) -> None:
    text = open(path, encoding="utf-8").read()
    if not text.endswith("\n"):
        raise SystemExit("exposition must end with a newline")
    totals, typed = parse(text)
    required_nonzero = (
        "serve_requests_total",
        "serve_hot_cache_hits_total",  # the repeat contrast GETs hit hot
        "serve_not_modified_total",  # the If-None-Match curl revalidated
        "process_rss_bytes",  # the scrape path refreshes the process gauges
    )
    for name in required_nonzero:
        total = totals.get(name)
        if total is None:
            raise SystemExit(f"metric {name} missing from /metrics")
        if not total > 0:
            raise SystemExit(f"metric {name} is zero; the smoke traffic "
                             "did not register")
        print(f"ok: {name} = {total:g}")
    # Present-but-possibly-zero: the sentinel pre-seeds zero samples so
    # a quiet scan is visible as zeros, not as a missing family.
    required_present = ("sentinel_events_total",)
    for name in required_present:
        if totals.get(name) is None:
            raise SystemExit(f"metric {name} missing from /metrics")
        print(f"ok: {name} present ({totals[name]:g})")
    # Declared-but-possibly-sampleless: the memory instruments register
    # at import, but only a profiled build writes build_peak_bytes and
    # only collector runs move gc_collections_total -- the family must
    # be declared either way or memory observability silently fell off.
    required_declared = ("build_peak_bytes", "gc_collections_total")
    for name in required_declared:
        if name not in typed:
            raise SystemExit(f"family {name} not declared on /metrics")
        print(f"ok: {name} declared")
    print(f"ok: {len(totals)} metric families, exposition parses")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    main(sys.argv[1])
