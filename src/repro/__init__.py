"""Reproduction of "Towards a Non-Binary View of IPv6 Adoption" (IMC 2025).

The paper asks *how much* IPv6 is actually used -- by households, by
websites, by cloud tenants -- instead of the binary "is IPv6 possible?".
This package implements the full measurement stack over a synthetic
Internet: the substrates (addresses, BGP, DNS, PSL, CryptoPAN, Happy
Eyeballs, a conntrack flow monitor, a residential traffic model, a web
ecosystem with cloud tenancy, an OpenWPM-style crawler) and the paper's
analyses (Table 1 household statistics, MSTL decomposition, graded website
readiness, dependency span/contribution, cloud/service adoption and the
multi-cloud Wilcoxon comparison).

Quick start::

    from repro.datasets import build_residence_study, build_census
    from repro.core import compute_residence_stats, census_breakdown

    study = build_residence_study(num_days=28)
    print(compute_residence_stats(study.dataset("A")))

    census = build_census(num_sites=1000)
    print(census_breakdown(census.dataset))
"""

__version__ = "1.0.0"
