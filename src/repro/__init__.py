"""Reproduction of "Towards a Non-Binary View of IPv6 Adoption" (IMC 2025).

The paper asks *how much* IPv6 is actually used -- by households, by
websites, by cloud tenants -- instead of the binary "is IPv6 possible?".
This package implements the full measurement stack over a synthetic
Internet: the substrates (addresses, BGP, DNS, PSL, CryptoPAN, Happy
Eyeballs, a conntrack flow monitor, a residential traffic model, a web
ecosystem with cloud tenancy, an OpenWPM-style crawler) and the paper's
analyses (Table 1 household statistics, MSTL decomposition, graded website
readiness, dependency span/contribution, cloud/service adoption and the
multi-cloud Wilcoxon comparison).

The supported entry point is :class:`repro.api.Study` -- a lazy, memoized
session over the three measurement perspectives -- plus the artifact
registry behind ``python -m repro``::

    from repro.api import Study

    study = Study(days=28, sites=1500)
    print(study.artifact("table1").to_text())   # or .to_json()
    print(study.artifact("fig5").to_text())

    python -m repro list                        # every registered artifact
    python -m repro all --days 14 --sites 800 --format json

Importing analysis functions straight from :mod:`repro.core` (for example
``from repro.core import compute_residence_stats``) still works and is the
right layer for new *analyses*, but callers composing artifacts should go
through :class:`repro.api.Study`: direct ``core`` wiring bypasses the
session's build memoization and the registry's text/JSON rendering, and
the ad-hoc build-then-render pattern it encouraged is deprecated.
"""

__version__ = "1.5.0"
