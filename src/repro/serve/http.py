"""The asyncio HTTP/1.1 front end over :class:`ArtifactService`.

Pure stdlib (``asyncio`` streams plus :mod:`http` for status phrases):
an accept loop, a minimal request parser (GET/HEAD, header dict,
keep-alive), and a two-tier dispatch -- requests answerable from the
service's hot cache resolve inline on the event loop; anything that
might compute (a cold artifact, a fresh scale) runs in the default
executor so one expensive render never stalls the cached fast path.

Startup optionally launches the **warmer** in an executor thread: the
server binds and answers ``/healthz`` immediately while the default
artifact set loads from the warehouse (or computes and writes behind).

    from repro.serve import ArtifactService, run_server

    run_server(ArtifactService(StudyConfig(days=14, sites=300)),
               host="127.0.0.1", port=8080)
"""

from __future__ import annotations

import asyncio
from http import HTTPStatus
from typing import Callable

from repro.serve.service import ArtifactService, Response

#: Per-connection idle timeout: keep-alive connections are dropped when
#: silent this long (protects the fd budget of long-lived fleets).
IDLE_TIMEOUT_S = 30.0

#: Cap on request-line/header lines (stdlib StreamReader default limit).
_MAX_LINE = 65536

#: Largest request body we drain to keep a keep-alive connection in
#: sync; anything bigger (or chunked) gets a 400 and a close.
_MAX_DRAIN_BODY = 1 << 20

#: Read failures that mean "the peer is gone or silent", not "the peer
#: sent garbage": a keep-alive connection half-closing mid-request head
#: (:class:`asyncio.IncompleteReadError`), the idle timeout expiring
#: (``TimeoutError``; ``asyncio.TimeoutError`` is its alias on 3.11+,
#: spelled out for 3.10 readers), or a reset (:class:`ConnectionError`).
#: Each ends the connection quietly -- no traceback, no 400.
_QUIET_READ_ERRORS = (
    asyncio.TimeoutError,
    TimeoutError,
    asyncio.IncompleteReadError,
    ConnectionError,
)


def _reason(status: int) -> str:
    try:
        return HTTPStatus(status).phrase
    except ValueError:  # pragma: no cover - non-standard status
        return "Unknown"


def _encode_response(
    response: Response, *, keep_alive: bool, head: bool
) -> bytes:
    """Serialize one response; 304s and HEADs carry no body bytes."""
    body = b"" if head else response.body
    lines = [f"HTTP/1.1 {response.status} {_reason(response.status)}"]
    has_length = False
    for name, value in response.headers:
        if name.lower() == "content-length":
            has_length = True
        lines.append(f"{name}: {value}")
    if response.status != 304 and not has_length:
        lines.append(f"Content-Length: {len(body)}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, str, dict[str, str]] | None:
    """Parse one request head; ``None`` on clean EOF/idle close."""
    try:
        line = await asyncio.wait_for(reader.readline(), IDLE_TIMEOUT_S)
    except _QUIET_READ_ERRORS:
        return None
    if not line:
        return None
    parts = line.decode("latin-1", "replace").strip().split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {line[:80]!r}")
    method, target, version = parts
    headers: dict[str, str] = {}
    while True:
        try:
            header_line = await asyncio.wait_for(reader.readline(), IDLE_TIMEOUT_S)
        except _QUIET_READ_ERRORS:
            return None
        if header_line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = header_line.decode("latin-1", "replace").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    # Drain any request body: this API ignores bodies (GET/HEAD, and
    # POSTs only ever earn a 405), but leaving the bytes unread would
    # desync the next request on a keep-alive connection.
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ValueError("chunked request bodies are not supported")
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise ValueError("malformed Content-Length") from None
    if length < 0 or length > _MAX_DRAIN_BODY:
        raise ValueError(f"unreasonable Content-Length {length}")
    if length:
        try:
            await asyncio.wait_for(reader.readexactly(length), IDLE_TIMEOUT_S)
        except _QUIET_READ_ERRORS:
            return None
    return method, target, version, headers


async def handle_connection(
    service: ArtifactService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one (possibly keep-alive) client connection."""
    loop = asyncio.get_running_loop()
    try:
        while True:
            try:
                request = await _read_request(reader)
            except ValueError:
                writer.write(
                    b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n"
                    b"Connection: close\r\n\r\n"
                )
                await writer.drain()
                break
            if request is None:
                break
            method, target, version, headers = request
            # Hot tier inline; anything that may build goes off-loop so
            # cached requests keep flowing during a cold render.
            response = service.handle(method, target, headers, hot_only=True)
            if response is None:
                response = await loop.run_in_executor(
                    None, service.handle, method, target, headers
                )
            assert response is not None
            keep_alive = (
                version != "HTTP/1.0"
                and headers.get("connection", "").lower() != "close"
            )
            writer.write(
                _encode_response(
                    response, keep_alive=keep_alive, head=(method == "HEAD")
                )
            )
            await writer.drain()
            if not keep_alive:
                break
    except _QUIET_READ_ERRORS:  # pragma: no cover - client went away mid-write
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            # CancelledError lands here when the event loop tears the
            # server down mid-close; ending the handler normally keeps
            # asyncio's stream callback from logging a spurious
            # "exception was never retrieved" for every connection.
            pass


async def start_server(
    service: ArtifactService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    warm: bool = True,
) -> asyncio.AbstractServer:
    """Bind and start serving; optionally kick off the background warmer.

    Returns the started :class:`asyncio.AbstractServer` (query
    ``server.sockets[0].getsockname()`` for the bound port when 0 was
    requested).  The warmer runs in the default executor and fills the
    hot cache while requests are already being answered.
    """
    server = await asyncio.start_server(
        lambda reader, writer: handle_connection(service, reader, writer),
        host,
        port,
        limit=_MAX_LINE,
    )
    service.warmer.enabled = warm
    if warm:
        loop = asyncio.get_running_loop()
        loop.run_in_executor(None, service.warm)
    else:
        service.warmer.done = True
    return server


def run_server(
    service: ArtifactService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    warm: bool = True,
    log: Callable[[str], None] | None = None,
) -> int:
    """Blocking entry point: serve until interrupted (the CLI's ``serve``)."""

    async def _main() -> None:
        server = await start_server(service, host, port, warm=warm)
        if log is not None:
            bound = server.sockets[0].getsockname()
            log(
                f"repro-serve listening on http://{bound[0]}:{bound[1]} "
                f"(store: {service.store.root if service.store else 'none'}, "
                f"warm: {'on' if warm else 'off'})"
            )
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        if log is not None:
            log("repro-serve: shutting down")
    return 0
