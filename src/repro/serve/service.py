"""The serving core: HTTP-shaped request resolution, no sockets.

:class:`ArtifactService` maps read-only API requests onto the artifact
registry, the :class:`~repro.api.session.Study` session, and the
warehouse::

    GET /healthz                      liveness + cache/warmer state
    GET /v1/artifacts                 the registry listing (names, layers)
    GET /v1/artifact/<name>?days=7    one rendered artifact as JSON
    GET /v1/contrast/<country>        one country's three-way contrast row

Responses are canonical JSON bytes with a strong ``ETag`` derived from
the content digest; ``If-None-Match`` revalidation returns ``304``, and
bodies compress with gzip when the client accepts it.  Resolution is a
three-tier read: an in-memory **hot cache** of encoded responses, then
the warehouse's rendered-artifact entries, then an actual compute
through the session (which itself reads through the warehouse for layer
payloads and writes freshly rendered artifacts behind).

The class is deliberately socket-free -- the asyncio front end
(:mod:`repro.serve.http`) calls :meth:`handle`, and tests can drive the
full semantics (routing, ETags, gzip, error suggestions) without a
server.  Everything here is thread-safe: the hot path takes no locks
and computes serialize behind one build lock, so the event loop can
answer cached requests while an executor thread renders a cold one.
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import json
import threading
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.api import Study, StudyConfig, jsonify, registry
from repro.datasets.scenarios import SCALE_PRESETS
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import fault_hook
from repro.telemetry import (
    recent_spans,
    registry as _metrics_registry,
    span,
    span_tree,
)

#: Config fields a request may override via query parameters -- the
#: same set the CLI's ``name@key=value`` overrides accept.
QUERY_OVERRIDES = (
    "days",
    "sites",
    "seed",
    "link_clicks",
    "probe_targets",
    "probe_interval_days",
)

#: Bodies below this size are served identity-encoded even to
#: gzip-accepting clients (the header overhead would exceed the win).
MIN_GZIP_BYTES = 256

#: The public endpoint table (rendered into listings and 404 bodies).
ENDPOINTS = (
    "/healthz",
    "/metrics",
    "/v1/artifacts",
    "/v1/artifact/<name>",
    "/v1/contrast/<country>",
    "/v1/events",
    "/v1/profile",
    "/v1/trace",
)

#: Serving-tier instruments.  ``serve_requests_total`` is the name the
#: CI serve-smoke greps out of ``/metrics``; the hot-cache and 304
#: counters are the acceptance signals that caching actually engaged
#: under load.
_REQUESTS = _metrics_registry().counter(
    "serve_requests_total", "HTTP requests handled, per endpoint", ("endpoint",)
)
_RESPONSES = _metrics_registry().counter(
    "serve_responses_total", "HTTP responses sent, per status", ("status",)
)
_REQUEST_SECONDS = _metrics_registry().histogram(
    "serve_request_seconds", "request resolution latency, per endpoint",
    ("endpoint",),
)
_HOT_HITS = _metrics_registry().counter(
    "serve_hot_cache_hits_total", "requests answered from the hot cache"
)
_HOT_MISSES = _metrics_registry().counter(
    "serve_hot_cache_misses_total", "hot-cache probes that fell through"
)
_HOT_ENTRIES = _metrics_registry().gauge(
    "serve_hot_cache_entries", "encoded responses in the hot cache"
)
_NOT_MODIFIED = _metrics_registry().counter(
    "serve_not_modified_total", "requests revalidated with 304 Not Modified"
)
_DEGRADED = _metrics_registry().counter(
    "serve_degraded_total", "degraded serves, per mode (stale | shed)", ("mode",)
)
_WRITE_BEHIND_FAILURES = _metrics_registry().counter(
    "store_write_behind_failures_total",
    "write-behind persists that failed (the build still served)",
)


def endpoint_label(path: str) -> str:
    """Collapse a request path onto its endpoint family (metric label).

    Raw paths would explode the ``serve_requests_total`` label space
    (every artifact name, every typo'd URL its own series); the label
    is the route, not the route's argument.
    """
    if path in ("/healthz", "/health"):
        return "/healthz"
    if path == "/metrics":
        return "/metrics"
    if path in ("/v1/artifacts", "/v1/artifacts/"):
        return "/v1/artifacts"
    if path.startswith("/v1/artifact/"):
        return "/v1/artifact/<name>"
    if path.startswith("/v1/contrast/"):
        return "/v1/contrast/<country>"
    if path in ("/v1/events", "/v1/events/"):
        return "/v1/events"
    if path in ("/v1/profile", "/v1/profile/"):
        return "/v1/profile"
    if path in ("/v1/trace", "/v1/trace/"):
        return "/v1/trace"
    return "<other>"


def _server_version() -> str:
    import repro

    return f"repro-serve/{getattr(repro, '__version__', '0')}"


def artifact_document(study: Study, name: str) -> dict:
    """The wire-format document of one artifact: config + rendered result.

    The single definition shared by the serving path and ``repro store
    warm`` -- a document rendered into the warehouse offline is
    byte-identical to what a cold server would have computed, so ETags
    agree no matter which side did the work.
    """
    result = study.artifact(name)
    config = dataclasses.asdict(study.config)
    # ``parallel`` affects build speed, never results (and it does not
    # key the store) -- normalize it so documents rendered by a
    # parallel warm and a sequential server are byte-identical.
    config["parallel"] = None
    return {"config": jsonify(config), **result.to_dict()}


@dataclass(frozen=True)
class Response:
    """One resolved response: status, headers, body bytes."""

    status: int
    headers: tuple[tuple[str, str], ...]
    body: bytes

    def header(self, name: str) -> str | None:
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return None

    def json(self) -> Any:
        """Decode the (possibly gzipped) body as JSON -- test helper."""
        body = self.body
        if self.header("Content-Encoding") == "gzip":
            body = gzip.decompress(body)
        return json.loads(body.decode("utf-8"))


class ServiceError(Exception):
    """A request that resolves to an error response."""

    def __init__(
        self,
        status: int,
        payload: dict,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        super().__init__(payload.get("error", f"HTTP {status}"))
        self.status = status
        self.payload = payload
        self.headers = headers


@dataclass(frozen=True)
class _Encoded:
    """One cacheable response body: canonical JSON, gzip twin, ETag.

    ``stale`` marks a last-known-good document served because the
    builder is degraded: it carries a ``Warning`` header, is never hot-
    cached, and never ETag-revalidates (a later fresh render must win).
    ``cache=False`` marks an inherently uncacheable body (``/metrics``,
    ``/v1/trace``: every scrape is a new observation) -- no ETag, no
    revalidation.
    """

    body: bytes
    gzipped: bytes | None
    etag: str
    stale: bool = False
    content_type: str = "application/json; charset=utf-8"
    cache: bool = True

    @classmethod
    def from_document(cls, document: dict) -> "_Encoded":
        body = json.dumps(document, separators=(",", ":")).encode("utf-8")
        etag = f'"{hashlib.sha256(body).hexdigest()[:20]}"'
        gzipped = (
            gzip.compress(body, compresslevel=6, mtime=0)
            if len(body) >= MIN_GZIP_BYTES
            else None
        )
        return cls(body=body, gzipped=gzipped, etag=etag)

    @classmethod
    def from_text(cls, text: str, content_type: str) -> "_Encoded":
        """A non-JSON, never-cached body (the Prometheus exposition)."""
        body = text.encode("utf-8")
        gzipped = (
            gzip.compress(body, compresslevel=6, mtime=0)
            if len(body) >= MIN_GZIP_BYTES
            else None
        )
        return cls(
            body=body,
            gzipped=gzipped,
            etag='"uncached"',
            content_type=content_type,
            cache=False,
        )


def etag_matches(if_none_match: str | None, etag: str) -> bool:
    """RFC 9110 ``If-None-Match`` comparison (weak tags compare equal)."""
    if not if_none_match:
        return False
    if if_none_match.strip() == "*":
        return True
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


@dataclass
class WarmerState:
    """Progress of the background warmer (reported by ``/healthz``)."""

    enabled: bool = True
    done: bool = False
    warmed: int = 0
    total: int = 0
    errors: list[str] = field(default_factory=list)


class ArtifactService:
    """Resolves API requests against one base configuration.

    Args:
        config: the default :class:`StudyConfig` requests resolve
            against; query parameters fork per-request copies.
        store: warehouse for layer payloads and rendered artifacts
            (``None`` uses the process-wide active store, which may
            itself be ``None`` -- the service then serves from memory
            only).
        hot_limit: max encoded responses kept in the in-memory cache.
        build_deadline_s: how long a request waits for the build lock
            (and how long a build may run before the breaker counts it
            as a failure).  ``None`` (default) waits indefinitely --
            the pre-degradation behaviour.
        max_build_queue: how many requests may queue on the build lock
            before new cold requests are shed (503 + ``Retry-After``,
            or stale if a last-known-good document exists).
    """

    def __init__(
        self,
        config: StudyConfig | None = None,
        store: Any = None,
        hot_limit: int = 512,
        build_deadline_s: float | None = None,
        max_build_queue: int = 8,
    ) -> None:
        from repro.store.warehouse import active_store

        self.config = config if config is not None else StudyConfig()
        self.store = store if store is not None else active_store()
        self.hot_limit = hot_limit
        self.build_deadline_s = build_deadline_s
        self.max_build_queue = max_build_queue
        # replint: allow[REP001] serving telemetry (healthz uptime), never artifact data
        self.started_at = time.time()
        self.requests = 0
        self.warmer = WarmerState()
        #: Degradation telemetry: ``stale`` (last-known-good served),
        #: ``shed`` (503 + Retry-After), ``slow_build`` (deadline missed
        #: by a build that still served fresh), ``breaker_open`` (a
        #: request found its artifact's breaker open).
        self.resilience_counts: Counter = Counter()
        self._hot: OrderedDict[tuple, _Encoded] = OrderedDict()
        self._hot_lock = threading.Lock()
        self._build_lock = threading.Lock()
        self._studies: dict[StudyConfig, Study] = {}
        # Last-known-good documents (per artifact+config), what serve-
        # stale degrades to; evicted LRU like the hot cache.
        self._good: OrderedDict[tuple, dict] = OrderedDict()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._build_waiters = 0

    # -- request entry points ----------------------------------------------

    def handle(
        self,
        method: str,
        target: str,
        headers: dict[str, str] | None = None,
        hot_only: bool = False,
    ) -> Response | None:
        """Resolve one request; the single entry point of the service.

        ``hot_only=True`` is the event loop's fast path: it returns
        ``None`` instead of computing, so the caller can retry in an
        executor thread without ever blocking the loop on a build.

        Every completed request runs inside a ``serve:request`` span
        and lands in the request counters/histogram; a ``hot_only``
        probe that misses discards its span (the executor retry records
        the real one), so a request is never double-counted.
        """
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        try:
            split = urlsplit(target)
            path, query = unquote(split.path), split.query
        except ValueError:
            path, query = target, ""
        endpoint = endpoint_label(path)
        with span("serve:request", method=method, endpoint=endpoint) as req_span:
            response = self._handle(method, path, query, headers, hot_only)
            if response is None:
                req_span.discard()
                return None  # hot_only miss: caller re-runs off-loop
            req_span.labels["status"] = str(response.status)
        _REQUESTS.inc(endpoint=endpoint)
        _RESPONSES.inc(status=str(response.status))
        _REQUEST_SECONDS.observe(req_span.duration_s, endpoint=endpoint)
        if response.status == 304:
            _NOT_MODIFIED.inc()
        return response

    def _handle(
        self,
        method: str,
        path: str,
        query: str,
        headers: dict[str, str],
        hot_only: bool,
    ) -> Response | None:
        try:
            if method not in ("GET", "HEAD"):
                raise ServiceError(
                    405,
                    {
                        "error": f"method {method} not allowed; this API is read-only",
                        "allow": ["GET", "HEAD"],
                    },
                )
            encoded = self._resolve(path, query, hot_only)
            if encoded is None:
                return None  # hot_only miss: caller re-runs off-loop
        except ServiceError as error:
            self.requests += 1
            encoded = _Encoded.from_document(error.payload)
            return self._respond(
                error.status, encoded, method, headers, cache=False,
                extra=error.headers,
            )
        except Exception as exc:  # never kill the connection on a bug
            self.requests += 1
            encoded = _Encoded.from_document(
                {"error": f"internal error: {type(exc).__name__}: {exc}"}
            )
            return self._respond(500, encoded, method, headers, cache=False)
        self.requests += 1
        return self._respond(
            200, encoded, method, headers,
            cache=encoded.cache and not encoded.stale,
        )

    def _resolve(self, path: str, query: str, hot_only: bool) -> _Encoded | None:
        if path in ("/healthz", "/health"):
            return _Encoded.from_document(self.health())
        if path == "/metrics":
            return self._metrics_endpoint(query)
        if path in ("/v1/trace", "/v1/trace/"):
            return self._trace_endpoint(query)
        if path in ("/v1/profile", "/v1/profile/"):
            return self._profile_endpoint(query)
        if path in ("/v1/artifacts", "/v1/artifacts/"):
            return self._listing()
        if path.startswith("/v1/artifact/"):
            name = path[len("/v1/artifact/"):]
            return self._artifact(name, query, hot_only)
        if path.startswith("/v1/contrast/"):
            country = path[len("/v1/contrast/"):]
            return self._contrast(country, query, hot_only)
        if path in ("/v1/events", "/v1/events/"):
            return self._events(query, hot_only)
        raise ServiceError(
            404,
            {"error": f"unknown path {path!r}", "endpoints": list(ENDPOINTS)},
        )

    def _respond(
        self,
        status: int,
        encoded: _Encoded,
        method: str,
        headers: dict[str, str],
        cache: bool,
        extra: tuple[tuple[str, str], ...] = (),
    ) -> Response:
        out: list[tuple[str, str]] = [
            ("Content-Type", encoded.content_type),
            ("Server", _server_version()),
            *extra,
        ]
        if encoded.stale:
            # RFC 9111 "Response is Stale": the body is a last-known-
            # good document, served because the builder is degraded.
            out.append(("Warning", '110 repro-serve "response is stale"'))
        if cache:
            out.append(("ETag", encoded.etag))
            out.append(("Cache-Control", "public, max-age=0, must-revalidate"))
            out.append(("Vary", "Accept-Encoding"))
            if etag_matches(headers.get("if-none-match"), encoded.etag):
                return Response(status=304, headers=tuple(out), body=b"")
        body = encoded.body
        if (
            encoded.gzipped is not None
            and "gzip" in headers.get("accept-encoding", "").lower()
        ):
            out.append(("Content-Encoding", "gzip"))
            body = encoded.gzipped
        if method == "HEAD":
            out.append(("Content-Length", str(len(body))))
            body = b""
        return Response(status=status, headers=tuple(out), body=body)

    # -- endpoints ----------------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` document (always computed fresh, never cached).

        ``status`` is ``"degraded"`` while any artifact's circuit
        breaker is not closed or the warmer hit errors; the
        ``resilience`` section carries the per-subsystem detail
        (breakers, retry counters, pool fallbacks/resubmissions, and
        how often this process served stale or shed load).
        """
        from repro.prof import build_peaks, process_document
        from repro.resilience.retry import RETRY_COUNTS
        from repro.util.procpool import fallback_contexts, resubmitted_shards

        with self._hot_lock:
            hot = len(self._hot)
        with self._breaker_lock:
            breakers = {
                name: breaker.snapshot()
                for name, breaker in sorted(self._breakers.items())
            }
        degraded = bool(self.warmer.errors) or any(
            snapshot["state"] != "closed" for snapshot in breakers.values()
        )
        store_gauges = None
        if self.store is not None:
            try:
                entries, size = self.store.refresh_gauges()
                store_gauges = {"entries": entries, "bytes": size}
            # Same contract as the /metrics scrape path: a health poll
            # must not fail over a damaged manifest; store verify/gc is
            # the repair surface.
            # replint: allow[REP007] health path: gauges simply stay at their last values
            except Exception:  # pragma: no cover - defensive
                pass
        # Per-layer bytes on disk vs peak heap while building: the
        # store side comes from the warehouse index, the heap side from
        # build_peak_bytes (populated only when memory profiling ran).
        store_layer_bytes: dict[str, int] = {}
        if self.store is not None:
            try:
                for entry in self.store.entries():
                    if entry.kind == "layer":
                        store_layer_bytes[entry.name] = (
                            store_layer_bytes.get(entry.name, 0)
                            + entry.total_bytes
                        )
            # replint: allow[REP007] health path: the breakdown simply omits the store side
            except Exception:  # pragma: no cover - defensive
                pass
        heap_peaks = build_peaks()
        memory_breakdown = {
            layer: {
                "store_bytes": store_layer_bytes.get(layer),
                "build_peak_bytes": heap_peaks.get(layer),
            }
            for layer in sorted({*store_layer_bytes, *heap_peaks})
        }
        # replint: allow[REP001] serving telemetry (healthz uptime), never artifact data
        uptime_s = round(time.time() - self.started_at, 3)
        return {
            "status": "degraded" if degraded else "ok",
            "uptime_s": uptime_s,
            "requests": self.requests,
            "artifacts": len(registry.names()),
            "hot_cache": hot,
            "store": str(self.store.root) if self.store is not None else None,
            "warmer": {
                "enabled": self.warmer.enabled,
                "done": self.warmer.done,
                "warmed": self.warmer.warmed,
                "total": self.warmer.total,
            },
            "resilience": {
                "breakers": breakers,
                "build_deadline_s": self.build_deadline_s,
                "max_build_queue": self.max_build_queue,
                "counts": dict(sorted(self.resilience_counts.items())),
                "retry_counts": dict(sorted(RETRY_COUNTS.items())),
                "pool": {
                    "fallback_contexts": list(fallback_contexts()),
                    "resubmitted_shards": [
                        list(item) for item in resubmitted_shards()
                    ],
                },
            },
            "process": {**process_document(), "uptime_s": uptime_s},
            "memory": memory_breakdown,
            "telemetry": {
                "degraded_total": {
                    key[0]: int(value)
                    for key, value in _DEGRADED.sample_items()
                },
                "write_behind_failures": int(_WRITE_BEHIND_FAILURES.value()),
                "store_gauges": store_gauges,
                "metrics": "/metrics",
                "trace": "/v1/trace",
                "profile": "/v1/profile",
            },
            "config": jsonify(dataclasses.asdict(self.config)),
        }

    def _metrics_endpoint(self, query: str) -> _Encoded:
        """``GET /metrics``: the whole registry, Prometheus text format."""
        if query:
            raise ServiceError(400, {"error": "/metrics takes no parameters"})
        from repro.prof import refresh_process_gauges

        refresh_process_gauges()
        with self._hot_lock:
            _HOT_ENTRIES.set(len(self._hot))
        if self.store is not None:
            try:
                self.store.refresh_gauges()
            # A scrape must not fail (or warn on every poll) over a
            # damaged manifest; store verify/gc is the repair surface
            # and the stale gauge values are themselves the signal.
            # replint: allow[REP007] scrape path: gauges simply stay at their last values
            except Exception:  # pragma: no cover - defensive
                pass
        return _Encoded.from_text(
            _metrics_registry().render_prometheus(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def _trace_endpoint(self, query: str) -> _Encoded:
        """``GET /v1/trace?last=N``: recent request/build span trees."""
        last: int | None = None
        for param, raw in parse_qsl(query, keep_blank_values=True):
            if param != "last":
                raise ServiceError(
                    400,
                    {"error": f"unknown parameter {param!r}", "known": ["last"]},
                )
            try:
                last = int(raw)
            except ValueError:
                raise ServiceError(
                    400,
                    {"error": f"parameter 'last' needs an integer, got {raw!r}"},
                ) from None
            if last < 0:
                raise ServiceError(400, {"error": "'last' must be >= 0"})
        spans = recent_spans(last)
        document = {
            "last": last,
            "count": len(spans),
            "spans": [span_tree(node) for node in spans],
        }
        return dataclasses.replace(_Encoded.from_document(document), cache=False)

    def _profile_endpoint(self, query: str) -> _Encoded:
        """``GET /v1/profile?span=<pattern>&format=...&last=N``.

        The span-profiling surface: every recent span carrying a
        cProfile capture (the server must run with profiling enabled
        -- ``repro serve --profile`` -- or nothing matches and the
        empty document is the valid answer).  ``format=tree`` (default)
        returns the compact call-tree documents; ``format=speedscope``
        returns one speedscope file ready to load in the UI.  Always
        uncacheable: every request observes the live span ring.
        """
        from repro.prof import profiled_spans, profiling_enabled, speedscope_document

        span_filter: str | None = None
        fmt = "tree"
        last: int | None = None
        for param, raw in parse_qsl(query, keep_blank_values=True):
            if param == "span":
                if not raw:
                    raise ServiceError(
                        400, {"error": "parameter 'span' must not be empty"}
                    )
                span_filter = raw
            elif param == "format":
                if raw not in ("tree", "speedscope"):
                    raise ServiceError(
                        400,
                        {
                            "error": f"unknown format {raw!r}",
                            "known": ["tree", "speedscope"],
                        },
                    )
                fmt = raw
            elif param == "last":
                try:
                    last = int(raw)
                except ValueError:
                    raise ServiceError(
                        400,
                        {"error": f"parameter 'last' needs an integer, got {raw!r}"},
                    ) from None
                if last < 0:
                    raise ServiceError(400, {"error": "'last' must be >= 0"})
            else:
                raise ServiceError(
                    400,
                    {
                        "error": f"unknown parameter {param!r}",
                        "known": ["span", "format", "last"],
                    },
                )
        captured = profiled_spans(recent_spans(last), span_filter)
        if fmt == "speedscope":
            document = speedscope_document(
                [(node.name, node.profile) for node in captured]
            )
        else:
            config = profiling_enabled()
            document = {
                "span": span_filter,
                "last": last,
                "count": len(captured),
                "profiling": {
                    "enabled": config is not None,
                    "spans": list(config.spans) if config is not None else [],
                },
                "profiles": [
                    {
                        "span": node.name,
                        "labels": dict(sorted(node.labels.items())),
                        "duration_ms": round(node.duration_s * 1000.0, 3),
                        "peak_bytes": node.peak_bytes,
                        "profile": node.profile,
                    }
                    for node in captured
                ],
            }
        return dataclasses.replace(_Encoded.from_document(document), cache=False)

    def _listing(self) -> _Encoded:
        key = ("listing",)
        hit = self._hot_get(key)
        if hit is not None:
            return hit
        document = {
            "endpoints": list(ENDPOINTS),
            "config": jsonify(dataclasses.asdict(self.config)),
            "artifacts": [
                {
                    "name": spec.name,
                    "title": spec.title,
                    "needs": sorted(spec.needs),
                    "paper": spec.paper,
                    "description": spec.description,
                    "href": f"/v1/artifact/{spec.name}",
                }
                for spec in registry.specs()
            ],
        }
        return self._hot_put(key, _Encoded.from_document(document))

    def _artifact(self, name: str, query: str, hot_only: bool) -> _Encoded | None:
        if not name or "/" in name:
            raise ServiceError(
                404,
                {"error": f"bad artifact path {name!r}", "endpoints": list(ENDPOINTS)},
            )
        if name not in registry.names():
            close = registry.suggest(name)
            payload: dict[str, Any] = {"error": f"unknown artifact {name!r}"}
            if close:
                payload["did_you_mean"] = close
            payload["see"] = "/v1/artifacts"
            raise ServiceError(404, payload)
        config = self._config_from_query(query)
        key = ("artifact", name, config.result_key)
        hit = self._hot_get(key)
        if hit is not None:
            return hit
        if hot_only:
            return None
        encoded = self._render_artifact(name, config)
        if encoded.stale:
            return encoded  # never hot-cache a degraded body
        return self._hot_put(key, encoded)

    def _contrast(self, country: str, query: str, hot_only: bool) -> _Encoded | None:
        config = self._config_from_query(query)
        code = country.strip().upper()
        key = ("contrast", code, config.result_key)
        hit = self._hot_get(key)
        if hit is not None:
            return hit
        if hot_only:
            return None  # rendering the contrast may build; go off-loop
        contrast = self._render_artifact("contrast", config)
        full = json.loads(contrast.body.decode("utf-8"))
        rows = {row["country"]: row for row in full["rows"]}
        if code not in rows:
            import difflib

            close = difflib.get_close_matches(code, sorted(rows), n=3, cutoff=0.3)
            payload: dict[str, Any] = {
                "error": f"unknown country {country!r}",
                "countries": sorted(rows),
            }
            if close:
                payload["did_you_mean"] = close
            raise ServiceError(404, payload)
        document = {
            "country": code,
            "config": full["config"],
            "columns": full["columns"],
            "row": rows[code],
            "metadata": full["metadata"],
            "source": "/v1/artifact/contrast",
        }
        if contrast.stale:
            # Derived from a stale full table: stays marked, stays uncached.
            document["degraded"] = full.get("degraded", {"stale": True})
            return dataclasses.replace(_Encoded.from_document(document), stale=True)
        return self._hot_put(key, _Encoded.from_document(document))

    def _events(self, query: str, hot_only: bool) -> _Encoded | None:
        """``GET /v1/events?since=<day>&country=<CC>&min_severity=<s>``.

        A filtered view over the ``sentinel_events`` artifact, so it
        inherits the warehouse/compute tiers and the degraded path; an
        empty ``events`` list is a valid 200 ("silence is valid data").
        All three filter parameters are validated to 400s -- bad input
        must never surface as a 500 from ``int()``.
        """
        from urllib.parse import urlencode

        from repro.sentinel.config import SEVERITIES, severity_rank

        since = 0
        country: str | None = None
        min_severity = SEVERITIES[0]
        scale_pairs: list[tuple[str, str]] = []
        for param, raw in parse_qsl(query, keep_blank_values=True):
            if param == "since":
                try:
                    since = int(raw)
                except ValueError:
                    raise ServiceError(
                        400,
                        {"error": f"parameter 'since' needs an integer, got {raw!r}"},
                    ) from None
                if since < 0:
                    raise ServiceError(400, {"error": "'since' must be >= 0"})
            elif param == "country":
                country = raw.strip().upper()
                if not country:
                    raise ServiceError(
                        400, {"error": "parameter 'country' must not be empty"}
                    )
            elif param == "min_severity":
                if raw not in SEVERITIES:
                    raise ServiceError(
                        400,
                        {
                            "error": f"unknown severity {raw!r}",
                            "known": list(SEVERITIES),
                        },
                    )
                min_severity = raw
            else:
                # Scale/override parameters fall through to the shared
                # config parser, which 400s anything it doesn't know.
                scale_pairs.append((param, raw))
        config = self._config_from_query(urlencode(scale_pairs))
        key = ("events", since, country, min_severity, config.result_key)
        hit = self._hot_get(key)
        if hit is not None:
            return hit
        if hot_only:
            return None  # rendering the feed may build; go off-loop
        full_encoded = self._render_artifact("sentinel_events", config)
        full = json.loads(full_encoded.body.decode("utf-8"))
        min_rank = severity_rank(min_severity)
        events = [
            row
            for row in full["rows"]
            if row["day"] >= since
            and (country is None or row["scope"] == country)
            and severity_rank(row["severity"]) >= min_rank
        ]
        document = {
            "since": since,
            "country": country,
            "min_severity": min_severity,
            "count": len(events),
            "config": full["config"],
            "columns": full["columns"],
            "events": events,
            "metadata": full["metadata"],
            "source": "/v1/artifact/sentinel_events",
        }
        if full_encoded.stale:
            # Derived from a stale feed: stays marked, stays uncached.
            document["degraded"] = full.get("degraded", {"stale": True})
            return dataclasses.replace(_Encoded.from_document(document), stale=True)
        return self._hot_put(key, _Encoded.from_document(document))

    # -- resolution helpers -------------------------------------------------

    def _config_from_query(self, query: str) -> StudyConfig:
        """The request's effective config: base + scale preset + overrides."""
        if not query:
            return self.config
        overrides: dict[str, int] = {}
        config = self.config
        for param, raw in parse_qsl(query, keep_blank_values=True):
            if param == "scale":
                if raw not in SCALE_PRESETS:
                    raise ServiceError(
                        400,
                        {
                            "error": f"unknown scale {raw!r}",
                            "known": sorted(SCALE_PRESETS),
                        },
                    )
                preset = SCALE_PRESETS[raw]
                overrides.setdefault("days", preset.days)
                overrides.setdefault("sites", preset.sites)
                continue
            if param not in QUERY_OVERRIDES:
                import difflib

                close = difflib.get_close_matches(
                    param, [*QUERY_OVERRIDES, "scale"], n=3, cutoff=0.5
                )
                payload: dict[str, Any] = {
                    "error": f"unknown parameter {param!r}",
                    "known": ["scale", *QUERY_OVERRIDES],
                }
                if close:
                    payload["did_you_mean"] = close
                raise ServiceError(400, payload)
            try:
                overrides[param] = int(raw)
            except ValueError:
                raise ServiceError(
                    400,
                    {"error": f"parameter {param!r} needs an integer, got {raw!r}"},
                ) from None
        if overrides:
            try:
                config = config.replace(**overrides)
            except ValueError as exc:
                raise ServiceError(400, {"error": str(exc)}) from None
        return config

    def _render_artifact(self, name: str, config: StudyConfig) -> _Encoded:
        """Warehouse -> compute: the slow tiers of the artifact path.

        Store reads run under the shared retry policy (a disk hiccup is
        not an outage); a corrupt entry stays a miss and recomputes.
        The compute tier degrades instead of queueing forever: see
        :meth:`_build_fresh`.
        """
        from repro.resilience.retry import STORE_POLICY, call_with_retry
        from repro.store.warehouse import StoreReadError, artifact_key

        good_key = (name, config.result_key)
        store_key = artifact_key(config, name) if self.store is not None else None
        if self.store is not None:
            try:
                document = call_with_retry(
                    lambda: self.store.load_artifact(name, store_key),
                    label=f"serve:{name}",
                    policy=STORE_POLICY,
                    retryable=(StoreReadError, OSError),
                )
            except Exception:
                # A corrupt warehouse entry is a miss, not an outage --
                # recompute and serve (the same degrade-to-rebuild
                # contract the session's layer tier has); `store gc`
                # is the repair path for the damaged entry itself.
                document = None
            if document is not None:
                self._remember_good(good_key, document)
                return _Encoded.from_document(document)
        return self._build_fresh(name, config, good_key, store_key)

    def _build_fresh(
        self, name: str, config: StudyConfig, good_key: tuple, store_key: Any
    ) -> _Encoded:
        """The compute tier, degraded gracefully under pressure.

        In order: an open circuit breaker or a saturated build queue
        degrades immediately (stale if we have it, 503 + ``Retry-After``
        if not); a build-lock wait longer than ``build_deadline_s``
        degrades too.  A build that *fails* trips the breaker and
        degrades; a build that finishes but blew the deadline serves
        fresh -- the work is done -- while still counting against the
        breaker so sustained slowness eventually sheds instead of
        queueing.
        """
        breaker = self._breaker(name)
        if not breaker.allow():
            self.resilience_counts["breaker_open"] += 1
            return self._degrade(
                name, good_key, "circuit breaker open",
                retry_after=breaker.reset_after_s,
            )
        with self._breaker_lock:
            if self._build_waiters >= self.max_build_queue:
                return self._degrade(
                    name, good_key, "build queue saturated", retry_after=1.0
                )
            self._build_waiters += 1
        acquired = False
        try:
            timeout = -1 if self.build_deadline_s is None else self.build_deadline_s
            acquired = self._build_lock.acquire(timeout=timeout)
            if not acquired:
                breaker.record_failure()
                return self._degrade(
                    name, good_key, "cold-build deadline exceeded",
                    retry_after=self.build_deadline_s or 1.0,
                )
            started = time.monotonic()
            try:
                fault_hook("slow-build", name)
                fault_hook("build-error", name)
                study = self._studies.setdefault(config, Study(config))
                document = artifact_document(study, name)
            except ServiceError:
                raise  # request-shaped failures are not builder health
            except Exception as exc:
                breaker.record_failure()
                stale = self._recall_good(good_key)
                if stale is None:
                    raise
                return self._stale_encoded(stale, f"build failed: {exc}")
            elapsed = time.monotonic() - started
            if self.build_deadline_s is not None and elapsed > self.build_deadline_s:
                self.resilience_counts["slow_build"] += 1
                breaker.record_failure()
            else:
                breaker.record_success()
        finally:
            if acquired:
                self._build_lock.release()
            with self._breaker_lock:
                self._build_waiters -= 1
        self._remember_good(good_key, document)
        if self.store is not None:
            try:
                self.store.save_artifact(name, store_key, document)
            except Exception as exc:
                # Write-behind is best-effort -- the fresh render still
                # serves -- but the degradation must leave a trace.
                import warnings

                _WRITE_BEHIND_FAILURES.inc()
                warnings.warn(
                    f"serve: could not persist artifact {name!r} ({exc}); "
                    "serving the render without write-behind",
                    RuntimeWarning,
                )
        return _Encoded.from_document(document)

    # -- degradation helpers --------------------------------------------------

    def _breaker(self, name: str) -> CircuitBreaker:
        """This artifact's circuit breaker (created closed on first use)."""
        with self._breaker_lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = CircuitBreaker(
                    failure_threshold=3,
                    reset_after_s=self.build_deadline_s or 5.0,
                )
            return breaker

    def _degrade(
        self, name: str, good_key: tuple, reason: str, retry_after: float
    ) -> _Encoded:
        """Serve stale if we can; shed (503 + ``Retry-After``) if we cannot."""
        stale = self._recall_good(good_key)
        if stale is not None:
            return self._stale_encoded(stale, reason)
        self.resilience_counts["shed"] += 1
        _DEGRADED.inc(mode="shed")
        raise ServiceError(
            503,
            {
                "error": f"artifact {name!r} temporarily unavailable: {reason}",
                "retry_after_s": retry_after,
            },
            headers=(("Retry-After", str(max(1, round(retry_after)))),),
        )

    def _stale_encoded(self, document: dict, reason: str) -> _Encoded:
        self.resilience_counts["stale"] += 1
        _DEGRADED.inc(mode="stale")
        marked = {**document, "degraded": {"stale": True, "reason": reason}}
        return dataclasses.replace(_Encoded.from_document(marked), stale=True)

    def _remember_good(self, key: tuple, document: dict) -> None:
        with self._hot_lock:
            self._good[key] = document
            self._good.move_to_end(key)
            while len(self._good) > self.hot_limit:
                self._good.popitem(last=False)

    def _recall_good(self, key: tuple) -> dict | None:
        with self._hot_lock:
            return self._good.get(key)

    def drop_hot(self) -> int:
        """Evict the whole hot cache (drill/test hook); last-known-good stays.

        Forces the next request of every artifact back through the
        warehouse/compute tiers, which is how the chaos drill makes
        store faults actually fire instead of being absorbed by the
        hot tier.
        """
        with self._hot_lock:
            dropped = len(self._hot)
            self._hot.clear()
        return dropped

    def _hot_get(self, key: tuple) -> _Encoded | None:
        with self._hot_lock:
            encoded = self._hot.get(key)
            if encoded is not None:
                self._hot.move_to_end(key)
        if encoded is not None:
            _HOT_HITS.inc()
        else:
            _HOT_MISSES.inc()
        return encoded

    def _hot_put(self, key: tuple, encoded: _Encoded) -> _Encoded:
        with self._hot_lock:
            self._hot[key] = encoded
            self._hot.move_to_end(key)
            while len(self._hot) > self.hot_limit:
                self._hot.popitem(last=False)
            _HOT_ENTRIES.set(len(self._hot))
        return encoded

    # -- the warmer ----------------------------------------------------------

    def warm(self, names: Iterable[str] | None = None) -> int:
        """Precompute (or load from the warehouse) the default artifact set.

        Runs synchronously; the HTTP front end calls it from an executor
        thread at startup so the server answers ``/healthz`` immediately
        and artifact requests as they become warm.  Returns the number
        of artifacts now hot.
        """
        wanted = list(names) if names is not None else registry.names()
        self.warmer.total = len(wanted)
        for name in wanted:
            try:
                self._artifact(name, "", hot_only=False)
                self.warmer.warmed += 1
            except Exception as exc:  # pragma: no cover - defensive
                self.warmer.errors.append(f"{name}: {exc}")
        self.warmer.done = True
        return self.warmer.warmed
