"""The serving core: HTTP-shaped request resolution, no sockets.

:class:`ArtifactService` maps read-only API requests onto the artifact
registry, the :class:`~repro.api.session.Study` session, and the
warehouse::

    GET /healthz                      liveness + cache/warmer state
    GET /v1/artifacts                 the registry listing (names, layers)
    GET /v1/artifact/<name>?days=7    one rendered artifact as JSON
    GET /v1/contrast/<country>        one country's three-way contrast row

Responses are canonical JSON bytes with a strong ``ETag`` derived from
the content digest; ``If-None-Match`` revalidation returns ``304``, and
bodies compress with gzip when the client accepts it.  Resolution is a
three-tier read: an in-memory **hot cache** of encoded responses, then
the warehouse's rendered-artifact entries, then an actual compute
through the session (which itself reads through the warehouse for layer
payloads and writes freshly rendered artifacts behind).

The class is deliberately socket-free -- the asyncio front end
(:mod:`repro.serve.http`) calls :meth:`handle`, and tests can drive the
full semantics (routing, ETags, gzip, error suggestions) without a
server.  Everything here is thread-safe: the hot path takes no locks
and computes serialize behind one build lock, so the event loop can
answer cached requests while an executor thread renders a cold one.
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.api import Study, StudyConfig, jsonify, registry
from repro.datasets.scenarios import SCALE_PRESETS

#: Config fields a request may override via query parameters -- the
#: same set the CLI's ``name@key=value`` overrides accept.
QUERY_OVERRIDES = (
    "days",
    "sites",
    "seed",
    "link_clicks",
    "probe_targets",
    "probe_interval_days",
)

#: Bodies below this size are served identity-encoded even to
#: gzip-accepting clients (the header overhead would exceed the win).
MIN_GZIP_BYTES = 256

#: The public endpoint table (rendered into listings and 404 bodies).
ENDPOINTS = (
    "/healthz",
    "/v1/artifacts",
    "/v1/artifact/<name>",
    "/v1/contrast/<country>",
)


def _server_version() -> str:
    import repro

    return f"repro-serve/{getattr(repro, '__version__', '0')}"


def artifact_document(study: Study, name: str) -> dict:
    """The wire-format document of one artifact: config + rendered result.

    The single definition shared by the serving path and ``repro store
    warm`` -- a document rendered into the warehouse offline is
    byte-identical to what a cold server would have computed, so ETags
    agree no matter which side did the work.
    """
    result = study.artifact(name)
    config = dataclasses.asdict(study.config)
    # ``parallel`` affects build speed, never results (and it does not
    # key the store) -- normalize it so documents rendered by a
    # parallel warm and a sequential server are byte-identical.
    config["parallel"] = None
    return {"config": jsonify(config), **result.to_dict()}


@dataclass(frozen=True)
class Response:
    """One resolved response: status, headers, body bytes."""

    status: int
    headers: tuple[tuple[str, str], ...]
    body: bytes

    def header(self, name: str) -> str | None:
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return None

    def json(self) -> Any:
        """Decode the (possibly gzipped) body as JSON -- test helper."""
        body = self.body
        if self.header("Content-Encoding") == "gzip":
            body = gzip.decompress(body)
        return json.loads(body.decode("utf-8"))


class ServiceError(Exception):
    """A request that resolves to an error response."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(payload.get("error", f"HTTP {status}"))
        self.status = status
        self.payload = payload


@dataclass(frozen=True)
class _Encoded:
    """One cacheable response body: canonical JSON, gzip twin, ETag."""

    body: bytes
    gzipped: bytes | None
    etag: str

    @classmethod
    def from_document(cls, document: dict) -> "_Encoded":
        body = json.dumps(document, separators=(",", ":")).encode("utf-8")
        etag = f'"{hashlib.sha256(body).hexdigest()[:20]}"'
        gzipped = (
            gzip.compress(body, compresslevel=6, mtime=0)
            if len(body) >= MIN_GZIP_BYTES
            else None
        )
        return cls(body=body, gzipped=gzipped, etag=etag)


def etag_matches(if_none_match: str | None, etag: str) -> bool:
    """RFC 9110 ``If-None-Match`` comparison (weak tags compare equal)."""
    if not if_none_match:
        return False
    if if_none_match.strip() == "*":
        return True
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


@dataclass
class WarmerState:
    """Progress of the background warmer (reported by ``/healthz``)."""

    enabled: bool = True
    done: bool = False
    warmed: int = 0
    total: int = 0
    errors: list[str] = field(default_factory=list)


class ArtifactService:
    """Resolves API requests against one base configuration.

    Args:
        config: the default :class:`StudyConfig` requests resolve
            against; query parameters fork per-request copies.
        store: warehouse for layer payloads and rendered artifacts
            (``None`` uses the process-wide active store, which may
            itself be ``None`` -- the service then serves from memory
            only).
        hot_limit: max encoded responses kept in the in-memory cache.
    """

    def __init__(
        self,
        config: StudyConfig | None = None,
        store: Any = None,
        hot_limit: int = 512,
    ) -> None:
        from repro.store.warehouse import active_store

        self.config = config if config is not None else StudyConfig()
        self.store = store if store is not None else active_store()
        self.hot_limit = hot_limit
        # replint: allow[REP001] serving telemetry (healthz uptime), never artifact data
        self.started_at = time.time()
        self.requests = 0
        self.warmer = WarmerState()
        self._hot: OrderedDict[tuple, _Encoded] = OrderedDict()
        self._hot_lock = threading.Lock()
        self._build_lock = threading.Lock()
        self._studies: dict[StudyConfig, Study] = {}

    # -- request entry points ----------------------------------------------

    def handle(
        self,
        method: str,
        target: str,
        headers: dict[str, str] | None = None,
        hot_only: bool = False,
    ) -> Response | None:
        """Resolve one request; the single entry point of the service.

        ``hot_only=True`` is the event loop's fast path: it returns
        ``None`` instead of computing, so the caller can retry in an
        executor thread without ever blocking the loop on a build.
        """
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        try:
            if method not in ("GET", "HEAD"):
                raise ServiceError(
                    405,
                    {
                        "error": f"method {method} not allowed; this API is read-only",
                        "allow": ["GET", "HEAD"],
                    },
                )
            split = urlsplit(target)
            path = unquote(split.path)
            encoded = self._resolve(path, split.query, hot_only)
            if encoded is None:
                return None  # hot_only miss: caller re-runs off-loop
        except ServiceError as error:
            self.requests += 1
            encoded = _Encoded.from_document(error.payload)
            return self._respond(error.status, encoded, method, headers, cache=False)
        except Exception as exc:  # never kill the connection on a bug
            self.requests += 1
            encoded = _Encoded.from_document(
                {"error": f"internal error: {type(exc).__name__}: {exc}"}
            )
            return self._respond(500, encoded, method, headers, cache=False)
        self.requests += 1
        return self._respond(200, encoded, method, headers, cache=True)

    def _resolve(self, path: str, query: str, hot_only: bool) -> _Encoded | None:
        if path in ("/healthz", "/health"):
            return _Encoded.from_document(self.health())
        if path in ("/v1/artifacts", "/v1/artifacts/"):
            return self._listing()
        if path.startswith("/v1/artifact/"):
            name = path[len("/v1/artifact/"):]
            return self._artifact(name, query, hot_only)
        if path.startswith("/v1/contrast/"):
            country = path[len("/v1/contrast/"):]
            return self._contrast(country, query, hot_only)
        raise ServiceError(
            404,
            {"error": f"unknown path {path!r}", "endpoints": list(ENDPOINTS)},
        )

    def _respond(
        self,
        status: int,
        encoded: _Encoded,
        method: str,
        headers: dict[str, str],
        cache: bool,
    ) -> Response:
        out: list[tuple[str, str]] = [
            ("Content-Type", "application/json; charset=utf-8"),
            ("Server", _server_version()),
        ]
        if cache:
            out.append(("ETag", encoded.etag))
            out.append(("Cache-Control", "public, max-age=0, must-revalidate"))
            out.append(("Vary", "Accept-Encoding"))
            if etag_matches(headers.get("if-none-match"), encoded.etag):
                return Response(status=304, headers=tuple(out), body=b"")
        body = encoded.body
        if (
            encoded.gzipped is not None
            and "gzip" in headers.get("accept-encoding", "").lower()
        ):
            out.append(("Content-Encoding", "gzip"))
            body = encoded.gzipped
        if method == "HEAD":
            out.append(("Content-Length", str(len(body))))
            body = b""
        return Response(status=status, headers=tuple(out), body=body)

    # -- endpoints ----------------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` document (always computed fresh, never cached)."""
        with self._hot_lock:
            hot = len(self._hot)
        return {
            "status": "ok",
            # replint: allow[REP001] serving telemetry (healthz uptime), never artifact data
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": self.requests,
            "artifacts": len(registry.names()),
            "hot_cache": hot,
            "store": str(self.store.root) if self.store is not None else None,
            "warmer": {
                "enabled": self.warmer.enabled,
                "done": self.warmer.done,
                "warmed": self.warmer.warmed,
                "total": self.warmer.total,
            },
            "config": jsonify(dataclasses.asdict(self.config)),
        }

    def _listing(self) -> _Encoded:
        key = ("listing",)
        hit = self._hot_get(key)
        if hit is not None:
            return hit
        document = {
            "endpoints": list(ENDPOINTS),
            "config": jsonify(dataclasses.asdict(self.config)),
            "artifacts": [
                {
                    "name": spec.name,
                    "title": spec.title,
                    "needs": sorted(spec.needs),
                    "paper": spec.paper,
                    "description": spec.description,
                    "href": f"/v1/artifact/{spec.name}",
                }
                for spec in registry.specs()
            ],
        }
        return self._hot_put(key, _Encoded.from_document(document))

    def _artifact(self, name: str, query: str, hot_only: bool) -> _Encoded | None:
        if not name or "/" in name:
            raise ServiceError(
                404,
                {"error": f"bad artifact path {name!r}", "endpoints": list(ENDPOINTS)},
            )
        if name not in registry.names():
            close = registry.suggest(name)
            payload: dict[str, Any] = {"error": f"unknown artifact {name!r}"}
            if close:
                payload["did_you_mean"] = close
            payload["see"] = "/v1/artifacts"
            raise ServiceError(404, payload)
        config = self._config_from_query(query)
        key = ("artifact", name, config.result_key)
        hit = self._hot_get(key)
        if hit is not None:
            return hit
        if hot_only:
            return None
        return self._hot_put(key, self._render_artifact(name, config))

    def _contrast(self, country: str, query: str, hot_only: bool) -> _Encoded | None:
        config = self._config_from_query(query)
        code = country.strip().upper()
        key = ("contrast", code, config.result_key)
        hit = self._hot_get(key)
        if hit is not None:
            return hit
        if hot_only:
            return None  # rendering the contrast may build; go off-loop
        document = self._render_artifact("contrast", config).body
        full = json.loads(document.decode("utf-8"))
        rows = {row["country"]: row for row in full["rows"]}
        if code not in rows:
            import difflib

            close = difflib.get_close_matches(code, sorted(rows), n=3, cutoff=0.3)
            payload: dict[str, Any] = {
                "error": f"unknown country {country!r}",
                "countries": sorted(rows),
            }
            if close:
                payload["did_you_mean"] = close
            raise ServiceError(404, payload)
        return self._hot_put(
            key,
            _Encoded.from_document(
                {
                    "country": code,
                    "config": full["config"],
                    "columns": full["columns"],
                    "row": rows[code],
                    "metadata": full["metadata"],
                    "source": "/v1/artifact/contrast",
                }
            ),
        )

    # -- resolution helpers -------------------------------------------------

    def _config_from_query(self, query: str) -> StudyConfig:
        """The request's effective config: base + scale preset + overrides."""
        if not query:
            return self.config
        overrides: dict[str, int] = {}
        config = self.config
        for param, raw in parse_qsl(query, keep_blank_values=True):
            if param == "scale":
                if raw not in SCALE_PRESETS:
                    raise ServiceError(
                        400,
                        {
                            "error": f"unknown scale {raw!r}",
                            "known": sorted(SCALE_PRESETS),
                        },
                    )
                preset = SCALE_PRESETS[raw]
                overrides.setdefault("days", preset.days)
                overrides.setdefault("sites", preset.sites)
                continue
            if param not in QUERY_OVERRIDES:
                import difflib

                close = difflib.get_close_matches(
                    param, [*QUERY_OVERRIDES, "scale"], n=3, cutoff=0.5
                )
                payload: dict[str, Any] = {
                    "error": f"unknown parameter {param!r}",
                    "known": ["scale", *QUERY_OVERRIDES],
                }
                if close:
                    payload["did_you_mean"] = close
                raise ServiceError(400, payload)
            try:
                overrides[param] = int(raw)
            except ValueError:
                raise ServiceError(
                    400,
                    {"error": f"parameter {param!r} needs an integer, got {raw!r}"},
                ) from None
        if overrides:
            try:
                config = config.replace(**overrides)
            except ValueError as exc:
                raise ServiceError(400, {"error": str(exc)}) from None
        return config

    def _render_artifact(self, name: str, config: StudyConfig) -> _Encoded:
        """Warehouse -> compute: the slow tiers of the artifact path."""
        from repro.store.warehouse import artifact_key

        store_key = artifact_key(config, name) if self.store is not None else None
        if self.store is not None:
            try:
                document = self.store.load_artifact(name, store_key)
            except Exception:
                # A corrupt warehouse entry is a miss, not an outage --
                # recompute and serve (the same degrade-to-rebuild
                # contract the session's layer tier has); `store gc`
                # is the repair path for the damaged entry itself.
                document = None
            if document is not None:
                return _Encoded.from_document(document)
        with self._build_lock:
            study = self._studies.setdefault(config, Study(config))
            document = artifact_document(study, name)
        if self.store is not None:
            try:
                self.store.save_artifact(name, store_key, document)
            except Exception as exc:
                # Write-behind is best-effort -- the fresh render still
                # serves -- but the degradation must leave a trace.
                import warnings

                warnings.warn(
                    f"serve: could not persist artifact {name!r} ({exc}); "
                    "serving the render without write-behind",
                    RuntimeWarning,
                )
        return _Encoded.from_document(document)

    def _hot_get(self, key: tuple) -> _Encoded | None:
        with self._hot_lock:
            encoded = self._hot.get(key)
            if encoded is not None:
                self._hot.move_to_end(key)
            return encoded

    def _hot_put(self, key: tuple, encoded: _Encoded) -> _Encoded:
        with self._hot_lock:
            self._hot[key] = encoded
            self._hot.move_to_end(key)
            while len(self._hot) > self.hot_limit:
                self._hot.popitem(last=False)
        return encoded

    # -- the warmer ----------------------------------------------------------

    def warm(self, names: Iterable[str] | None = None) -> int:
        """Precompute (or load from the warehouse) the default artifact set.

        Runs synchronously; the HTTP front end calls it from an executor
        thread at startup so the server answers ``/healthz`` immediately
        and artifact requests as they become warm.  Returns the number
        of artifacts now hot.
        """
        wanted = list(names) if names is not None else registry.names()
        self.warmer.total = len(wanted)
        for name in wanted:
            try:
                self._artifact(name, "", hot_only=False)
                self.warmer.warmed += 1
            except Exception as exc:  # pragma: no cover - defensive
                self.warmer.errors.append(f"{name}: {exc}")
        self.warmer.done = True
        return self.warmer.warmed
