"""repro.serve: the read-only HTTP layer over the artifact registry.

An :class:`ArtifactService` resolves API requests (artifact documents,
the per-country contrast, health) through an in-memory hot cache, the
:mod:`repro.store` warehouse, and finally the lazy session; the asyncio
front end in :mod:`repro.serve.http` puts it on a socket::

    python -m repro serve --store ./warehouse --days 14 --sites 300

    GET /healthz
    GET /v1/artifacts
    GET /v1/artifact/contrast?days=14&sites=300
    GET /v1/contrast/DE

Content digests double as strong ETags, so trackers polling the feeds
revalidate with ``If-None-Match`` and pay a 304, not a re-render --
the ipv6.watch-style "precomputed per-country JSON, served cheap"
model from the related work.
"""

from repro.serve.http import handle_connection, run_server, start_server
from repro.serve.service import (
    ArtifactService,
    Response,
    ServiceError,
    artifact_document,
    etag_matches,
)

__all__ = [
    "ArtifactService",
    "Response",
    "ServiceError",
    "artifact_document",
    "etag_matches",
    "handle_connection",
    "run_server",
    "start_server",
]
