"""Command-line reproduction driver: ``python -m repro <artifact>``.

Regenerates the paper's artifacts at a chosen scale, through the lazy
:class:`repro.api.Study` session (shared builds) and the artifact
registry (every figure and table, text or JSON)::

    python -m repro list
    python -m repro table1 --days 60
    python -m repro table2 table3 --sites 4000          # census built once
    python -m repro all --scale bench                   # calibrated preset
    python -m repro fig5 --format json
    python -m repro fig13@days=160 table1 --days 28     # per-artifact scale
    python -m repro whatif --intervention nat64:DE --sweep
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.api import Study, StudyConfig, jsonify, registry
from repro.datasets.scenarios import SCALE_PRESETS

#: Keywords accepted alongside registered artifact names.
_META = ("all", "list")

#: StudyConfig fields overridable per artifact via ``name@key=value,...``.
_OVERRIDE_KEYS = (
    "days", "sites", "seed", "link_clicks", "parallel",
    "probe_targets", "probe_interval_days",
)


def parse_artifact_spec(value: str) -> tuple[str, dict[str, int]]:
    """Split ``name@key=value,...`` into the name and its config overrides."""
    name, _, override_text = value.partition("@")
    overrides: dict[str, int] = {}
    if override_text:
        for item in override_text.split(","):
            key, sep, raw = item.partition("=")
            if not sep or key not in _OVERRIDE_KEYS:
                raise ValueError(
                    f"bad override {item!r}; expected key=value with key in "
                    f"{', '.join(_OVERRIDE_KEYS)}"
                )
            try:
                overrides[key] = int(raw)
            except ValueError:
                raise ValueError(f"override {key!r} needs an integer, got {raw!r}")
    return name, overrides


def _artifact_argument(value: str) -> str:
    """argparse type hook: reject unknown artifacts at parse time."""
    try:
        name, _ = parse_artifact_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    if name not in _META and name not in registry.names():
        close = registry.suggest(name, extra=_META)
        hint = (
            f"did you mean {' or '.join(repr(m) for m in close)}? "
            if close
            else ""
        )
        raise argparse.ArgumentTypeError(
            f"unknown artifact {name!r} ({hint}try: python -m repro list)"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of 'Towards a Non-Binary View of "
        "IPv6 Adoption' (IMC 2025) at a chosen scale.",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        type=_artifact_argument,
        metavar="artifact",
        help="artifact names ('list' to enumerate, 'all' for everything); "
        "append @key=value,... for per-artifact scale overrides",
    )
    parser.add_argument(
        "--scale",
        choices=tuple(SCALE_PRESETS),
        default="cli",
        help="calibrated (days, sites) preset from repro.datasets.scenarios: "
        + "; ".join(
            f"{p.name} = {p.days}d/{p.sites} sites ({p.purpose})"
            for p in SCALE_PRESETS.values()
        )
        + " -- explicit --days/--sites override the preset",
    )
    parser.add_argument("--days", type=int, default=None,
                        help="traffic observation days (paper: 273); "
                        "overrides --scale")
    parser.add_argument("--sites", type=int, default=None,
                        help="census top-list size (paper: 100000); "
                        "overrides --scale")
    parser.add_argument("--seed", type=int, default=42, help="scenario seed")
    parser.add_argument("--link-clicks", type=int, default=5,
                        help="same-site link clicks per crawled site")
    parser.add_argument("--parallel", type=int, default=None,
                        help="worker processes for the traffic and observatory "
                        "fan-outs (default: auto-detect; 0 or 1 forces "
                        "sequential)")
    parser.add_argument("--probe-targets", type=int, default=500,
                        help="top-ranked sites each observatory vantage probes")
    parser.add_argument("--probe-interval-days", type=int, default=14,
                        help="days between observatory probe rounds")
    parser.add_argument("--intervention", action="append", default=None,
                        metavar="SPEC",
                        help="what-if scenario for the whatif artifacts, e.g. "
                        "nat64:DE or dualstack:Amazon+ispv6 (repeatable; "
                        "default: the built-in grid)")
    parser.add_argument("--sweep", action="store_true",
                        help="expand --intervention specs into the "
                        "combination grid (each alone plus every pair)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    return parser


def _render_list(fmt: str) -> str:
    specs = registry.specs()
    if fmt == "json":
        return json.dumps(
            [
                {
                    "name": spec.name,
                    "needs": sorted(spec.needs),
                    "paper": spec.paper,
                    "description": spec.description,
                }
                for spec in specs
            ],
            indent=2,
        )
    from repro.util.tables import TextTable

    table = TextTable(
        ["artifact", "needs", "paper", "description"],
        title=f"{len(specs)} registered artifacts",
    )
    for spec in specs:
        table.add_row([
            spec.name,
            ",".join(sorted(spec.needs)) or "-",
            spec.paper,
            spec.description,
        ])
    return table.render()


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    requested = list(dict.fromkeys(args.artifacts))

    if any(parse_artifact_spec(item)[0] == "list" for item in requested):
        if len(requested) > 1:
            parser.error("'list' cannot be combined with artifact names")
        print(_render_list(args.format))
        return 0

    preset = SCALE_PRESETS[args.scale]
    if args.sweep and not args.intervention:
        parser.error(
            "--sweep expands --intervention specs into a combination grid; "
            "give at least one --intervention (or omit --sweep to run the "
            "built-in default grid)"
        )
    try:
        whatif_scenarios = None
        if args.intervention:
            if args.sweep:
                from repro.whatif.sweep import sweep_grid

                whatif_scenarios = tuple(
                    scenario.spec() for scenario in sweep_grid(args.intervention)
                )
            else:
                whatif_scenarios = tuple(args.intervention)
        base = StudyConfig(
            days=args.days if args.days is not None else preset.days,
            sites=args.sites if args.sites is not None else preset.sites,
            seed=args.seed,
            link_clicks=args.link_clicks,
            parallel=args.parallel,
            probe_targets=args.probe_targets,
            probe_interval_days=args.probe_interval_days,
            whatif_scenarios=whatif_scenarios,
        )
    except ValueError as exc:
        parser.error(str(exc))

    # Expand "all" in place, keeping explicit (possibly overridden) entries.
    expanded: list[str] = []
    for item in requested:
        name, overrides = parse_artifact_spec(item)
        if name == "all":
            suffix = item.partition("@")[2]
            expanded.extend(
                f"{artifact_name}@{suffix}" if suffix else artifact_name
                for artifact_name in registry.names()
            )
        else:
            expanded.append(item)
    expanded = list(dict.fromkeys(expanded))

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    studies: dict[StudyConfig, Study] = {}
    results: list[tuple[str, StudyConfig, object]] = []
    for item in expanded:
        name, overrides = parse_artifact_spec(item)
        try:
            config = base.replace(**overrides) if overrides else base
        except ValueError as exc:
            parser.error(f"{item}: {exc}")
        study = studies.setdefault(config, Study(config, log=log))
        results.append((item, config, study.artifact(name)))

    if args.format == "json":
        # Keyed by the requested spec (unique after dedup), each entry
        # carrying the config it was actually computed at, so per-artifact
        # overrides stay attributable.
        document = {
            "config": jsonify(dataclasses.asdict(base)),
            "artifacts": {
                item: {
                    "config": jsonify(dataclasses.asdict(config)),
                    **result.to_dict(),
                }
                for item, config, result in results
            },
        }
        print(json.dumps(document, indent=2))
    else:
        for index, (_, _, result) in enumerate(results):
            if index:
                print("\n" + "=" * 72 + "\n")
            print(result.to_text())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
