"""Command-line reproduction driver: ``python -m repro <artifact>``.

Regenerates the paper's artifacts at a chosen scale, through the lazy
:class:`repro.api.Study` session (shared builds) and the artifact
registry (every figure and table, text or JSON)::

    python -m repro list
    python -m repro table1 --days 60
    python -m repro table2 table3 --sites 4000          # census built once
    python -m repro all --scale bench                   # calibrated preset
    python -m repro fig5 --format json
    python -m repro fig13@days=160 table1 --days 28     # per-artifact scale
    python -m repro whatif --intervention nat64:DE --sweep

With a warehouse attached (``--store DIR`` or ``REPRO_STORE``), builds
persist and later processes warm-start from disk; ``repro store`` and
``repro serve`` manage and publish it::

    python -m repro store warm --store ./warehouse --days 14 --sites 300
    python -m repro store ls --store ./warehouse
    python -m repro serve --store ./warehouse --days 14 --sites 300
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.api import Study, StudyConfig, jsonify, registry
from repro.datasets.scenarios import SCALE_PRESETS

#: Keywords accepted alongside registered artifact names.
_META = ("all", "list")

#: Subcommands dispatched before artifact parsing (and offered by the
#: did-you-mean hint when a first argument matches nothing).
_SUBCOMMANDS = (
    "store", "serve", "lint", "resilience", "sentinel", "trace", "prof", "bench",
)


def version_string() -> str:
    """The installed distribution version (``--version``), with the
    in-tree ``repro.__version__`` as the uninstalled fallback."""
    from importlib import metadata

    try:
        return metadata.version("repro-ipv6-adoption")
    except metadata.PackageNotFoundError:
        import repro

        return repro.__version__

#: StudyConfig fields overridable per artifact via ``name@key=value,...``.
_OVERRIDE_KEYS = (
    "days", "sites", "seed", "link_clicks", "parallel",
    "probe_targets", "probe_interval_days",
)


def parse_artifact_spec(value: str) -> tuple[str, dict[str, int]]:
    """Split ``name@key=value,...`` into the name and its config overrides."""
    name, _, override_text = value.partition("@")
    overrides: dict[str, int] = {}
    if override_text:
        for item in override_text.split(","):
            key, sep, raw = item.partition("=")
            if not sep or key not in _OVERRIDE_KEYS:
                raise ValueError(
                    f"bad override {item!r}; expected key=value with key in "
                    f"{', '.join(_OVERRIDE_KEYS)}"
                )
            try:
                overrides[key] = int(raw)
            except ValueError:
                raise ValueError(f"override {key!r} needs an integer, got {raw!r}")
    return name, overrides


def _artifact_argument(value: str) -> str:
    """argparse type hook: reject unknown artifacts at parse time."""
    try:
        name, _ = parse_artifact_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    if name not in _META and name not in registry.names():
        close = registry.suggest(name, extra=(*_META, *_SUBCOMMANDS))
        hint = (
            f"did you mean {' or '.join(repr(m) for m in close)}? "
            if close
            else ""
        )
        raise argparse.ArgumentTypeError(
            f"unknown artifact {name!r} ({hint}try: python -m repro list)"
        )
    return value


def _subcommand_argument(known: tuple[str, ...]):
    """A type hook rejecting unknown subcommands with a did-you-mean.

    argparse turns the :class:`~argparse.ArgumentTypeError` into an
    ``error()`` call, so unknown subcommands exit with status 2 -- the
    same contract misspelled artifact names get.
    """

    def check(value: str) -> str:
        if value in known:
            return value
        import difflib

        close = difflib.get_close_matches(value, known, n=3, cutoff=0.4)
        hint = (
            f"did you mean {' or '.join(repr(m) for m in close)}? "
            if close
            else ""
        )
        raise argparse.ArgumentTypeError(
            f"unknown command {value!r} ({hint}known: {', '.join(known)})"
        )

    return check


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared scale/seed knobs (artifact runs, ``store warm``, ``serve``)."""
    parser.add_argument(
        "--scale",
        choices=tuple(SCALE_PRESETS),
        default="cli",
        help="calibrated (days, sites) preset from repro.datasets.scenarios: "
        + "; ".join(
            f"{p.name} = {p.days}d/{p.sites} sites ({p.purpose})"
            for p in SCALE_PRESETS.values()
        )
        + " -- explicit --days/--sites override the preset",
    )
    parser.add_argument("--days", type=int, default=None,
                        help="traffic observation days (paper: 273); "
                        "overrides --scale")
    parser.add_argument("--sites", type=int, default=None,
                        help="census top-list size (paper: 100000); "
                        "overrides --scale")
    parser.add_argument("--seed", type=int, default=42, help="scenario seed")
    parser.add_argument("--link-clicks", type=int, default=5,
                        help="same-site link clicks per crawled site")
    parser.add_argument("--parallel", type=int, default=None,
                        help="worker processes for the traffic and observatory "
                        "fan-outs (default: auto-detect; 0 or 1 forces "
                        "sequential)")
    parser.add_argument("--probe-targets", type=int, default=500,
                        help="top-ranked sites each observatory vantage probes")
    parser.add_argument("--probe-interval-days", type=int, default=14,
                        help="days between observatory probe rounds")
    parser.add_argument("--intervention", action="append", default=None,
                        metavar="SPEC",
                        help="what-if scenario for the whatif artifacts, e.g. "
                        "nat64:DE or dualstack:Amazon+ispv6 (repeatable; "
                        "default: the built-in grid)")
    parser.add_argument("--sweep", action="store_true",
                        help="expand --intervention specs into the "
                        "combination grid (each alone plus every pair)")


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="artifact warehouse directory: layers and rendered artifacts "
        "persist there and later runs warm-start from disk "
        "(default: $REPRO_STORE when set)",
    )


def _add_version_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {version_string()}"
    )


def _config_from_args(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> StudyConfig:
    """The effective StudyConfig of parsed scale flags (shared paths)."""
    preset = SCALE_PRESETS[args.scale]
    if args.sweep and not args.intervention:
        parser.error(
            "--sweep expands --intervention specs into a combination grid; "
            "give at least one --intervention (or omit --sweep to run the "
            "built-in default grid)"
        )
    try:
        whatif_scenarios = None
        if args.intervention:
            if args.sweep:
                from repro.whatif.sweep import sweep_grid

                whatif_scenarios = tuple(
                    scenario.spec() for scenario in sweep_grid(args.intervention)
                )
            else:
                whatif_scenarios = tuple(args.intervention)
        return StudyConfig(
            days=args.days if args.days is not None else preset.days,
            sites=args.sites if args.sites is not None else preset.sites,
            seed=args.seed,
            link_clicks=args.link_clicks,
            parallel=args.parallel,
            probe_targets=args.probe_targets,
            probe_interval_days=args.probe_interval_days,
            whatif_scenarios=whatif_scenarios,
        )
    except ValueError as exc:
        parser.error(str(exc))
        raise AssertionError("unreachable")  # pragma: no cover


def _activate_store(
    args: argparse.Namespace, parser: argparse.ArgumentParser, required: bool = False
):
    """Resolve ``--store`` / ``REPRO_STORE`` into the active store."""
    from repro.store import set_store
    from repro.store.warehouse import active_store

    if args.store:
        return set_store(args.store)
    store = active_store()  # REPRO_STORE, when set
    if store is None and required:
        parser.error(
            "no store directory: pass --store DIR or set REPRO_STORE"
        )
    return store


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of 'Towards a Non-Binary View of "
        "IPv6 Adoption' (IMC 2025) at a chosen scale.",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        type=_artifact_argument,
        metavar="artifact",
        help="artifact names ('list' to enumerate, 'all' for everything); "
        "append @key=value,... for per-artifact scale overrides",
    )
    _add_scale_arguments(parser)
    _add_store_argument(parser)
    _add_version_argument(parser)
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--telemetry-json", default=None, metavar="PATH",
                        help="after the run, dump the telemetry snapshot "
                        "(metrics + the run's span tree) as JSON to PATH")
    return parser


def _render_list(fmt: str) -> str:
    specs = registry.specs()
    if fmt == "json":
        return json.dumps(
            [
                {
                    "name": spec.name,
                    "needs": sorted(spec.needs),
                    "paper": spec.paper,
                    "description": spec.description,
                }
                for spec in specs
            ],
            indent=2,
        )
    from repro.util.tables import TextTable

    table = TextTable(
        ["artifact", "needs", "paper", "description"],
        title=f"{len(specs)} registered artifacts",
    )
    for spec in specs:
        table.add_row([
            spec.name,
            ",".join(sorted(spec.needs)) or "-",
            spec.paper,
            spec.description,
        ])
    return table.render()


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "store":
        return _store_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.devtools.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "resilience":
        return _resilience_main(argv[1:])
    if argv and argv[0] == "sentinel":
        return _sentinel_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "prof":
        return _prof_main(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    requested = list(dict.fromkeys(args.artifacts))

    if any(parse_artifact_spec(item)[0] == "list" for item in requested):
        if len(requested) > 1:
            parser.error("'list' cannot be combined with artifact names")
        print(_render_list(args.format))
        return 0

    _activate_store(args, parser)
    base = _config_from_args(args, parser)

    # Expand "all" in place, keeping explicit (possibly overridden) entries.
    expanded: list[str] = []
    for item in requested:
        name, overrides = parse_artifact_spec(item)
        if name == "all":
            suffix = item.partition("@")[2]
            expanded.extend(
                f"{artifact_name}@{suffix}" if suffix else artifact_name
                for artifact_name in registry.names()
            )
        else:
            expanded.append(item)
    expanded = list(dict.fromkeys(expanded))

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    from repro.telemetry import span

    studies: dict[StudyConfig, Study] = {}
    results: list[tuple[str, StudyConfig, object]] = []
    with span("cli:run", artifacts=len(expanded), scale=args.scale):
        for item in expanded:
            name, overrides = parse_artifact_spec(item)
            try:
                config = base.replace(**overrides) if overrides else base
            except ValueError as exc:
                parser.error(f"{item}: {exc}")
            study = studies.setdefault(config, Study(config, log=log))
            results.append((item, config, study.artifact(name)))

    if args.format == "json":
        # Keyed by the requested spec (unique after dedup), each entry
        # carrying the config it was actually computed at, so per-artifact
        # overrides stay attributable.
        document = {
            "config": jsonify(dataclasses.asdict(base)),
            "artifacts": {
                item: {
                    "config": jsonify(dataclasses.asdict(config)),
                    **result.to_dict(),
                }
                for item, config, result in results
            },
        }
        print(json.dumps(document, indent=2))
    else:
        for index, (_, _, result) in enumerate(results):
            if index:
                print("\n" + "=" * 72 + "\n")
            print(result.to_text())
    if args.telemetry_json:
        from pathlib import Path

        from repro.telemetry import telemetry_document

        Path(args.telemetry_json).write_text(
            json.dumps(telemetry_document(), indent=2) + "\n"
        )
        log(f"# telemetry: wrote {args.telemetry_json}")
    return 0


def _entry_age_s(created_at: str) -> float | None:
    """Seconds since a store entry's ``created_at`` stamp (``None`` if odd).

    Operator-facing output only (``store ls``): the age never enters
    artifact bytes, digests, or cache keys.
    """
    from datetime import datetime, timezone

    try:
        created = datetime.fromisoformat(created_at)
    except (TypeError, ValueError):
        return None
    if created.tzinfo is None:
        created = created.replace(tzinfo=timezone.utc)
    # replint: allow[REP001] operator-facing entry age in store ls output only
    return max(0.0, round((datetime.now(timezone.utc) - created).total_seconds(), 1))


def _format_age(age_s: float) -> str:
    """``93784.0`` -> ``"1d2h"``; coarse on purpose (a listing, not a log)."""
    if age_s < 60:
        return f"{int(age_s)}s"
    if age_s < 3600:
        return f"{int(age_s // 60)}m{int(age_s % 60)}s"
    if age_s < 86400:
        return f"{int(age_s // 3600)}h{int(age_s % 3600 // 60)}m"
    return f"{int(age_s // 86400)}d{int(age_s % 86400 // 3600)}h"


def _sentinel_main(argv: list[str]) -> int:
    """``python -m repro sentinel`` -- the significance event feed."""
    from repro.sentinel.config import SEVERITIES, severity_rank

    parser = argparse.ArgumentParser(
        prog="repro sentinel",
        description="Scan the study's adoption time series (availability, "
        "takeoff, readiness, usage, heavy-hitter mix) for significant "
        "deviations against trailing baselines and print the event feed. "
        "An empty feed means nothing deviated: silence is valid data.",
    )
    parser.add_argument("--since", type=int, default=0, metavar="N",
                        help="only events on or after day N (default: 0)")
    parser.add_argument("--country", default=None, metavar="CC",
                        help="filter to one country code ('*' selects the "
                        "fleet-wide signals)")
    parser.add_argument("--min-severity", choices=SEVERITIES,
                        default=SEVERITIES[0],
                        help="drop events below this severity")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output shape (default: text)")
    _add_store_argument(parser)
    _add_version_argument(parser)
    _add_scale_arguments(parser)
    args = parser.parse_args(argv)
    if args.since < 0:
        parser.error("--since must be >= 0")
    country = args.country.strip().upper() if args.country else None
    _activate_store(args, parser)
    config = _config_from_args(args, parser)

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    feed = Study(config, log=log).sentinel
    min_rank = severity_rank(args.min_severity)
    events = [
        event
        for event in feed.events
        if event.day >= args.since
        and (country is None or event.scope == country)
        and severity_rank(event.severity) >= min_rank
    ]
    if args.format == "json":
        document = {
            "config": jsonify(dataclasses.asdict(config)),
            "since": args.since,
            "country": country,
            "min_severity": args.min_severity,
            "count": len(events),
            "events": [jsonify(dataclasses.asdict(event)) for event in events],
            "signals": list(feed.signals),
            "scopes": list(feed.scopes),
            "points": feed.points,
            "thresholds": jsonify(dataclasses.asdict(feed.config)),
        }
        print(json.dumps(document, indent=2))
        return 0
    from repro.util.tables import TextTable

    table = TextTable(
        ["day", "signal", "scope", "severity", "dir", "value", "baseline", "z"],
        title="Sentinel — significant deviations vs trailing baselines",
    )
    for event in events:
        table.add_row([
            str(event.day), event.signal, event.scope, event.severity,
            event.direction, f"{event.value:.4f}", f"{event.baseline:.4f}",
            f"{event.z:+.2f}",
        ])
    print(table.render())
    print(
        f"{len(events)} event(s) shown of {len(feed.events)} emitted over "
        f"{feed.points} series points; silence is valid data"
    )
    return 0


def _trace_main(argv: list[str]) -> int:
    """``python -m repro trace`` -- run artifacts under the span tracer."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run artifacts and export the build span tree -- compact "
        "JSON (--format tree) or chrome://tracing Trace Event Format "
        "(--format chrome; load the file via the tracing UI or Perfetto).",
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        metavar="artifact",
        help="artifact names to run under the tracer (default: all)",
    )
    parser.add_argument("--format", choices=("tree", "chrome"), default="tree",
                        help="export shape (default: tree)")
    parser.add_argument("--output", "-o", default=None, metavar="PATH",
                        help="write the JSON here instead of stdout")
    _add_store_argument(parser)
    _add_version_argument(parser)
    _add_scale_arguments(parser)
    args = parser.parse_args(argv)
    names = list(dict.fromkeys(args.artifacts)) or registry.names()
    unknown = [name for name in names if name not in registry.names()]
    if unknown:
        parser.error(
            f"unknown artifacts: {', '.join(unknown)} "
            "(try: python -m repro list)"
        )
    _activate_store(args, parser)
    config = _config_from_args(args, parser)

    from repro.telemetry import chrome_trace, recent_spans, reset_trace, span, span_tree

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    reset_trace()  # export exactly this run, not whatever came before
    study = Study(config, log=log)
    with span("trace:run", artifacts=len(names), scale=args.scale):
        for name in names:
            study.artifact(name)
    roots = recent_spans()
    if args.format == "chrome":
        document: dict = chrome_trace(roots)
    else:
        document = {"spans": [span_tree(root) for root in roots]}
    text = json.dumps(document, indent=2)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n")
        log(f"# trace: wrote {args.format} JSON to {args.output}")
    else:
        print(text)
    return 0


def _prof_main(argv: list[str]) -> int:
    """``python -m repro prof`` -- run artifacts under span profiling."""
    parser = argparse.ArgumentParser(
        prog="repro prof",
        description="Run artifacts with span-scoped CPU profiling and "
        "export the deterministic call trees -- compact JSON "
        "(--format tree) or speedscope flamegraph format "
        "(--format speedscope; load the file at speedscope.app).",
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        metavar="artifact",
        help="artifact names to run under the profiler (default: all)",
    )
    parser.add_argument("--format", choices=("tree", "speedscope"),
                        default="tree",
                        help="export shape (default: tree)")
    parser.add_argument("--output", "-o", default=None, metavar="PATH",
                        help="write the JSON here instead of stdout")
    parser.add_argument("--spans", default="artifact:*", metavar="P1,P2,...",
                        help="span-name patterns to capture (exact names or "
                        "trailing-* prefixes; default: artifact:*)")
    parser.add_argument("--memory", action="store_true",
                        help="also capture tracemalloc peaks on build spans "
                        "(build_peak_bytes{layer} + Span.peak_bytes)")
    _add_store_argument(parser)
    _add_version_argument(parser)
    _add_scale_arguments(parser)
    args = parser.parse_args(argv)
    names = list(dict.fromkeys(args.artifacts)) or registry.names()
    unknown = [name for name in names if name not in registry.names()]
    if unknown:
        parser.error(
            f"unknown artifacts: {', '.join(unknown)} "
            "(try: python -m repro list)"
        )
    patterns = tuple(part for part in args.spans.split(",") if part)
    if not patterns:
        parser.error("--spans needs at least one pattern")
    _activate_store(args, parser)
    config = _config_from_args(args, parser)

    from repro.prof import (
        profiled_spans,
        profiling,
        speedscope_document,
    )
    from repro.telemetry import recent_spans, reset_trace, span

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    reset_trace()  # export exactly this run, not whatever came before
    study = Study(config, log=log)
    with profiling(spans=patterns, memory=args.memory):
        with span("prof:run", artifacts=len(names), scale=args.scale):
            for name in names:
                study.artifact(name)
    captured = profiled_spans(recent_spans())
    if not captured:
        log(
            f"# prof: no spans matched {args.spans!r} -- "
            "try --spans 'artifact:*' or 'build:*'"
        )
    if args.format == "speedscope":
        document: dict = speedscope_document(
            [(node.name, node.profile) for node in captured]
        )
    else:
        document = {
            "spans": list(patterns),
            "count": len(captured),
            "profiles": [
                {
                    "span": node.name,
                    "labels": dict(sorted(node.labels.items())),
                    "duration_ms": round(node.duration_s * 1000.0, 3),
                    "peak_bytes": node.peak_bytes,
                    "profile": node.profile,
                }
                for node in captured
            ],
        }
    text = json.dumps(document, indent=2)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n")
        log(f"# prof: wrote {args.format} JSON to {args.output}")
    else:
        print(text)
    return 0


def _bench_main(argv: list[str]) -> int:
    """``python -m repro bench history`` -- the perf-history sentinel."""
    from pathlib import Path

    from repro.sentinel.config import SEVERITIES

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Scan the committed bench history "
        "(benchmarks/results/BENCH_history.jsonl, appended by "
        "perf_smoke.py and serve_load.py) for per-phase performance "
        "drift against trailing baselines -- the sentinel detector "
        "turned inward.  An empty report means nothing drifted: "
        "silence is valid data.",
    )
    parser.add_argument(
        "command",
        type=_subcommand_argument(("history",)),
        metavar="command",
        help="history (detect per-phase drift events over the bench "
        "history file)",
    )
    from repro.prof import DEFAULT_HISTORY_PATH

    parser.add_argument("--history", type=Path,
                        default=DEFAULT_HISTORY_PATH, metavar="PATH",
                        help=f"history file (default: {DEFAULT_HISTORY_PATH})")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output shape (default: text)")
    parser.add_argument("--output", "-o", default=None, metavar="PATH",
                        help="also write the JSON report here (the CI "
                        "bench_history artifact)")
    parser.add_argument("--fail-on", choices=SEVERITIES, default=None,
                        metavar="SEVERITY",
                        help="exit 1 when any *regression* event reaches "
                        "this severity (improvements never fail the run)")
    _add_version_argument(parser)
    args = parser.parse_args(argv)

    from repro.prof import (
        detect_history,
        load_history,
        render_history_text,
        worst_regression_severity,
    )
    from repro.sentinel.config import severity_rank

    records, skipped = load_history(args.history)
    report = detect_history(records, skipped=skipped)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.format == "json":
        print(text)
    else:
        print(render_history_text(report))
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"# bench history: wrote report to {args.output}",
              file=sys.stderr)
    worst = worst_regression_severity(report)
    if (
        args.fail_on is not None
        and worst is not None
        and severity_rank(worst) >= severity_rank(args.fail_on)
    ):
        print(
            f"bench history: FAILED -- {worst} regression event(s) at or "
            f"above --fail-on {args.fail_on}",
            file=sys.stderr,
        )
        return 1
    return 0


def _store_main(argv: list[str]) -> int:
    """``python -m repro store {ls,verify,gc,warm}`` -- warehouse ops."""
    parser = argparse.ArgumentParser(
        prog="repro store",
        description="Inspect and maintain the on-disk artifact warehouse.",
    )
    parser.add_argument(
        "command",
        type=_subcommand_argument(("ls", "verify", "gc", "warm")),
        metavar="command",
        help="ls (list entries) | verify (integrity-check every entry) | "
        "gc (drop broken/stale entries, rebuild the index) | "
        "warm (build a configuration's layers + artifacts into the store)",
    )
    _add_store_argument(parser)
    _add_version_argument(parser)
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="ls output format (default: text)")
    parser.add_argument(
        "--layers",
        default=None,
        metavar="L1,L2,...",
        help="warm: layers to persist (default: traffic,census,cloud,"
        "dependencies,observatory; add whatif for the sweep)",
    )
    parser.add_argument(
        "--artifacts",
        default="all",
        metavar="NAME1,NAME2,...|all|none",
        help="warm: rendered artifacts to persist (default: all)",
    )
    _add_scale_arguments(parser)
    args = parser.parse_args(argv)
    store = _activate_store(args, parser, required=True)
    if args.command in ("ls", "verify", "gc") and not store.exists:
        # A read-only command on a mistyped path must not silently
        # "verify" a store that was never written (and must not create
        # one as a side effect).
        parser.error(
            f"no store at {store.root} (build one with 'repro store warm')"
        )

    if args.command == "ls":
        entries = sorted(store.entries(), key=lambda e: (e.kind, e.name, e.digest))
        # The index totals come off the registry gauges the warehouse
        # maintains (refreshed here so a read-only process adopts the
        # on-disk index), not from a second objects/ rescan.
        indexed_entries, indexed_bytes = store.refresh_gauges()
        if args.format == "json":
            print(json.dumps(
                {
                    "root": str(store.root),
                    "indexed_entries": indexed_entries,
                    "indexed_bytes": indexed_bytes,
                    "entries": [
                        {
                            "digest": entry.digest,
                            "kind": entry.kind,
                            "name": entry.name,
                            "key": entry.key,
                            "bytes": entry.total_bytes,
                            "created_at": entry.created_at,
                            "age_s": _entry_age_s(entry.created_at),
                            "repro_version": entry.repro_version,
                        }
                        for entry in entries
                    ],
                },
                indent=2,
            ))
            return 0
        from repro.util.tables import TextTable

        table = TextTable(
            ["kind", "name", "digest", "bytes", "created", "age"],
            title=f"{store.root} -- {indexed_entries} indexed entries, "
            f"{indexed_bytes:,} bytes",
        )
        for entry in entries:
            age = _entry_age_s(entry.created_at)
            table.add_row([
                entry.kind, entry.name, entry.digest[:12],
                f"{entry.total_bytes:,}", entry.created_at,
                "?" if age is None else _format_age(age),
            ])
        print(table.render())
        return 0

    if args.command == "verify":
        problems = store.verify()
        for problem in problems:
            print(f"store verify: {problem}", file=sys.stderr)
        print(
            f"store verify: {len(store.entries())} entries, "
            f"{len(problems)} problem(s)"
        )
        return 1 if problems else 0

    if args.command == "gc":
        removed = store.gc()
        for item in removed:
            print(f"store gc: removed {item}")
        print(f"store gc: {len(removed)} removed, "
              f"{len(store.entries())} entries kept")
        return 0

    # warm: build the configuration into the store, layers then artifacts.
    from repro.serve.service import artifact_document
    from repro.store import artifact_key, snapshot_study
    from repro.store.warehouse import DEFAULT_SNAPSHOT_LAYERS

    config = _config_from_args(args, parser)
    layers = (
        tuple(part for part in args.layers.split(",") if part)
        if args.layers is not None
        else DEFAULT_SNAPSHOT_LAYERS
    )
    artifact_names: list[str] = []
    if args.artifacts == "all":
        artifact_names = registry.names()
    elif args.artifacts != "none":
        artifact_names = [part for part in args.artifacts.split(",") if part]
        unknown = [name for name in artifact_names if name not in registry.names()]
        if unknown:
            parser.error(f"unknown artifacts: {', '.join(unknown)}")

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    study = Study(config, log=log)
    try:
        entries = snapshot_study(store, study, layers)
    except ValueError as exc:
        parser.error(str(exc))
    for layer, entry in entries.items():
        log(f"# stored {layer}: {entry.digest[:12]} ({entry.total_bytes:,} bytes)")
    for name in artifact_names:
        store.save_artifact(name, artifact_key(config, name),
                            artifact_document(study, name))
    log(
        f"# warm: {len(entries)} layers + {len(artifact_names)} artifacts -> "
        f"{store.root} ({store.total_bytes():,} bytes)"
    )
    return 0


def _resilience_main(argv: list[str]) -> int:
    """``python -m repro resilience drill`` -- the scripted chaos drill."""
    parser = argparse.ArgumentParser(
        prog="repro resilience",
        description="Chaos-drill the stack under a seeded fault plan: "
        "zero 5xx for warehouse-backed artifacts, zero data corruption, "
        "crashed-pool builds bit-identical to fault-free ones.",
    )
    parser.add_argument(
        "command",
        type=_subcommand_argument(("drill",)),
        metavar="command",
        help="drill (run the scripted chaos scenario; exits 1 on any "
        "violated resilience property)",
    )
    parser.add_argument("--seed", type=int, default=7,
                        help="fault-plan seed (same seed = same schedule; "
                        "default: 7)")
    parser.add_argument("--days", type=int, default=4,
                        help="traffic days of the drill scenario (default: 4)")
    parser.add_argument("--sites", type=int, default=110,
                        help="census sites of the drill scenario (default: 110)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="scratch warehouse directory for the drill "
                        "(default: a temp directory, removed afterwards)")
    _add_version_argument(parser)
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    args = parser.parse_args(argv)

    from repro.resilience.drill import run_drill

    report = run_drill(
        seed=args.seed, days=args.days, sites=args.sites, store_root=args.store
    )
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        pool = report["pool_crash"]
        chaos = report["serve_chaos"]
        print(f"resilience drill (seed {report['seed']}):")
        print(
            f"  pool crash: {pool['faults_fired']} worker crash(es), "
            f"{len(pool['resubmitted_shards'])} recovery wave(s), "
            f"bit-identical: {pool['bit_identical']}"
        )
        print(
            f"  serve chaos: {chaos['requests']} requests, "
            f"faults fired: {chaos['faults_fired']}, "
            f"stale served: {chaos['stale_served']}, "
            f"store damage: {chaos['store_verify_problems']}"
        )
        print(f"  ok: {report['ok']}")
    for problem in report["problems"]:
        print(f"resilience drill: {problem}", file=sys.stderr)
    return 0 if report["ok"] else 1


def _serve_main(argv: list[str]) -> int:
    """``python -m repro serve`` -- the asyncio HTTP serving layer."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve the artifact registry over HTTP (read-only JSON "
        "API with ETag revalidation), backed by the warehouse.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8080,
                        help="bind port (default: 8080; 0 picks a free port)")
    parser.add_argument("--no-warm", action="store_true",
                        help="skip the background warmer (artifacts render "
                        "on first request instead)")
    parser.add_argument("--profile", nargs="?", const=",".join((
                        "build:*", "sweep:*", "serve:request")),
                        default=None, metavar="P1,P2,...",
                        help="enable span-scoped CPU profiling for these "
                        "span patterns (default when given bare: "
                        "build:*,sweep:*,serve:request) plus tracemalloc "
                        "peaks on build spans; captures serve at "
                        "/v1/profile")
    _add_store_argument(parser)
    _add_version_argument(parser)
    _add_scale_arguments(parser)
    args = parser.parse_args(argv)
    store = _activate_store(args, parser)
    config = _config_from_args(args, parser)

    if args.profile is not None:
        from repro.prof import enable_profiling

        patterns = tuple(part for part in args.profile.split(",") if part)
        if not patterns:
            parser.error("--profile needs at least one span pattern")
        enable_profiling(spans=patterns, memory=True)

    from repro.serve import ArtifactService, run_server

    service = ArtifactService(config, store=store)

    def log(message: str) -> None:
        print(message, file=sys.stderr, flush=True)

    return run_server(
        service, args.host, args.port, warm=not args.no_warm, log=log
    )


if __name__ == "__main__":
    raise SystemExit(main())
