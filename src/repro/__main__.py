"""Command-line reproduction driver: ``python -m repro <artifact>``.

Regenerates the paper's headline artifacts at a chosen scale::

    python -m repro table1 --days 60
    python -m repro fig5 --sites 2000
    python -m repro table2 table3 --sites 4000
    python -m repro all --days 60 --sites 2000
"""

from __future__ import annotations

import argparse
import sys

from repro.core import report
from repro.datasets import build_census, build_residence_study

#: Artifact name -> (needs_traffic, needs_census, renderer).
ARTIFACTS = {
    "table1": (True, False, lambda study, census: report.render_table1(study)),
    "fig5": (False, True, lambda study, census: report.render_fig5(census)),
    "fig6": (False, True, lambda study, census: report.render_fig6(census)),
    "deps": (False, True, lambda study, census: report.render_dependencies(census)),
    "table2": (False, True, lambda study, census: report.render_table2(census)),
    "table3": (False, True, lambda study, census: report.render_table3(census)),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of 'Towards a Non-Binary View of "
        "IPv6 Adoption' (IMC 2025) at a chosen scale.",
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        choices=sorted(ARTIFACTS) + ["all"],
        help="which artifacts to regenerate",
    )
    parser.add_argument("--days", type=int, default=28,
                        help="traffic observation days (paper: 273)")
    parser.add_argument("--sites", type=int, default=1500,
                        help="census top-list size (paper: 100000)")
    parser.add_argument("--seed", type=int, default=42, help="scenario seed")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    wanted = sorted(ARTIFACTS) if "all" in args.artifacts else list(dict.fromkeys(args.artifacts))

    needs_traffic = any(ARTIFACTS[name][0] for name in wanted)
    needs_census = any(ARTIFACTS[name][1] for name in wanted)
    study = None
    census = None
    if needs_traffic:
        print(f"# generating {args.days} days of residential traffic ...",
              file=sys.stderr)
        study = build_residence_study(num_days=args.days, seed=args.seed)
    if needs_census:
        print(f"# crawling a {args.sites}-site universe ...", file=sys.stderr)
        census = build_census(num_sites=args.sites, seed=args.seed)

    for index, name in enumerate(wanted):
        if index:
            print("\n" + "=" * 72 + "\n")
        _, _, renderer = ARTIFACTS[name]
        print(renderer(study, census))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
