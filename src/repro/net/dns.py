"""Authoritative DNS zones and a CNAME-chasing stub resolver.

The server-side census rests entirely on DNS semantics the paper leans on:

* a site is **IPv4-only** when its name has A records but no AAAA,
* **loading-failure (NXDOMAIN)** when the name does not exist,
* cloud *services* are identified by following chains of CNAMEs to
  provider-operated suffixes (section 5.3, after He et al.).

So the resolver here distinguishes NXDOMAIN (no records of any type for the
name) from NODATA (the name exists but not for the queried type), follows
CNAME chains with loop protection, and reports the full chain so the cloud
analysis can inspect canonical names.  Failure injection (per-name SERVFAIL
or timeouts) models the transient errors behind the paper's
"Loading-Failure (Others)" row.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.net.addr import Family, IpAddress

#: Maximum CNAME chain length before the resolver declares a failure.
MAX_CNAME_CHAIN = 8


class DnsRecordType(enum.Enum):
    A = "A"
    AAAA = "AAAA"
    CNAME = "CNAME"
    PTR = "PTR"
    NS = "NS"
    TXT = "TXT"


class DnsStatus(enum.Enum):
    """Resolution outcome, mirroring RCODE semantics we need."""

    NOERROR = "NOERROR"
    NXDOMAIN = "NXDOMAIN"
    SERVFAIL = "SERVFAIL"
    TIMEOUT = "TIMEOUT"
    CHAIN_TOO_LONG = "CHAIN_TOO_LONG"


class DnsError(Exception):
    """Raised for malformed zone data, not for resolution failures."""


#: Memo for :func:`normalize_name` -- resolution paths canonicalize the
#: same names hundreds of thousands of times per crawl.
_NORMALIZED: dict[str, str] = {}


def normalize_name(name: str) -> str:
    """Canonicalize a domain name: lowercase, no trailing dot.

    Raises:
        DnsError: for empty names or empty labels (``a..b``).
    """
    cached = _NORMALIZED.get(name)
    if cached is not None:
        return cached
    raw = name
    name = name.strip().rstrip(".").lower()
    if not name:
        raise DnsError("empty domain name")
    for label in name.split("."):
        if not label:
            raise DnsError(f"empty label in domain name {name!r}")
        if len(label) > 63:
            raise DnsError(f"label too long in domain name {name!r}")
    _NORMALIZED[raw] = name
    return name


@dataclass(frozen=True)
class DnsRecord:
    """One resource record.  ``value`` is an address for A/AAAA, text otherwise."""

    name: str
    rtype: DnsRecordType
    value: IpAddress | str

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        if self.rtype is DnsRecordType.A:
            if not isinstance(self.value, IpAddress) or self.value.family is not Family.V4:
                raise DnsError(f"A record for {self.name} must carry an IPv4 address")
        elif self.rtype is DnsRecordType.AAAA:
            if not isinstance(self.value, IpAddress) or self.value.family is not Family.V6:
                raise DnsError(f"AAAA record for {self.name} must carry an IPv6 address")
        elif isinstance(self.value, IpAddress):
            raise DnsError(f"{self.rtype.value} record for {self.name} must carry text")
        else:
            object.__setattr__(self, "value", normalize_name(str(self.value)))


@dataclass
class Zone:
    """An authoritative zone: a bag of records under one origin."""

    origin: str
    _records: dict[tuple[str, DnsRecordType], list[DnsRecord]] = field(default_factory=dict)
    #: How many (name, rtype) keys exist per name -- keeps name existence
    #: checks O(1) instead of scanning every key in the zone.
    _name_keys: dict[str, int] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.origin = normalize_name(self.origin)
        for name, _ in self._records:
            self._name_keys[name] = self._name_keys.get(name, 0) + 1

    def add(self, name: str, rtype: DnsRecordType, value: IpAddress | str) -> DnsRecord:
        """Add a record; the name must fall inside the zone origin.

        Raises:
            DnsError: if the name is outside the zone, or a CNAME would
                coexist with other records at the same name (RFC 1034).
        """
        record = DnsRecord(name=name, rtype=rtype, value=value)
        if record.name != self.origin and not record.name.endswith("." + self.origin):
            raise DnsError(f"{record.name} is outside zone {self.origin}")
        if rtype is DnsRecordType.CNAME and self._has_any_record(record.name):
            raise DnsError(f"CNAME at {record.name} conflicts with existing records")
        if rtype is not DnsRecordType.CNAME and (record.name, DnsRecordType.CNAME) in self._records:
            raise DnsError(f"{record.name} already has a CNAME; no other types allowed")
        key = (record.name, rtype)
        if key not in self._records:
            self._name_keys[record.name] = self._name_keys.get(record.name, 0) + 1
        self._records.setdefault(key, []).append(record)
        return record

    def _has_any_record(self, name: str) -> bool:
        return name in self._name_keys

    def remove(self, name: str, rtype: DnsRecordType) -> int:
        """Remove all records of ``rtype`` at ``name``; returns the count."""
        name = normalize_name(name)
        removed = self._records.pop((name, rtype), [])
        if removed:
            remaining = self._name_keys.get(name, 0) - 1
            if remaining > 0:
                self._name_keys[name] = remaining
            else:
                self._name_keys.pop(name, None)
        return len(removed)

    def name_exists(self, name: str) -> bool:
        """True if any record exists at ``name`` (distinguishes NODATA)."""
        name = normalize_name(name)
        return self._has_any_record(name)

    def lookup(self, name: str, rtype: DnsRecordType) -> list[DnsRecord]:
        name = normalize_name(name)
        return list(self._records.get((name, rtype), []))

    def names(self) -> set[str]:
        return {key[0] for key in self._records}

    def __len__(self) -> int:
        return sum(len(records) for records in self._records.values())


@dataclass
class ZoneDatabase:
    """All authoritative data in the simulated universe.

    Zone selection for a query name is by longest matching origin suffix,
    as a real delegation hierarchy would produce.
    """

    _zones: dict[str, Zone] = field(default_factory=dict)

    def create_zone(self, origin: str) -> Zone:
        origin = normalize_name(origin)
        if origin in self._zones:
            raise DnsError(f"zone {origin} already exists")
        zone = Zone(origin=origin)
        self._zones[origin] = zone
        return zone

    def get_or_create_zone(self, origin: str) -> Zone:
        origin = normalize_name(origin)
        zone = self._zones.get(origin)
        return zone if zone is not None else self.create_zone(origin)

    def zone_for(self, name: str) -> Zone | None:
        """The most-specific zone whose origin is a suffix of ``name``."""
        name = normalize_name(name)
        labels = name.split(".")
        for start in range(len(labels)):
            candidate = ".".join(labels[start:])
            zone = self._zones.get(candidate)
            if zone is not None:
                return zone
        return None

    def zones(self) -> list[Zone]:
        return [self._zones[origin] for origin in sorted(self._zones)]

    def __len__(self) -> int:
        return len(self._zones)


@dataclass(frozen=True)
class DnsResponse:
    """The resolver's answer to one query.

    Attributes:
        status: outcome; answers are only meaningful for NOERROR.
        answers: terminal records of the queried type (post-CNAME).
        chain: the CNAME chain followed, starting with the query name;
            ``chain[-1]`` is the canonical name that held (or lacked) data.
        question: the (name, type) asked.
    """

    status: DnsStatus
    answers: tuple[DnsRecord, ...]
    chain: tuple[str, ...]
    question: tuple[str, DnsRecordType]

    @property
    def canonical_name(self) -> str:
        return self.chain[-1]

    @property
    def addresses(self) -> tuple[IpAddress, ...]:
        return tuple(
            record.value for record in self.answers if isinstance(record.value, IpAddress)
        )

    @property
    def is_nodata(self) -> bool:
        """Name exists but has no records of the queried type."""
        return self.status is DnsStatus.NOERROR and not self.answers


@dataclass
class Resolver:
    """A stub resolver over a :class:`ZoneDatabase` with failure injection.

    ``inject_failure`` marks a name so every query for it returns the given
    status; this is how scenarios model flaky authoritative servers and
    produce the paper's "Loading-Failure (Others)" population.
    """

    database: ZoneDatabase
    _forced_failures: dict[str, DnsStatus] = field(default_factory=dict)
    queries_issued: int = 0

    def inject_failure(self, name: str, status: DnsStatus) -> None:
        if status is DnsStatus.NOERROR:
            raise ValueError("cannot inject NOERROR as a failure")
        self._forced_failures[normalize_name(name)] = status

    def clear_failure(self, name: str) -> None:
        self._forced_failures.pop(normalize_name(name), None)

    def forced_failures(self) -> dict[str, DnsStatus]:
        """A copy of the injected failures (for derived resolver views)."""
        return dict(self._forced_failures)

    def resolve(self, name: str, rtype: DnsRecordType) -> DnsResponse:
        """Resolve ``name`` for ``rtype``, following CNAME chains."""
        name = normalize_name(name)
        question = (name, rtype)
        chain: list[str] = [name]
        current = name
        for _ in range(MAX_CNAME_CHAIN):
            forced = self._forced_failures.get(current)
            self.queries_issued += 1
            if forced is not None:
                return DnsResponse(forced, (), tuple(chain), question)
            zone = self.database.zone_for(current)
            if zone is None or not zone.name_exists(current):
                return DnsResponse(DnsStatus.NXDOMAIN, (), tuple(chain), question)
            direct = zone.lookup(current, rtype)
            if direct:
                return DnsResponse(DnsStatus.NOERROR, tuple(direct), tuple(chain), question)
            cnames = zone.lookup(current, DnsRecordType.CNAME)
            if not cnames:
                # NODATA: the name exists, just not for this type.
                return DnsResponse(DnsStatus.NOERROR, (), tuple(chain), question)
            target = str(cnames[0].value)
            if target in chain:
                return DnsResponse(DnsStatus.SERVFAIL, (), tuple(chain), question)
            chain.append(target)
            current = target
        return DnsResponse(DnsStatus.CHAIN_TOO_LONG, (), tuple(chain), question)

    def resolve_addresses(self, name: str) -> tuple[DnsResponse, DnsResponse]:
        """Resolve both A and AAAA for ``name`` (the dual-stack query pair)."""
        return self.resolve(name, DnsRecordType.A), self.resolve(name, DnsRecordType.AAAA)
