"""CryptoPAN-style prefix-preserving address anonymization.

The paper's routers anonymize addresses before upload: "scrambling the
lower 8 bits of IPv4 addresses and the lower /64 of IPv6 with CryptoPAN"
(appendix A, after Xu et al.).  This module implements the full
prefix-preserving construction plus the paper's partial-scramble policy.

Construction (Xu et al. 2002): write the address as bits ``a_1 .. a_n``;
the anonymized bit ``a'_i = a_i XOR f(a_1 .. a_{i-1})`` where ``f`` is a
keyed pseudo-random function onto one bit.  Because bit ``i`` of the output
depends only on bits ``1..i-1`` of the input, two addresses sharing a
k-bit prefix anonymize to addresses sharing *exactly* a k-bit prefix --
the property the analyses rely on (aggregation by prefix still works) and
the property our hypothesis tests assert.

The original uses AES as the PRF; with no crypto library available offline
we use HMAC-SHA256, which is PRF-agnostic for the prefix-preservation
guarantee (any deterministic keyed bit-function yields it).
"""

from __future__ import annotations

import hashlib
import hmac
from functools import lru_cache

from repro.net.addr import Family, IpAddress


class CryptoPan:
    """A keyed prefix-preserving anonymizer.

    Args:
        key: secret key material; the same key always produces the same
            mapping (deterministic pseudonyms across upload batches).
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("CryptoPAN key must be at least 16 bytes")
        self._key = bytes(key)
        # Bound the cache: flow logs revisit the same servers constantly.
        self._anonymize_cached = lru_cache(maxsize=65536)(self._anonymize_uncached)

    def _prf_bit(self, family: Family, prefix_value: int, prefix_len: int) -> int:
        """One pseudo-random bit from the (length-tagged) prefix."""
        message = b"%d:%d:%d" % (family.value, prefix_len, prefix_value)
        digest = hmac.new(self._key, message, hashlib.sha256).digest()
        return digest[0] & 1

    def anonymize(self, address: IpAddress, protect_bits: int | None = None) -> IpAddress:
        """Anonymize ``address`` prefix-preservingly.

        Args:
            address: the address to pseudonymize.
            protect_bits: if given, the top ``protect_bits`` bits pass
                through unchanged and only the remainder is scrambled
                (still prefix-preservingly).  ``None`` scrambles all bits.
        """
        bits = address.family.bits
        if protect_bits is None:
            protect_bits = 0
        if not 0 <= protect_bits <= bits:
            raise ValueError(
                f"protect_bits {protect_bits} out of range for {address.family}"
            )
        return self._anonymize_cached(address, protect_bits)

    def _anonymize_uncached(self, address: IpAddress, protect_bits: int) -> IpAddress:
        bits = address.family.bits
        result = 0
        prefix_value = 0  # integer value of original bits seen so far
        for i in range(bits):
            original_bit = address.bit(i)
            if i < protect_bits:
                new_bit = original_bit
            else:
                new_bit = original_bit ^ self._prf_bit(address.family, prefix_value, i)
            result = (result << 1) | new_bit
            prefix_value = (prefix_value << 1) | original_bit
        return IpAddress(address.family, result)

    def anonymize_client(self, address: IpAddress) -> IpAddress:
        """Apply the paper's client-address policy.

        IPv4: keep the top 24 bits, scramble the low 8.
        IPv6: keep the top 64 bits, scramble the low /64 (interface id).
        """
        if address.family is Family.V4:
            return self.anonymize(address, protect_bits=24)
        return self.anonymize(address, protect_bits=64)

    def cache_info(self) -> str:
        """Human-readable cache statistics (for diagnostics)."""
        info = self._anonymize_cached.cache_info()
        return f"hits={info.hits} misses={info.misses} size={info.currsize}"
