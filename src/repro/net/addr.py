"""IP addresses, prefixes, and allocation pools.

Addresses are held as ``(family, integer)`` pairs rather than stdlib
``ipaddress`` objects: the integer form is what the BGP trie, CryptoPAN, and
the anonymization property tests operate on, and one representation shared
by all of them avoids conversion bugs.  Parsing and formatting round-trip
through the stdlib so the text forms are always standards-compliant.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass


class Family(enum.Enum):
    """An IP address family."""

    V4 = 4
    V6 = 6

    @property
    def bits(self) -> int:
        """Address width in bits (32 for IPv4, 128 for IPv6)."""
        return 32 if self is Family.V4 else 128

    @property
    def max_value(self) -> int:
        return (1 << self.bits) - 1

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"IPv{self.value}"


@dataclass(frozen=True, order=True)
class IpAddress:
    """A single IPv4 or IPv6 address.

    >>> IpAddress.parse("192.0.2.1").family
    <Family.V4: 4>
    >>> str(IpAddress.parse("2001:db8::1"))
    '2001:db8::1'
    """

    family: Family
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= self.family.max_value:
            raise ValueError(
                f"address value {self.value:#x} out of range for {self.family}"
            )
        # Addresses key the conntrack table (inside FlowKey) millions of
        # times per generated study; precompute the hash once instead of
        # re-hashing the (enum, int) field tuple on every dict operation.
        object.__setattr__(self, "_hash", hash((self.family.value, self.value)))

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def parse(cls, text: str) -> "IpAddress":
        """Parse dotted-quad or RFC 4291 text into an address."""
        parsed = ipaddress.ip_address(text)
        family = Family.V4 if parsed.version == 4 else Family.V6
        return cls(family, int(parsed))

    @classmethod
    def v4(cls, value: int) -> "IpAddress":
        return cls(Family.V4, value)

    @classmethod
    def v6(cls, value: int) -> "IpAddress":
        return cls(Family.V6, value)

    @property
    def is_v6(self) -> bool:
        return self.family is Family.V6

    def bit(self, index: int) -> int:
        """The ``index``-th most-significant bit (0-based)."""
        if not 0 <= index < self.family.bits:
            raise ValueError(f"bit index {index} out of range for {self.family}")
        return (self.value >> (self.family.bits - 1 - index)) & 1

    def __str__(self) -> str:
        if self.family is Family.V4:
            return str(ipaddress.IPv4Address(self.value))
        return str(ipaddress.IPv6Address(self.value))


@dataclass(frozen=True)
class Prefix:
    """An address prefix (CIDR block).

    >>> Prefix.parse("192.0.2.0/24").contains(IpAddress.parse("192.0.2.7"))
    True
    """

    address: IpAddress
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= self.address.family.bits:
            raise ValueError(
                f"prefix length {self.length} invalid for {self.address.family}"
            )
        # Containment checks run once per generated flow; fix the mask at
        # construction rather than re-deriving it per call.
        object.__setattr__(self, "_mask_value", self._compute_mask())
        if self.address.value & ~self._mask_value:
            raise ValueError(
                f"host bits set in prefix {self.address}/{self.length}"
            )

    def _compute_mask(self) -> int:
        bits = self.address.family.bits
        if self.length == 0:
            return 0
        return ((1 << self.length) - 1) << (bits - self.length)

    def _mask(self) -> int:
        return self._mask_value

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        network = ipaddress.ip_network(text, strict=True)
        family = Family.V4 if network.version == 4 else Family.V6
        return cls(IpAddress(family, int(network.network_address)), network.prefixlen)

    @classmethod
    def of(cls, address: IpAddress, length: int) -> "Prefix":
        """The ``length``-bit prefix containing ``address``."""
        bits = address.family.bits
        if not 0 <= length <= bits:
            raise ValueError(f"prefix length {length} invalid for {address.family}")
        mask = 0 if length == 0 else ((1 << length) - 1) << (bits - length)
        return cls(IpAddress(address.family, address.value & mask), length)

    @property
    def family(self) -> Family:
        return self.address.family

    @property
    def num_addresses(self) -> int:
        return 1 << (self.family.bits - self.length)

    def contains(self, address: IpAddress) -> bool:
        if address.family is not self.family:
            return False
        return (address.value & self._mask_value) == self.address.value

    def covers(self, other: "Prefix") -> bool:
        """True if every address in ``other`` is inside this prefix."""
        return (
            other.family is self.family
            and other.length >= self.length
            and self.contains(other.address)
        )

    def nth(self, offset: int) -> IpAddress:
        """The ``offset``-th address inside the prefix (0 = network address)."""
        if not 0 <= offset < self.num_addresses:
            raise ValueError(f"offset {offset} outside {self}")
        return IpAddress(self.family, self.address.value + offset)

    def subnet(self, new_length: int, index: int) -> "Prefix":
        """The ``index``-th subnet of this prefix at ``new_length`` bits."""
        if new_length < self.length or new_length > self.family.bits:
            raise ValueError(
                f"cannot carve /{new_length} subnets out of a /{self.length}"
            )
        count = 1 << (new_length - self.length)
        if not 0 <= index < count:
            raise ValueError(f"subnet index {index} out of range (have {count})")
        base = self.address.value + index * (1 << (self.family.bits - new_length))
        return Prefix(IpAddress(self.family, base), new_length)

    def __str__(self) -> str:
        return f"{self.address}/{self.length}"


class AddressPool:
    """Sequential address allocator over a prefix.

    Used by the synthetic universe builders to hand out stable, distinct
    addresses to servers: allocation order is deterministic, so the same
    scenario seed always produces the same addressing plan.
    """

    def __init__(self, prefix: Prefix, skip_network_address: bool = True) -> None:
        self.prefix = prefix
        self._next = 1 if skip_network_address else 0

    @property
    def allocated(self) -> int:
        return self._next - (1 if self._next > 0 else 0)

    @property
    def remaining(self) -> int:
        return self.prefix.num_addresses - self._next

    def allocate(self) -> IpAddress:
        """Hand out the next free address.

        Raises:
            RuntimeError: when the pool is exhausted.
        """
        if self._next >= self.prefix.num_addresses:
            raise RuntimeError(f"address pool {self.prefix} exhausted")
        address = self.prefix.nth(self._next)
        self._next += 1
        return address

    def allocate_block(self, count: int) -> list[IpAddress]:
        """Allocate ``count`` consecutive addresses."""
        if count < 0:
            raise ValueError("cannot allocate a negative number of addresses")
        return [self.allocate() for _ in range(count)]
