"""A routing information base with longest-prefix match.

The paper maps an external IP address to its origin AS "from BGP routing
tables" (section 3.4) and identifies a domain's cloud provider "by the AS
that originates the BGP prefix containing the domain's IP address"
(section 5.1).  :class:`RoutingTable` provides exactly that primitive: feed
it prefix announcements, ask it which announcement covers an address.

Lookup is a per-family binary trie walked from the most-significant bit,
remembering the deepest announcement seen -- textbook longest-prefix match,
O(address bits) per query regardless of table size.  Tests cross-check it
against a brute-force scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addr import Family, IpAddress, Prefix


@dataclass(frozen=True)
class Announcement:
    """A BGP announcement: an origin AS claiming a prefix."""

    prefix: Prefix
    origin_asn: int

    def __post_init__(self) -> None:
        if self.origin_asn <= 0:
            raise ValueError(f"origin AS must be positive, got {self.origin_asn}")


class _TrieNode:
    __slots__ = ("children", "announcement")

    def __init__(self) -> None:
        self.children: list[_TrieNode | None] = [None, None]
        self.announcement: Announcement | None = None


@dataclass
class RoutingTable:
    """A RIB supporting announce/withdraw and longest-prefix match."""

    _roots: dict[Family, _TrieNode] = field(
        default_factory=lambda: {Family.V4: _TrieNode(), Family.V6: _TrieNode()}
    )
    _count: int = 0

    def announce(self, prefix: Prefix, origin_asn: int) -> Announcement:
        """Install (or replace) the announcement for ``prefix``.

        Re-announcing an existing prefix with a different origin models an
        origin change; the newest announcement wins, as in a RIB that keeps
        one best route per prefix.
        """
        announcement = Announcement(prefix=prefix, origin_asn=origin_asn)
        node = self._descend(prefix, create=True)
        assert node is not None
        if node.announcement is None:
            self._count += 1
        node.announcement = announcement
        return announcement

    def withdraw(self, prefix: Prefix) -> bool:
        """Remove the announcement for ``prefix``; True if one existed."""
        node = self._descend(prefix, create=False)
        if node is None or node.announcement is None:
            return False
        node.announcement = None
        self._count -= 1
        return True

    def _descend(self, prefix: Prefix, create: bool) -> _TrieNode | None:
        node = self._roots[prefix.family]
        for i in range(prefix.length):
            bit = prefix.address.bit(i)
            child = node.children[bit]
            if child is None:
                if not create:
                    return None
                child = _TrieNode()
                node.children[bit] = child
            node = child
        return node

    def longest_match(self, address: IpAddress) -> Announcement | None:
        """The most-specific announcement covering ``address``, if any."""
        node: _TrieNode | None = self._roots[address.family]
        best: Announcement | None = None
        if node is not None and node.announcement is not None:
            best = node.announcement  # a default route (/0)
        for i in range(address.family.bits):
            assert node is not None
            node = node.children[address.bit(i)]
            if node is None:
                break
            if node.announcement is not None:
                best = node.announcement
        return best

    def origin_of(self, address: IpAddress) -> int | None:
        """Origin AS for ``address``, or ``None`` if unrouted."""
        match = self.longest_match(address)
        return match.origin_asn if match else None

    def announcements(self) -> list[Announcement]:
        """Every live announcement, sorted for stable output."""
        found: list[Announcement] = []
        for root in self._roots.values():
            stack = [root]
            while stack:
                node = stack.pop()
                if node.announcement is not None:
                    found.append(node.announcement)
                stack.extend(child for child in node.children if child is not None)
        return sorted(
            found,
            key=lambda a: (a.prefix.family.value, a.prefix.address.value, a.prefix.length),
        )

    def __len__(self) -> int:
        return self._count
