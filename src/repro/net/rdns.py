"""Reverse DNS lookup.

The client-side analysis (paper section 3.4) identifies the domain behind a
flow "via reverse DNS lookups on destination IP addresses", and runs into
the known pitfall that cloud-hosted services reverse-map to the *cloud's*
canonical name, not the tenant's.  :class:`ReverseDns` reproduces both the
mechanism and the pitfall: server addresses map to whatever PTR name their
operator registered, which for cloud tenants is the provider's
infrastructure domain (e.g. ``ec2-x.amazonaws.com``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addr import IpAddress
from repro.net.psl import PublicSuffixList


@dataclass
class ReverseDns:
    """PTR-style mapping from addresses to host names."""

    _ptr: dict[IpAddress, str] = field(default_factory=dict)

    def register(self, address: IpAddress, hostname: str) -> None:
        """Register (or overwrite) the PTR record for ``address``."""
        self._ptr[address] = hostname.strip().rstrip(".").lower()

    def lookup(self, address: IpAddress) -> str | None:
        """The PTR hostname for ``address``, or ``None`` if unregistered."""
        return self._ptr.get(address)

    def lookup_etld1(self, address: IpAddress, psl: PublicSuffixList) -> str | None:
        """The eTLD+1 of the PTR hostname (paper's domain aggregation unit)."""
        hostname = self.lookup(address)
        if hostname is None:
            return None
        return psl.etld_plus_one(hostname)

    def __len__(self) -> int:
        return len(self._ptr)

    def __contains__(self, address: IpAddress) -> bool:
        return address in self._ptr
