"""Network substrate: addresses, routing, naming, and anonymization.

This package implements the pieces of Internet infrastructure the paper's
measurement pipelines depend on:

* :mod:`repro.net.addr` -- IPv4/IPv6 addresses, prefixes, and allocation
  pools with a uniform integer representation.
* :mod:`repro.net.asn` -- the AS registry and the AS-to-Organization
  mapping (the role CAIDA's as2org dataset plays in the paper).
* :mod:`repro.net.bgp` -- a routing information base with longest-prefix
  match, used to attribute an IP address to its origin AS.
* :mod:`repro.net.dns` -- authoritative zones, A/AAAA/CNAME/PTR records,
  and a resolver that follows CNAME chains.
* :mod:`repro.net.rdns` -- reverse DNS used for domain-level client
  analysis (paper section 3.4).
* :mod:`repro.net.psl` -- the Public Suffix List algorithm and eTLD+1
  extraction (paper sections 4.1 and 5.2).
* :mod:`repro.net.cryptopan` -- prefix-preserving address anonymization
  (paper appendix A).
"""

from repro.net.addr import AddressPool, Family, IpAddress, Prefix
from repro.net.asn import AsInfo, AsRegistry, Organization
from repro.net.bgp import Announcement, RoutingTable
from repro.net.cryptopan import CryptoPan
from repro.net.dns import (
    DnsError,
    DnsRecordType,
    DnsResponse,
    DnsStatus,
    Resolver,
    Zone,
    ZoneDatabase,
)
from repro.net.psl import PublicSuffixList, default_psl
from repro.net.rdns import ReverseDns

__all__ = [
    "AddressPool",
    "Family",
    "IpAddress",
    "Prefix",
    "AsInfo",
    "AsRegistry",
    "Organization",
    "Announcement",
    "RoutingTable",
    "CryptoPan",
    "DnsError",
    "DnsRecordType",
    "DnsResponse",
    "DnsStatus",
    "Resolver",
    "Zone",
    "ZoneDatabase",
    "PublicSuffixList",
    "default_psl",
    "ReverseDns",
]
