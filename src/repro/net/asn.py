"""The AS registry and AS-to-Organization mapping.

The paper attributes traffic and hosted domains to autonomous systems and
then maps AS numbers to organizations using CAIDA's as2org dataset.  This
module plays both roles for the synthetic universe:

* :class:`AsRegistry` records every AS with its name, organization, and a
  functional category (the manual grouping behind the paper's Figure 4).
* The registry deliberately supports *multiple ASes per organization*
  (Amazon's AMAZON-02 and AMAZON-AES; Akamai's AS20940 and AS16625) and
  *split-brand organizations* (the Bunnyway/Datacamp partnership in
  section 5.1) so the attribution pitfalls the paper discusses are
  reproducible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AsCategory(enum.Enum):
    """Functional AS grouping used in the paper's Figure 4."""

    HOSTING_CLOUD = "Hosting and Cloud Provider"
    SOFTWARE = "Software Development"
    ISP = "ISP"
    WEB_SOCIAL = "Web and Social Media"
    OTHER = "Other"


@dataclass(frozen=True)
class Organization:
    """An organization owning one or more ASes (as2org's unit)."""

    org_id: str
    name: str


@dataclass(frozen=True)
class AsInfo:
    """A single autonomous system."""

    asn: int
    name: str
    organization: Organization
    category: AsCategory = AsCategory.OTHER

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"AS number must be positive, got {self.asn}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name} (AS{self.asn})"


@dataclass
class AsRegistry:
    """Registry of ASes with organization lookup.

    This is the synthetic stand-in for CAIDA's AS-to-Organization dataset:
    given an origin AS from the routing table, analyses resolve the owning
    organization here.
    """

    _by_asn: dict[int, AsInfo] = field(default_factory=dict)
    _orgs: dict[str, Organization] = field(default_factory=dict)

    def register_org(self, org_id: str, name: str) -> Organization:
        """Create (or return the existing) organization ``org_id``."""
        existing = self._orgs.get(org_id)
        if existing is not None:
            if existing.name != name:
                raise ValueError(
                    f"organization {org_id!r} already registered as {existing.name!r}"
                )
            return existing
        org = Organization(org_id=org_id, name=name)
        self._orgs[org_id] = org
        return org

    def register(
        self,
        asn: int,
        name: str,
        org_id: str,
        org_name: str | None = None,
        category: AsCategory = AsCategory.OTHER,
    ) -> AsInfo:
        """Register an AS under an organization.

        Args:
            asn: the AS number (positive).
            name: the AS name as it appears in whois (e.g. ``AMAZON-02``).
            org_id: organization key; multiple ASes may share it.
            org_name: display name for the organization; defaults to the
                AS name when the organization is first created.
            category: functional grouping for Figure 4.
        """
        if asn in self._by_asn:
            raise ValueError(f"AS{asn} already registered")
        existing = self._orgs.get(org_id)
        if existing is not None and org_name is None:
            org = existing  # joining an org registered by an earlier AS
        else:
            org = self.register_org(org_id, org_name if org_name is not None else name)
        info = AsInfo(asn=asn, name=name, organization=org, category=category)
        self._by_asn[asn] = info
        return info

    def lookup(self, asn: int) -> AsInfo | None:
        return self._by_asn.get(asn)

    def organization_of(self, asn: int) -> Organization | None:
        info = self._by_asn.get(asn)
        return info.organization if info else None

    def ases_of_org(self, org_id: str) -> list[AsInfo]:
        return [info for info in self._by_asn.values() if info.organization.org_id == org_id]

    def all_ases(self) -> list[AsInfo]:
        return sorted(self._by_asn.values(), key=lambda info: info.asn)

    def all_organizations(self) -> list[Organization]:
        return sorted(self._orgs.values(), key=lambda org: org.org_id)

    def __len__(self) -> int:
        return len(self._by_asn)

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn
