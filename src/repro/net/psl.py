"""The Public Suffix List algorithm and eTLD+1 extraction.

The paper bounds same-site link clicks and classifies first- versus
third-party resources by eTLD+1: "a domain name consisting of one label and
a public suffix as defined by the Public Suffix List" (section 4.1).  This
module implements the PSL matching algorithm in full -- normal rules,
wildcard rules (``*.ck``), and exception rules (``!www.ck``) -- over an
embedded snapshot of the suffixes the synthetic universe uses.

Matching follows https://publicsuffix.org/list/:

1. among rules matching the domain, exception rules beat normal rules;
2. otherwise the longest (most labels) matching rule wins;
3. if nothing matches, the implicit rule ``*`` applies (the last label is
   the public suffix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The suffix snapshot shipped with the repo.  A miniature of the real PSL:
#: generic TLDs, the ccTLDs and second-level registries our universe uses,
#: one wildcard family and its exception (the classic ``ck`` example), and
#: private-section entries for cloud platform suffixes (which make each
#: tenant of e.g. S3 its own "site", exactly as the real PSL does).
DEFAULT_SUFFIX_RULES = (
    # Generic TLDs.
    "com", "net", "org", "io", "dev", "app", "info", "biz", "edu", "gov",
    "mil", "cloud", "online", "site", "store", "tech", "tv", "cc", "ws",
    "me", "co", "ai", "us",
    # Country codes with registrations at the second level.
    "uk", "co.uk", "org.uk", "ac.uk", "gov.uk",
    "jp", "co.jp", "ne.jp", "or.jp",
    "au", "com.au", "net.au", "org.au",
    "br", "com.br", "net.br",
    "in", "co.in", "net.in",
    "cn", "com.cn", "net.cn",
    "de", "fr", "nl", "es", "it", "pl", "ro", "gr", "pt", "hu", "be",
    "at", "se", "no", "fi", "ca", "mx", "il", "tr", "id", "vn",
    # Wildcard + exception, per the PSL spec's canonical example.
    "ck", "*.ck", "!www.ck",
    # Private-section cloud suffixes: every tenant label is its own site.
    "s3.amazonaws.example", "cloudfront.example-cdn.net",
    "github-pages.example-host.io",
)


@dataclass(frozen=True)
class _Rule:
    labels: tuple[str, ...]
    is_exception: bool
    is_wildcard: bool

    @property
    def num_labels(self) -> int:
        return len(self.labels)


def _parse_rule(text: str) -> _Rule:
    text = text.strip().lower()
    is_exception = text.startswith("!")
    if is_exception:
        text = text[1:]
    labels = tuple(text.split("."))
    if not all(labels):
        raise ValueError(f"malformed PSL rule {text!r}")
    return _Rule(labels=labels, is_exception=is_exception, is_wildcard="*" in labels)


def _rule_matches(rule: _Rule, labels: tuple[str, ...]) -> bool:
    """PSL matching: compare right-to-left; ``*`` matches any one label."""
    if len(labels) < rule.num_labels:
        return False
    for rule_label, domain_label in zip(reversed(rule.labels), reversed(labels)):
        if rule_label != "*" and rule_label != domain_label:
            return False
    return True


@dataclass
class PublicSuffixList:
    """A PSL engine over a set of rules.

    Lookups are memoized per input string: rule matching is pure in the
    rule set, and the census/crawler paths resolve the same domains many
    thousands of times.  :meth:`add_rule` invalidates the caches.
    """

    rules: list[_Rule] = field(default_factory=list)
    _suffix_cache: dict[str, str] = field(
        default_factory=dict, repr=False, compare=False
    )
    _etld_cache: dict[str, str | None] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def from_rules(cls, rules: tuple[str, ...] | list[str]) -> "PublicSuffixList":
        return cls(rules=[_parse_rule(rule) for rule in rules])

    def add_rule(self, rule: str) -> None:
        self.rules.append(_parse_rule(rule))
        self._suffix_cache.clear()
        self._etld_cache.clear()

    def public_suffix(self, domain: str) -> str:
        """The public suffix of ``domain`` per the PSL algorithm."""
        cached = self._suffix_cache.get(domain)
        if cached is not None:
            return cached
        labels = tuple(domain.strip().rstrip(".").lower().split("."))
        if not all(labels):
            raise ValueError(f"malformed domain {domain!r}")
        best: _Rule | None = None
        exception: _Rule | None = None
        for rule in self.rules:
            if not _rule_matches(rule, labels):
                continue
            if rule.is_exception:
                if exception is None or rule.num_labels > exception.num_labels:
                    exception = rule
            elif best is None or rule.num_labels > best.num_labels:
                best = rule
        if exception is not None:
            # The exception's suffix is the rule minus its leftmost label.
            suffix_len = exception.num_labels - 1
        elif best is not None:
            suffix_len = best.num_labels
        else:
            suffix_len = 1  # implicit "*" rule
        suffix_len = min(suffix_len, len(labels))
        suffix = ".".join(labels[-suffix_len:])
        self._suffix_cache[domain] = suffix
        return suffix

    def etld_plus_one(self, domain: str) -> str | None:
        """The registrable domain (eTLD+1), or ``None`` when ``domain``
        is itself a public suffix (nothing is registrable)."""
        if domain in self._etld_cache:
            return self._etld_cache[domain]
        labels = tuple(domain.strip().rstrip(".").lower().split("."))
        suffix = self.public_suffix(domain)
        suffix_len = len(suffix.split("."))
        if len(labels) <= suffix_len:
            result = None
        else:
            result = ".".join(labels[-(suffix_len + 1):])
        self._etld_cache[domain] = result
        return result

    def same_site(self, domain_a: str, domain_b: str) -> bool:
        """True when both names share an eTLD+1 (the paper's same-site test
        for link clicks and first-party classification)."""
        a = self.etld_plus_one(domain_a)
        b = self.etld_plus_one(domain_b)
        return a is not None and a == b


_DEFAULT: PublicSuffixList | None = None


def default_psl() -> PublicSuffixList:
    """The shared PSL snapshot (module-level singleton)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PublicSuffixList.from_rules(DEFAULT_SUFFIX_RULES)
    return _DEFAULT
