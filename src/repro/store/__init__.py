"""repro.store: the persistent, content-addressed artifact warehouse.

Session layers and rendered artifacts persist under digests of their
exact cache keys, so a cold process warm-starts from disk instead of
rebuilding (see :mod:`repro.store.warehouse` for the layout and
:mod:`repro.api.session` for the read-through/write-behind wiring)::

    from repro.api import Study, StudyConfig
    from repro.store import set_store, snapshot_study, warm_start

    store = set_store("./warehouse")          # or REPRO_STORE=./warehouse
    snapshot_study(store, Study(days=14, sites=300))   # builds + persists
    # ... new process ...
    warm_start(store, StudyConfig(days=14, sites=300)) # primes the caches

``python -m repro store {ls,verify,gc,warm}`` exposes the same
operations on the command line, and ``python -m repro serve`` serves
the warehouse over HTTP.
"""

from repro.store.serialize import dump_value, load_value
from repro.store.warehouse import (
    ArtifactStore,
    StoreEntry,
    StoreError,
    StoreIntegrityError,
    active_store,
    artifact_key,
    digest_key,
    reset_store,
    set_store,
    snapshot_study,
    warm_start,
)

__all__ = [
    "ArtifactStore",
    "StoreEntry",
    "StoreError",
    "StoreIntegrityError",
    "active_store",
    "artifact_key",
    "digest_key",
    "dump_value",
    "load_value",
    "reset_store",
    "set_store",
    "snapshot_study",
    "warm_start",
]
