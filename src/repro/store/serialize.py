"""The warehouse codec: pickled object graphs with ``.npz`` arrays.

Layer values (:class:`~repro.datasets.scenarios.ResidenceStudy`, the
census, the observatory, a whatif sweep) are arbitrary dataclass graphs
whose *weight* is almost entirely NumPy -- the columnar frames and
their interning tables.  Persisting them as one opaque pickle would
bury those columns inside an unauditable byte stream; persisting only
the columns would lose the graph.  This codec splits the difference:

* every non-object-dtype :class:`numpy.ndarray` reachable from the
  value is **externalized** into a single ``.npz`` member (named
  ``arr_0``, ``arr_1``, ... in first-appearance order), loadable with
  ``allow_pickle=False`` -- no code execution hides in the array file;
* the remaining graph is pickled with each externalized array replaced
  by a persistent-id reference, so the pickle stays small and the two
  files round-trip to the original object (shared arrays stay shared:
  one id, one ``.npz`` member, one loaded object).

Object-dtype arrays (none exist in the layer values today) stay inline
in the pickle: ``np.savez`` would need ``allow_pickle=True`` for them,
which would defeat the point of the split.
"""

from __future__ import annotations

import io
import pickle
from typing import Any

import numpy as np

#: Filenames a serialized payload may consist of.
PAYLOAD_FILE = "payload.pkl"
ARRAYS_FILE = "arrays.npz"


class _ExternalizingPickler(pickle.Pickler):
    """Pickler that swaps ndarrays for persistent ids into an npz dict.

    It also lowers :class:`~repro.flowmon.monitor.FlowMonitor` record
    logs into packed columns (:mod:`repro.flowmon.pack`): the store's
    copy of a traffic layer carries its millions of ``FlowRecord``
    objects as a few NumPy columns in the ``.npz``, and a warm-started
    session only rebuilds them if something actually reads records --
    the analyses read the (equally persisted) frames instead.
    """

    def __init__(self, buffer: io.BytesIO, arrays: dict[str, np.ndarray]) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._arrays = arrays
        self._ids: dict[int, str] = {}

    def persistent_id(self, obj: Any) -> str | None:
        # ``persistent_id`` runs before the pickle memo, so shared
        # arrays must be deduplicated here or they would be stored (and
        # loaded) once per reference instead of once per object.
        if type(obj) is np.ndarray and not obj.dtype.hasobject:
            name = self._ids.get(id(obj))
            if name is None:
                name = f"arr_{len(self._arrays)}"
                self._ids[id(obj)] = name
                self._arrays[name] = obj
            return name
        return None

    def reducer_override(self, obj: Any):
        from repro.flowmon.monitor import FlowMonitor
        from repro.flowmon.pack import reduce_monitor

        if type(obj) is FlowMonitor:
            return reduce_monitor(obj)
        return NotImplemented


class _ExternalizedUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent ids from the loaded npz arrays."""

    def __init__(self, buffer: io.BytesIO, arrays: dict[str, np.ndarray]) -> None:
        super().__init__(buffer)
        self._arrays = arrays

    def persistent_load(self, pid: str) -> np.ndarray:
        try:
            return self._arrays[pid]
        except KeyError:
            raise pickle.UnpicklingError(
                f"payload references array {pid!r} missing from {ARRAYS_FILE}"
            ) from None


def dump_value(value: Any) -> dict[str, bytes]:
    """Serialize ``value`` into its payload files.

    Returns ``{"payload.pkl": ..., "arrays.npz": ...}``; the npz entry
    is omitted when the graph holds no externalizable arrays (cheap
    layers like the dependency analysis).
    """
    arrays: dict[str, np.ndarray] = {}
    buffer = io.BytesIO()
    _ExternalizingPickler(buffer, arrays).dump(value)
    files = {PAYLOAD_FILE: buffer.getvalue()}
    if arrays:
        npz = io.BytesIO()
        np.savez(npz, **arrays)
        files[ARRAYS_FILE] = npz.getvalue()
    return files


def load_value(files: dict[str, bytes]) -> Any:
    """Reassemble a value from :func:`dump_value`'s files."""
    arrays: dict[str, np.ndarray] = {}
    blob = files.get(ARRAYS_FILE)
    if blob is not None:
        with np.load(io.BytesIO(blob), allow_pickle=False) as npz:
            arrays = {name: npz[name] for name in npz.files}
    return _ExternalizedUnpickler(io.BytesIO(files[PAYLOAD_FILE]), arrays).load()
