"""The on-disk artifact warehouse: content-addressed, verifiable, warm.

A store is one directory::

    <root>/
      manifest.json                   # the index: schema + version stamps
      objects/<digest>/
          meta.json                   # kind, layer/name, key, file checksums
          payload.pkl                 # the pickled object graph (layers)
          arrays.npz                  # externalized numpy columns (layers)
          artifact.json               # rendered artifact document (artifacts)

Every entry is addressed by a SHA-256 digest of its *key* -- for layers
the exact cache-key tuples :class:`repro.api.session.StudyConfig`
derives (``traffic_key``, ``census_key``, ...), for artifacts the
``(name, params, config.result_key)`` triple -- so a process that
computes the same configuration always lands on the same directory, and
two configurations can never collide.  ``meta.json`` records a SHA-256
per payload file; loads re-hash and refuse corrupted entries
(:class:`StoreIntegrityError`), and entries written by an incompatible
store schema are treated as absent rather than misread.

The store is the persistence tier under the session caches (see
``repro.api.session``): reads go memory -> disk -> build, builds write
behind, and :func:`warm_start` bulk-primes a cold process from disk via
:func:`repro.api.session.prime_caches`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from repro.resilience.faults import corrupt_hook, fault_hook
from repro.resilience.retry import STORE_POLICY, call_with_retry
from repro.store.serialize import dump_value, load_value
from repro.telemetry import registry as _metrics_registry, span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Study, StudyConfig

#: Bump when the on-disk layout or the key derivation changes; entries
#: stamped with another schema are invisible to this code (and ``gc``
#: removes them).
STORE_SCHEMA = 1

#: The payload filename of rendered-artifact entries.
ARTIFACT_FILE = "artifact.json"

#: The layers :func:`snapshot_study` persists by default -- everything
#: except ``whatif`` (sweeps are opt-in: their default grid is the most
#: expensive object in the session).
DEFAULT_SNAPSHOT_LAYERS = (
    "traffic",
    "census",
    "cloud",
    "dependencies",
    "observatory",
    "sentinel",
)


#: Warehouse IO latency (spans carry the per-entry detail; the
#: histogram carries the aggregate distribution per read/write).
_STORE_OP_SECONDS = _metrics_registry().histogram(
    "store_op_seconds", "warehouse operation latency, per op", ("op",)
)
#: Index-level gauges, refreshed on every manifest write (and by
#: :meth:`ArtifactStore.refresh_gauges`) -- what ``store ls`` and the
#: exposition report without rescanning objects/.
_STORE_ENTRIES = _metrics_registry().gauge(
    "store_entries", "entries indexed in the store manifest"
)
_STORE_BYTES = _metrics_registry().gauge(
    "store_bytes", "payload bytes indexed in the store manifest"
)


class StoreError(Exception):
    """A warehouse operation failed."""


class StoreIntegrityError(StoreError):
    """An entry exists but its bytes do not match its recorded digests."""


class StoreReadError(StoreError):
    """An entry's payload file could not be read (possibly transient).

    Distinct from :class:`StoreIntegrityError` on purpose: an ``OSError``
    on a payload read may be a disk hiccup worth retrying (the session's
    read-through wraps loads in the shared
    :data:`repro.resilience.retry.STORE_POLICY`), whereas a checksum
    mismatch is damage -- retrying re-reads the same wrong bytes, so it
    goes straight to the warn+rebuild path.
    """


def _utcnow() -> str:
    """Wall-clock provenance stamp for ``meta.json`` entries.

    ``created_at`` is operator-facing metadata (``store ls``/``gc``);
    it never enters artifact documents, digests, or cache keys, so it
    cannot perturb warm == cold equality.
    """
    # replint: allow[REP001] provenance stamp in store metadata only, never in artifact bytes
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _repro_version() -> str:
    import repro

    return getattr(repro, "__version__", "0")


def digest_key(kind: str, name: str, key: tuple) -> str:
    """The content address of one entry: SHA-256 over the canonical key.

    The key tuples are nested tuples of primitives (ints, strings,
    ``None``), so their ``repr`` is deterministic across processes and
    Python versions -- the property the whole warehouse rests on.
    """
    canonical = repr((STORE_SCHEMA, kind, name, key))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class StoreEntry:
    """One warehouse entry, as described by its ``meta.json``."""

    digest: str
    kind: str  # "layer" | "artifact"
    name: str  # layer name or artifact name
    key: str  # repr of the cache-key tuple
    created_at: str
    repro_version: str
    files: dict[str, dict[str, Any]]  # filename -> {"sha256", "bytes"}

    @property
    def total_bytes(self) -> int:
        return sum(info["bytes"] for info in self.files.values())


class ArtifactStore:
    """A content-addressed warehouse rooted at one directory."""

    def __init__(self, root: str | Path) -> None:
        # Directories are created on first *write*: read-only operations
        # (`store ls`/`verify` on a mistyped path, a server pointed at a
        # not-yet-built store) must not leave empty stores behind.
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.manifest_path = self.root / "manifest.json"

    @property
    def exists(self) -> bool:
        """Whether anything has ever been written at this root."""
        return self.objects_dir.is_dir() or self.manifest_path.is_file()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r})"

    # -- low-level entry IO -------------------------------------------------

    def _entry_dir(self, digest: str) -> Path:
        return self.objects_dir / digest

    @staticmethod
    def _staging_pid(dirname: str) -> int | None:
        """The writer pid embedded in a ``.tmp-<digest>-<pid>`` name."""
        try:
            return int(dirname.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return None

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except (PermissionError, OverflowError, OSError):
            # EPERM: the pid exists but belongs to someone else -- alive.
            # Anything stranger: assume alive; reaping stays conservative.
            return True
        return True

    def reap_staging(self) -> list[str]:
        """Remove ``.tmp-*`` staging directories whose writer is gone.

        A writer that crashed mid-stage leaves its ``.tmp-<digest>-<pid>``
        directory behind; before this reaper, it was only cleaned up if
        the *same* digest was re-written by the *same* pid.  Directories
        whose embedded pid is still alive are left alone (a concurrent
        writer owns them); everything else -- dead pid, unparseable name
        -- is a crash leftover and is dropped.  Returns the names reaped.
        """
        reaped: list[str] = []
        if not self.objects_dir.is_dir():
            return reaped
        for entry_dir in sorted(self.objects_dir.iterdir()):
            if not entry_dir.is_dir() or not entry_dir.name.startswith(".tmp-"):
                continue
            pid = self._staging_pid(entry_dir.name)
            if pid is not None and pid != os.getpid() and self._pid_alive(pid):
                continue
            shutil.rmtree(entry_dir, ignore_errors=True)
            reaped.append(entry_dir.name)
        return reaped

    def _write_entry(
        self,
        kind: str,
        name: str,
        key: tuple,
        files: dict[str, bytes],
        overwrite: bool = False,
    ) -> StoreEntry:
        """Write one entry atomically (idempotent on existing digests).

        ``overwrite=True`` replaces an existing entry -- the repair path
        the session takes after a load failed its integrity check, so a
        damaged payload is actually healed by the rebuild instead of
        being shadowed by the content-addressed skip-if-present fast
        path.  Payload writes run under the shared store retry policy
        (transient ``OSError``\\ s back off and re-stage; the staging
        directory makes every attempt idempotent).
        """
        digest = digest_key(kind, name, key)
        final_dir = self._entry_dir(digest)
        meta = {
            "schema": STORE_SCHEMA,
            "repro_version": _repro_version(),
            "kind": kind,
            "name": name,
            "key": repr(key),
            "digest": digest,
            "created_at": _utcnow(),
            "files": {
                filename: {"sha256": _sha256(blob), "bytes": len(blob)}
                for filename, blob in files.items()
            },
        }
        entry = StoreEntry(
            digest=digest,
            kind=kind,
            name=name,
            key=meta["key"],
            created_at=meta["created_at"],
            repro_version=meta["repro_version"],
            files=meta["files"],
        )
        if overwrite or not final_dir.exists():
            # Stage the whole directory, then rename into place, so a
            # concurrent reader can never observe a half-written entry.
            self.objects_dir.mkdir(parents=True, exist_ok=True)
            self.reap_staging()
            call_with_retry(
                lambda: self._stage_and_publish(digest, meta, files, overwrite),
                label="store:write",
                policy=STORE_POLICY,
            )
        self._index_entry(entry)
        return entry

    def _stage_and_publish(
        self, digest: str, meta: dict, files: dict[str, bytes], overwrite: bool
    ) -> None:
        """One staged-write attempt (retried whole by :meth:`_write_entry`)."""
        fault_hook("store-write", digest)
        final_dir = self._entry_dir(digest)
        tmp_dir = self.objects_dir / f".tmp-{digest}-{os.getpid()}"
        if tmp_dir.exists():  # stale leftover from a failed earlier attempt
            shutil.rmtree(tmp_dir)
        tmp_dir.mkdir(parents=True)
        for filename, blob in files.items():
            (tmp_dir / filename).write_bytes(blob)
        (tmp_dir / "meta.json").write_text(json.dumps(meta, indent=2) + "\n")
        if overwrite and final_dir.exists():
            shutil.rmtree(final_dir)
        try:
            os.replace(tmp_dir, final_dir)
        except OSError:  # pragma: no cover - lost a write race
            shutil.rmtree(tmp_dir, ignore_errors=True)
            if not final_dir.exists():
                raise

    def _read_entry(self, kind: str, name: str, key: tuple) -> dict[str, bytes] | None:
        """Read (and integrity-check) one entry's payload files."""
        digest = digest_key(kind, name, key)
        meta = self._read_meta(self._entry_dir(digest))
        if meta is None or meta.get("schema") != STORE_SCHEMA:
            return None
        files: dict[str, bytes] = {}
        for filename, info in meta["files"].items():
            path = self._entry_dir(digest) / filename
            try:
                fault_hook("store-read", f"{digest}/{filename}")
                blob = path.read_bytes()
            except OSError as exc:
                raise StoreReadError(
                    f"{digest}: payload file {filename} unreadable ({exc})"
                ) from exc
            blob = corrupt_hook(blob, f"{digest}/{filename}")
            if _sha256(blob) != info["sha256"]:
                raise StoreIntegrityError(
                    f"{digest}: payload file {filename} does not match its "
                    "recorded sha256 (corrupted or tampered entry)"
                )
            files[filename] = blob
        return files

    @staticmethod
    def _read_meta(entry_dir: Path) -> dict | None:
        try:
            return json.loads((entry_dir / "meta.json").read_text())
        except (OSError, json.JSONDecodeError):
            return None

    @staticmethod
    def _entry_from_meta(meta: dict) -> StoreEntry:
        return StoreEntry(
            digest=meta["digest"],
            kind=meta["kind"],
            name=meta["name"],
            key=meta["key"],
            created_at=meta["created_at"],
            repro_version=meta["repro_version"],
            files=meta["files"],
        )

    def _existing_entry(self, kind: str, name: str, key: tuple) -> StoreEntry | None:
        """The already-written entry for this key, if any (same schema).

        Saves check this *before* serializing: the store is
        content-addressed by key and builds are deterministic, so an
        existing digest means re-encoding the (possibly huge) value
        would produce the same bytes only to throw them away.
        """
        meta = self._read_meta(self._entry_dir(digest_key(kind, name, key)))
        if meta is None or meta.get("schema") != STORE_SCHEMA:
            return None
        return self._entry_from_meta(meta)

    # -- layers -------------------------------------------------------------

    def save_layer(
        self, layer: str, key: tuple, value: Any, overwrite: bool = False
    ) -> StoreEntry:
        """Persist one built session layer under its cache key.

        Traffic layers get their per-residence frames built first: the
        codec lowers the record log to lazy packed columns, so the
        frames must be in the payload for a warm-started session to
        analyze without ever rebuilding a record (the frames are what
        the analyses read; building them is idempotent).

        ``overwrite=True`` forces re-encoding and replacement of an
        existing entry -- the session's repair path after a failed load.
        """
        with span("store:write", kind="layer", target=layer) as op_span:
            if not overwrite:
                existing = self._existing_entry("layer", layer, key)
                if existing is not None:
                    return existing
            if layer == "traffic":
                for dataset in getattr(value, "datasets", {}).values():
                    dataset.frame()
            entry = self._write_entry(
                "layer", layer, key, dump_value(value), overwrite=overwrite
            )
        _STORE_OP_SECONDS.observe(op_span.duration_s, op="write")
        return entry

    def load_layer(self, layer: str, key: tuple) -> Any | None:
        """Load one layer, or ``None`` when the store has no such entry.

        Raises :class:`StoreIntegrityError` when the entry exists but its
        bytes fail the checksum, and :class:`StoreReadError` when a
        payload file cannot be read at all (possibly transient -- the
        session's read-through retries it).
        """
        with span("store:read", kind="layer", target=layer) as op_span:
            files = self._read_entry("layer", layer, key)
            value = None if files is None else load_value(files)
        _STORE_OP_SECONDS.observe(op_span.duration_s, op="read")
        return value

    def has_layer(self, layer: str, key: tuple) -> bool:
        digest = digest_key("layer", layer, key)
        return (self._entry_dir(digest) / "meta.json").is_file()

    # -- rendered artifacts -------------------------------------------------

    def save_artifact(
        self, name: str, key: tuple, document: dict, overwrite: bool = False
    ) -> StoreEntry:
        """Persist one rendered artifact document as JSON."""
        with span("store:write", kind="artifact", target=name) as op_span:
            entry = None
            if not overwrite:
                entry = self._existing_entry("artifact", name, key)
            if entry is None:
                blob = json.dumps(document, separators=(",", ":"), sort_keys=False)
                entry = self._write_entry(
                    "artifact",
                    name,
                    key,
                    {ARTIFACT_FILE: blob.encode("utf-8")},
                    overwrite=overwrite,
                )
        _STORE_OP_SECONDS.observe(op_span.duration_s, op="write")
        return entry

    def load_artifact(self, name: str, key: tuple) -> dict | None:
        with span("store:read", kind="artifact", target=name) as op_span:
            files = self._read_entry("artifact", name, key)
            document = (
                None
                if files is None
                else json.loads(files[ARTIFACT_FILE].decode("utf-8"))
            )
        _STORE_OP_SECONDS.observe(op_span.duration_s, op="read")
        return document

    # -- the manifest index -------------------------------------------------

    def manifest(self) -> dict:
        """The index document (an empty shell for a fresh store)."""
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            manifest = {}
        if manifest.get("schema") != STORE_SCHEMA:
            manifest = {
                "schema": STORE_SCHEMA,
                "repro_version": _repro_version(),
                "updated_at": _utcnow(),
                "entries": {},
            }
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        manifest["updated_at"] = _utcnow()
        manifest["repro_version"] = _repro_version()
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.manifest_path)
        self._set_gauges(manifest.get("entries", {}))

    @staticmethod
    def _set_gauges(indexed: dict) -> None:
        _STORE_ENTRIES.set(len(indexed))
        _STORE_BYTES.set(sum(info.get("bytes", 0) for info in indexed.values()))

    def refresh_gauges(self) -> tuple[int, int]:
        """Point the store gauges at this store's index; returns the values.

        The manifest writer keeps the gauges current for the writing
        process; a read-only process (``store ls``, a cold server)
        calls this to adopt the on-disk index into its own exposition.
        """
        indexed = self.manifest().get("entries", {})
        self._set_gauges(indexed)
        return len(indexed), sum(info.get("bytes", 0) for info in indexed.values())

    def _index_entry(self, entry: StoreEntry) -> None:
        manifest = self.manifest()
        manifest["entries"][entry.digest] = {
            "kind": entry.kind,
            "name": entry.name,
            "key": entry.key,
            "bytes": entry.total_bytes,
            "created_at": entry.created_at,
        }
        self._write_manifest(manifest)

    # -- enumeration and maintenance ----------------------------------------

    def entries(self) -> list[StoreEntry]:
        """Every well-formed entry on disk (meta files are the truth)."""
        if not self.objects_dir.is_dir():
            return []
        found: list[StoreEntry] = []
        for entry_dir in sorted(self.objects_dir.iterdir()):
            if not entry_dir.is_dir() or entry_dir.name.startswith("."):
                continue
            meta = self._read_meta(entry_dir)
            if meta is None or meta.get("schema") != STORE_SCHEMA:
                continue
            found.append(self._entry_from_meta(meta))
        return found

    def total_bytes(self) -> int:
        return sum(entry.total_bytes for entry in self.entries())

    def verify(self) -> list[str]:
        """Check every entry and the index; returns the problems found."""
        problems: list[str] = []
        seen: set[str] = set()
        for entry_dir in (
            sorted(self.objects_dir.iterdir()) if self.objects_dir.is_dir() else ()
        ):
            if not entry_dir.is_dir():
                continue
            if entry_dir.name.startswith("."):
                problems.append(f"stale staging directory: {entry_dir.name}")
                continue
            meta = self._read_meta(entry_dir)
            if meta is None:
                problems.append(f"{entry_dir.name}: unreadable meta.json")
                continue
            if meta.get("schema") != STORE_SCHEMA:
                problems.append(
                    f"{entry_dir.name}: store schema {meta.get('schema')!r} "
                    f"!= {STORE_SCHEMA}"
                )
                continue
            if meta.get("digest") != entry_dir.name:
                problems.append(
                    f"{entry_dir.name}: digest mismatch in meta.json "
                    f"({meta.get('digest')!r})"
                )
                continue
            seen.add(entry_dir.name)
            for filename, info in meta["files"].items():
                path = entry_dir / filename
                if not path.is_file():
                    problems.append(f"{entry_dir.name}: missing {filename}")
                    continue
                blob = path.read_bytes()
                if len(blob) != info["bytes"]:
                    problems.append(
                        f"{entry_dir.name}: {filename} is {len(blob)} bytes, "
                        f"manifest says {info['bytes']}"
                    )
                elif _sha256(blob) != info["sha256"]:
                    problems.append(f"{entry_dir.name}: {filename} sha256 mismatch")
        indexed = set(self.manifest()["entries"])
        for digest in sorted(indexed - seen):
            problems.append(f"manifest indexes missing entry {digest}")
        for digest in sorted(seen - indexed):
            problems.append(f"entry {digest} not in manifest (run gc to reindex)")
        return problems

    def gc(self) -> list[str]:
        """Drop broken/stale entries and rebuild the index; returns removals.

        Removes staging leftovers, entries whose meta or payloads fail
        verification, and entries written by another store schema; the
        manifest is rebuilt from the surviving ``meta.json`` files.
        """
        removed: list[str] = []
        for entry_dir in (
            sorted(self.objects_dir.iterdir()) if self.objects_dir.is_dir() else ()
        ):
            if not entry_dir.is_dir():
                continue
            reason = None
            if entry_dir.name.startswith("."):
                reason = "staging leftover"
            else:
                meta = self._read_meta(entry_dir)
                if meta is None:
                    reason = "unreadable meta.json"
                elif meta.get("schema") != STORE_SCHEMA:
                    reason = f"schema {meta.get('schema')!r}"
                elif meta.get("digest") != entry_dir.name:
                    reason = "digest mismatch"
                else:
                    for filename, info in meta["files"].items():
                        path = entry_dir / filename
                        if not path.is_file():
                            reason = f"missing {filename}"
                            break
                        blob = path.read_bytes()
                        if len(blob) != info["bytes"] or _sha256(blob) != info["sha256"]:
                            reason = f"corrupt {filename}"
                            break
            if reason is not None:
                shutil.rmtree(entry_dir)
                removed.append(f"{entry_dir.name} ({reason})")
        manifest = self.manifest()
        manifest["entries"] = {
            entry.digest: {
                "kind": entry.kind,
                "name": entry.name,
                "key": entry.key,
                "bytes": entry.total_bytes,
                "created_at": entry.created_at,
            }
            for entry in self.entries()
        }
        self._write_manifest(manifest)
        return removed


# -- the process-wide active store -------------------------------------------

_UNSET = object()
_ACTIVE: Any = _UNSET


def active_store() -> ArtifactStore | None:
    """The store the session tier reads through (or ``None``).

    Resolution order: an explicit :func:`set_store`, else the
    ``REPRO_STORE`` environment variable, else no persistence.
    """
    global _ACTIVE
    if _ACTIVE is _UNSET:
        path = os.environ.get("REPRO_STORE")
        _ACTIVE = ArtifactStore(path) if path else None
    return _ACTIVE


def set_store(store: ArtifactStore | str | Path | None) -> ArtifactStore | None:
    """Activate a store (path or instance) for this process; ``None`` disables."""
    global _ACTIVE
    if isinstance(store, (str, Path)):
        store = ArtifactStore(store)
    _ACTIVE = store
    return store


def reset_store() -> None:
    """Forget the explicit choice; re-resolve ``REPRO_STORE`` lazily."""
    global _ACTIVE
    _ACTIVE = _UNSET


# -- study-level convenience --------------------------------------------------


def _layer_keys(study: "Study") -> dict[str, tuple]:
    """Layer name -> the exact session cache key ``study`` uses for it."""
    census_key = study._census_key()
    return {
        "traffic": study._traffic_key(),
        "census": census_key,
        "cloud": census_key,
        "dependencies": census_key,
        "observatory": study._observatory_key(),
        "whatif": study._whatif_key(),
        "sentinel": study._sentinel_key(),
    }


def snapshot_study(
    store: ArtifactStore,
    study: "Study",
    layers: Iterable[str] = DEFAULT_SNAPSHOT_LAYERS,
) -> dict[str, StoreEntry]:
    """Persist the given layers of ``study`` (building missing ones).

    Returns ``{layer: entry}``.  The default layer set covers the whole
    baseline pipeline; pass ``("whatif",)`` (or the full list) to also
    persist the counterfactual sweep.
    """
    keys = _layer_keys(study)
    values = {
        "traffic": lambda: study.traffic,
        "census": lambda: study.census,
        "cloud": lambda: study.cloud,
        "dependencies": lambda: study.dependencies,
        "observatory": lambda: study.observatory,
        "whatif": lambda: study.whatif,
        "sentinel": lambda: study.sentinel,
    }
    entries: dict[str, StoreEntry] = {}
    for layer in layers:
        if layer not in keys:
            raise ValueError(
                f"unknown layer {layer!r}; expected one of {', '.join(sorted(keys))}"
            )
        entries[layer] = store.save_layer(layer, keys[layer], values[layer]())
    return entries


def warm_start(
    store: ArtifactStore,
    config: "StudyConfig",
    layers: Iterable[str] | None = None,
) -> list[str]:
    """Prime a cold process's session caches from disk.

    Loads every requested layer the store holds for ``config`` (all
    seven by default, skipping absences) and seeds them through
    :func:`repro.api.session.prime_caches`.  Returns the layers primed.
    """
    from repro.api.session import Study, prime_caches

    study = Study(config)  # builds nothing; only supplies the key methods
    keys = _layer_keys(study)
    wanted = list(layers) if layers is not None else list(keys)
    primed: list[str] = []
    for layer in wanted:
        if layer not in keys:
            raise ValueError(
                f"unknown layer {layer!r}; expected one of {', '.join(sorted(keys))}"
            )
        value = store.load_layer(layer, keys[layer])
        if value is None:
            continue
        prime_caches({layer: {keys[layer]: value}})
        primed.append(layer)
    return primed


def _dataclass_key(value: Any) -> Any:
    """Hashable canonical form of dataclass fields (for artifact keys)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return tuple(
            (f.name, _dataclass_key(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
    if isinstance(value, (list, tuple)):
        return tuple(_dataclass_key(v) for v in value)
    return value


def artifact_key(config: "StudyConfig", name: str, params: dict | None = None) -> tuple:
    """The store key of one rendered artifact.

    Built from the config's :attr:`~repro.api.session.StudyConfig.
    result_key` (everything that determines results; ``parallel`` never
    keys anything) plus the artifact name and its renderer parameters.
    """
    items = tuple(sorted((params or {}).items()))
    return (name, items, config.result_key)
