"""The artifact registry: named, self-describing paper artifacts.

Every figure and table of the paper is registered here by decorating a
renderer with :func:`artifact`.  A renderer takes a
:class:`~repro.api.session.Study` (plus optional keyword parameters) and
returns an :class:`ArtifactResult` -- structured rows that render to an
aligned text table or to JSON without re-running the analysis.

The registry is the single list of what the reproduction can produce:
the CLI (``python -m repro list``), :meth:`Study.artifact`, and the
report module all resolve names through :func:`get`.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.util.tables import TextTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.session import Study

#: The layers a renderer may declare in ``needs``.  ``"cloud"`` implies
#: the census (attribution runs over the crawl), ``"dependencies"`` is
#: the memoized section-4.3 analysis of the census, and
#: ``"observatory"`` is the active-measurement layer probing the census
#: universe from the per-country vantage fleet, ``"whatif"`` is the
#: counterfactual sweep contrasting overlay worlds with the baseline,
#: and ``"sentinel"`` is the significance engine's event feed over the
#: adoption time series.
LAYERS = frozenset(
    {
        "traffic",
        "census",
        "cloud",
        "dependencies",
        "observatory",
        "whatif",
        "sentinel",
    }
)


def jsonify(value: Any) -> Any:
    """Recursively convert analysis output into JSON-encodable types."""
    if isinstance(value, enum.Enum):
        return jsonify(value.value)
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(key): jsonify(v) for key, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonify(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonify(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return value


@dataclass
class ArtifactResult:
    """One rendered artifact: structured rows plus display metadata.

    ``rows`` hold the artifact's data as plain dicts (JSON-friendly);
    ``columns`` orders them for tabular display.  Renderers that need a
    non-tabular layout (series listings, prose summaries) fill ``lines``
    or override ``text`` entirely; both representations always come from
    the same single analysis pass.
    """

    name: str = ""
    title: str = ""
    columns: tuple[str, ...] = ()
    rows: list[dict[str, Any]] = field(default_factory=list)
    lines: list[str] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)
    text: str | None = None

    def to_text(self) -> str:
        """Render as an aligned text table / series listing."""
        if self.text is not None:
            return self.text
        parts: list[str] = []
        if self.columns:
            table = TextTable(list(self.columns), title=self.title)
            for row in self.rows:
                table.add_row([_cell(row.get(column, "")) for column in self.columns])
            parts.append(table.render())
        elif self.title:
            parts.append(self.title)
        parts.extend(self.lines)
        return "\n".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """The JSON-encodable form of this artifact."""
        return {
            "name": self.name,
            "title": self.title,
            "columns": list(self.columns),
            "rows": jsonify(self.rows),
            "metadata": jsonify(self.metadata),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def _cell(value: Any) -> Any:
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass(frozen=True)
class ArtifactSpec:
    """A registered artifact renderer and its declared inputs."""

    name: str
    fn: Callable[..., ArtifactResult]
    needs: frozenset[str]
    title: str
    paper: str
    description: str


_REGISTRY: dict[str, ArtifactSpec] = {}
_discovered = False


def artifact(
    name: str,
    needs: tuple[str, ...] | frozenset[str] = (),
    title: str = "",
    paper: str = "",
) -> Callable[[Callable[..., ArtifactResult]], Callable[..., ArtifactResult]]:
    """Register ``fn`` as the renderer for artifact ``name``.

    Args:
        name: CLI-facing artifact name (``table1``, ``fig5``, ...).
        needs: which session layers the renderer reads, a subset of
            :data:`LAYERS`.  Purely declarative -- layers build lazily on
            first access either way -- but drives ``repro list`` and the
            memoization tests.
        title: display title; defaults into results that leave it empty.
        paper: the paper figure/table this reproduces, e.g. ``"Figure 5"``.
    """
    needs_set = frozenset(needs)
    unknown = needs_set - LAYERS
    if unknown:
        raise ValueError(f"unknown layers {sorted(unknown)}; expected {sorted(LAYERS)}")

    def register(fn: Callable[..., ArtifactResult]) -> Callable[..., ArtifactResult]:
        if name in _REGISTRY:
            raise ValueError(f"artifact {name!r} is already registered")
        doc_lines = (fn.__doc__ or "").strip().splitlines()
        description = doc_lines[0] if doc_lines else ""
        _REGISTRY[name] = ArtifactSpec(
            name=name,
            fn=fn,
            needs=needs_set,
            title=title,
            paper=paper,
            description=description,
        )
        return fn

    return register


def _discover() -> None:
    """Import the artifact modules once so their decorators register."""
    global _discovered
    if not _discovered:
        _discovered = True
        import repro.api.artifacts  # noqa: F401  (registration side effect)


def names() -> list[str]:
    """All registered artifact names, sorted."""
    _discover()
    return sorted(_REGISTRY)


def specs() -> list[ArtifactSpec]:
    """All registered specs, sorted by name."""
    _discover()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def suggest(name: str, extra: tuple[str, ...] = ()) -> list[str]:
    """Close matches for a misspelled artifact name (for error messages).

    ``extra`` adds candidates beyond the registry -- the CLI passes its
    meta commands (``list``, ``all``) so the did-you-mean hint covers
    them too.
    """
    import difflib

    _discover()
    return difflib.get_close_matches(
        name, [*sorted(_REGISTRY), *extra], n=3, cutoff=0.5
    )


def get(name: str) -> ArtifactSpec:
    """Look up one artifact; raises ``KeyError`` with a suggestion."""
    _discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        close = suggest(name)
        hint = (
            f"did you mean {' or '.join(repr(m) for m in close)}?"
            if close
            else f"known: {', '.join(sorted(_REGISTRY))}"
        )
        raise KeyError(f"unknown artifact {name!r}; {hint}") from None


def run(study: "Study", name: str, **params: Any) -> ArtifactResult:
    """Run one artifact against ``study`` and normalize the result.

    Each run opens an ``artifact:<name>`` span, so layer builds the
    artifact triggers nest under it in the trace tree (and a CLI or
    serve span above sees per-artifact attribution).
    """
    from repro.telemetry import span

    spec = get(name)
    with span(f"artifact:{name}"):
        result = spec.fn(study, **params)
    if not result.name:
        result.name = spec.name
    if not result.title and spec.title:
        result.title = spec.title
    return result
