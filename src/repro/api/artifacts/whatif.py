"""What-if artifacts: the counterfactual sweep, rendered.

These read ``study.whatif`` -- the sweep of overlay studies over the
configured scenario grid (``StudyConfig.whatif_scenarios``, or the
default grid) -- and render the paper's thesis run forward: different
interventions move the three signals by different amounts, so no
single binary number can track them.

* ``whatif`` -- the headline: per-scenario deltas plus the strongest
  mover per signal.
* ``whatif_deltas`` -- the full scenario x country delta table.
* ``whatif_ranking`` -- per country, which intervention moves which
  signal most.
* ``whatif_sweep`` -- the grid itself (scenarios, layers they perturb,
  rebuild cost shape).
"""

from __future__ import annotations

from repro.api.registry import ArtifactResult, artifact
from repro.api.session import Study
from repro.whatif.analysis import (
    country_rankings,
    deltas_table,
    scenario_summaries,
    signal_movers,
)


def _pct(value: float) -> str:
    return f"{value:+.1%}"


def _mover(mover: tuple[str, float]) -> str:
    """Render a (scenario, delta) mover; empty scenario = nothing moved."""
    scenario, delta = mover
    return f"{scenario} ({_pct(delta)})" if scenario else "none"


@artifact(
    "whatif",
    needs=("whatif",),
    title="What-if — counterfactual intervention sweep",
    paper="section 6 (discussion), run forward",
)
def whatif(study: Study) -> ArtifactResult:
    """Headline sweep: how each intervention moves the three signals."""
    from repro.util.tables import TextTable

    sweep = study.whatif
    summaries = scenario_summaries(sweep)
    movers = signal_movers(sweep)
    table = TextTable(
        [
            "scenario", "perturbs", "Δ avail (mean)", "Δ avail (max @country)",
            "Δ readiness", "Δ usage",
        ],
        title="What-if — per-scenario deltas vs baseline",
    )
    rows = []
    for summary in summaries:
        table.add_row([
            summary.scenario,
            ",".join(summary.layers),
            _pct(summary.d_availability_mean),
            f"{_pct(summary.d_availability_max)} @{summary.d_availability_max_country}",
            _pct(summary.d_readiness),
            _pct(summary.d_usage),
        ])
        rows.append({
            "scenario": summary.scenario,
            "description": summary.description,
            "layers": list(summary.layers),
            "d_availability_mean": summary.d_availability_mean,
            "d_availability_max": summary.d_availability_max,
            "d_availability_max_country": summary.d_availability_max_country,
            "d_readiness": summary.d_readiness,
            "d_usage": summary.d_usage,
        })
    footer = (
        "strongest movers — availability: "
        f"{_mover(movers['availability'])}, "
        f"readiness: {_mover(movers['readiness'])}, "
        f"usage: {_mover(movers['usage'])}; "
        "one binary number cannot track three signals that move "
        "independently"
    )
    return ArtifactResult(
        columns=(
            "scenario", "layers", "d_availability_mean", "d_availability_max",
            "d_availability_max_country", "d_readiness", "d_usage",
        ),
        rows=rows,
        metadata={
            "scenarios": sweep.num_scenarios,
            "countries": list(sweep.frame.countries),
            "baseline": {
                "readiness": sweep.baseline.readiness,
                "usage": sweep.baseline.usage,
            },
            "movers": {k: list(v) for k, v in movers.items()},
        },
        text=table.render() + "\n" + footer,
    )


@artifact(
    "whatif_deltas",
    needs=("whatif",),
    title="What-if — scenario × country delta table",
    paper="the thesis, differentiated",
)
def whatif_deltas(study: Study) -> ArtifactResult:
    """Per-country availability/readiness/usage deltas per scenario."""
    from repro.util.tables import TextTable

    sweep = study.whatif
    rows = deltas_table(sweep.frame)
    table = TextTable(
        ["scenario", "country", "Δ availability", "Δ readiness", "Δ usage"],
        title="What-if — per-country deltas vs baseline",
    )
    for row in rows:
        table.add_row([
            row["scenario"], row["country"],
            _pct(row["d_availability"]), _pct(row["d_readiness"]),
            _pct(row["d_usage"]),
        ])
    return ArtifactResult(
        columns=(
            "scenario", "country",
            "base_availability", "availability", "d_availability",
            "base_readiness", "readiness", "d_readiness",
            "base_usage", "usage", "d_usage",
        ),
        rows=rows,
        metadata={"scenarios": sweep.num_scenarios},
        text=table.render(),
    )


@artifact(
    "whatif_ranking",
    needs=("whatif",),
    title="What-if — strongest intervention per country and signal",
    paper="section 6 (discussion), run forward",
)
def whatif_ranking(study: Study) -> ArtifactResult:
    """Which intervention moves which signal most, per country."""
    from repro.util.tables import TextTable

    sweep = study.whatif
    table = TextTable(
        [
            "country", "availability mover", "Δ", "readiness mover", "Δ",
            "usage mover", "Δ",
        ],
        title="What-if — strongest mover per country and signal",
    )
    rows = []
    for ranking in country_rankings(sweep):
        table.add_row([
            ranking.country,
            ranking.availability_scenario or "-", _pct(ranking.availability_delta),
            ranking.readiness_scenario or "-", _pct(ranking.readiness_delta),
            ranking.usage_scenario or "-", _pct(ranking.usage_delta),
        ])
        rows.append({
            "country": ranking.country,
            "availability_scenario": ranking.availability_scenario,
            "availability_delta": ranking.availability_delta,
            "readiness_scenario": ranking.readiness_scenario,
            "readiness_delta": ranking.readiness_delta,
            "usage_scenario": ranking.usage_scenario,
            "usage_delta": ranking.usage_delta,
        })
    return ArtifactResult(
        columns=(
            "country", "availability_scenario", "availability_delta",
            "readiness_scenario", "readiness_delta",
            "usage_scenario", "usage_delta",
        ),
        rows=rows,
        text=table.render(),
    )


@artifact(
    "whatif_sweep",
    needs=("whatif",),
    title="What-if — the scenario grid",
    paper="methodology",
)
def whatif_sweep(study: Study) -> ArtifactResult:
    """The sweep grid: scenarios, composition, and perturbed layers."""
    from repro.util.tables import TextTable

    sweep = study.whatif
    table = TextTable(
        ["scenario", "interventions", "perturbs"],
        title="What-if — scenario grid",
    )
    rows = []
    for scenario in sweep.scenarios:
        layers = ",".join(sorted(scenario.layers()))
        table.add_row([scenario.spec(), scenario.describe(), layers])
        rows.append({
            "scenario": scenario.spec(),
            "description": scenario.describe(),
            "interventions": [iv.spec() for iv in scenario.interventions],
            "layers": sorted(scenario.layers()),
        })
    footer = (
        f"{sweep.num_scenarios} scenarios x {len(sweep.frame.countries)} "
        "countries; unperturbed layers are baseline cache hits (zero "
        "rebuilds)"
    )
    return ArtifactResult(
        columns=("scenario", "interventions", "layers"),
        rows=rows,
        metadata={"countries": list(sweep.frame.countries)},
        text=table.render() + "\n" + footer,
    )
