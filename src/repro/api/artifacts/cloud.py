"""Cloud artifacts (paper section 5): provider and service adoption.

These read ``study.cloud`` -- the per-FQDN attribution of the census to
cloud organizations -- which the session derives from the census once
and shares.
"""

from __future__ import annotations

from repro.api.registry import ArtifactResult, artifact
from repro.api.session import Study
from repro.core.cloudstats import (
    cloud_pair_heatmap,
    cloud_provider_breakdown,
    multicloud_tenants,
    overall_domain_counts,
    rank_clouds_by_wins,
    service_adoption_table,
)
from repro.util.tables import TextTable, format_count_pct


@artifact(
    "table3",
    needs=("census", "cloud"),
    title="Table 3 — domains per cloud organization",
    paper="Table 3 / Figure 11",
)
def table3(study: Study, top: int = 15) -> ArtifactResult:
    """Domain counts and adoption classes per cloud organization."""
    views = study.cloud
    total, ipv4_only, full, v6_only = overall_domain_counts(views)
    table = TextTable(
        ["organization", "# domains", "IPv4-only", "IPv6-full", "IPv6-only"],
        title="Table 3 — domains per cloud organization",
    )
    table.add_row(["Overall", total, format_count_pct(ipv4_only, total),
                   format_count_pct(full, total), format_count_pct(v6_only, total)])
    rows = [{
        "organization": "Overall",
        "domains": total,
        "ipv4_only": ipv4_only,
        "ipv6_full": full,
        "ipv6_only": v6_only,
    }]
    for s in cloud_provider_breakdown(views)[:top]:
        table.add_row([
            s.org.name, s.total,
            format_count_pct(s.ipv4_only, s.total),
            format_count_pct(s.ipv6_full, s.total),
            format_count_pct(s.ipv6_only, s.total),
        ])
        rows.append({
            "organization": s.org.name,
            "domains": s.total,
            "ipv4_only": s.ipv4_only,
            "ipv6_full": s.ipv6_full,
            "ipv6_only": s.ipv6_only,
        })
    return ArtifactResult(
        columns=("organization", "domains", "ipv4_only", "ipv6_full", "ipv6_only"),
        rows=rows,
        text=table.render(),
    )


@artifact(
    "fig11",
    needs=("census", "cloud"),
    title="Figure 11 — tenant IPv6 adoption shares per cloud",
    paper="Figure 11",
)
def fig11(study: Study, top: int = 15) -> ArtifactResult:
    """The share view of Table 3: adoption fractions per provider."""
    rows = [
        {
            "organization": s.org.name,
            "domains": s.total,
            "ipv4_only_share": s.share(s.ipv4_only),
            "ipv6_full_share": s.share(s.ipv6_full),
            "ipv6_only_share": s.share(s.ipv6_only),
        }
        for s in cloud_provider_breakdown(study.cloud)[:top]
    ]
    return ArtifactResult(
        columns=(
            "organization", "domains",
            "ipv4_only_share", "ipv6_full_share", "ipv6_only_share",
        ),
        rows=rows,
    )


@artifact(
    "table2",
    needs=("census", "cloud"),
    title="Table 2 — IPv6 adoption across cloud services",
    paper="Table 2",
)
def table2(study: Study, min_domains: int = 10) -> ArtifactResult:
    """Per-service adoption versus the service's enablement policy."""
    service_rows = service_adoption_table(
        study.cloud,
        study.census.ecosystem.service_of_cname,
        min_domains=min_domains,
    )
    table = TextTable(
        ["provider", "service", "policy", "# ready", "# total", "%"],
        title="Table 2 — IPv6 adoption across cloud services",
    )
    rows = []
    for row in service_rows:
        table.add_row([
            row.provider.name, row.service.name, row.service.policy.value,
            row.ipv6_ready, row.total, f"{row.share:.1%}",
        ])
        rows.append({
            "provider": row.provider.name,
            "service": row.service.name,
            "policy": row.service.policy.value,
            "ipv6_ready": row.ipv6_ready,
            "total": row.total,
            "share": row.share,
        })
    return ArtifactResult(
        columns=("provider", "service", "policy", "ipv6_ready", "total", "share"),
        rows=rows,
        metadata={"min_domains": min_domains},
        text=table.render(),
    )


@artifact(
    "fig12",
    needs=("census", "cloud"),
    title="Figure 12 — pairwise Wilcoxon comparisons of clouds",
    paper="Figure 12",
)
def fig12(study: Study, top: int = 20) -> ArtifactResult:
    """Head-to-head cloud comparisons on shared multi-cloud tenants."""
    tenants = multicloud_tenants(study.cloud)
    comparisons = cloud_pair_heatmap(tenants)
    comparable = [c for c in comparisons if c.comparable]
    significant = [c for c in comparisons if c.significant]
    ranking = rank_clouds_by_wins(comparisons)
    rows = [
        {
            "org_a": cell.org_a,
            "org_b": cell.org_b,
            "effect_r": cell.effect_size,
            "p_value": cell.p_value,
            "n_shared": cell.n_shared,
            "significant": cell.significant,
        }
        for cell in sorted(comparable, key=lambda c: -abs(c.effect_size))[:top]
    ]
    lines = []
    if ranking:
        lines.append("win ordering: " + " > ".join(ranking[:8]))
    return ArtifactResult(
        columns=("org_a", "org_b", "effect_r", "p_value", "n_shared", "significant"),
        rows=rows,
        lines=lines,
        metadata={
            "multicloud_tenants": len(tenants),
            "comparable_pairs": len(comparable),
            "significant_pairs": len(significant),
            "ranking": ranking[:8],
        },
    )
