"""Server-side artifacts (paper section 4): graded website readiness.

These read ``study.census`` (the crawled site universe) and
``study.dependencies`` (the memoized section-4.3 analysis); both build
lazily and are shared across every artifact in a run.
"""

from __future__ import annotations

import numpy as np

from repro.api.artifacts.traffic import sample_points
from repro.api.registry import ArtifactResult, artifact
from repro.api.session import Study
from repro.core.deps import (
    estimate_version_split_misclassification,
    heavy_hitter_categories,
    resource_type_matrix,
    whatif_adoption_curve,
)
from repro.core.longitudinal import adoption_change, compare_snapshots, run_snapshots
from repro.core.readiness import census_breakdown, top_n_breakdown
from repro.util.tables import TextTable, format_count_pct

_NO_PARTIAL = "no IPv6-partial sites in this universe"


@artifact(
    "fig5",
    needs=("census",),
    title="Figure 5 — site classification",
    paper="Figure 5",
)
def fig5(study: Study) -> ArtifactResult:
    """The census classification: IPv4-only / partial / full / failures."""
    b = census_breakdown(study.census.dataset)
    conn = b.connection_success
    categories = [
        ("Total", b.total, False),
        ("Loading-Failure (NXDOMAIN)", b.nxdomain, False),
        ("Loading-Failure (Others)", b.other_failure, False),
        ("Connection Success", conn, True),
        ("Unknown Primary Domain", b.unknown_primary, True),
        ("IPv4-only (A-only domain)", b.ipv4_only, True),
        ("AAAA-enabled Domain", b.aaaa_enabled, True),
        ("IPv6-partial", b.ipv6_partial, True),
        ("IPv6-full", b.ipv6_full, True),
        ("Browser Used IPv4", b.browser_used_ipv4, True),
        ("Browser Used IPv6 Only", b.browser_used_ipv6_only, True),
    ]
    table = TextTable(["category", "count (%)"], title="Figure 5 — site classification")
    rows = []
    for label, count, with_share in categories:
        table.add_row([label, format_count_pct(count, conn) if with_share else count])
        rows.append({
            "category": label,
            "count": count,
            "share_of_connected": (count / conn) if with_share and conn else None,
        })
    return ArtifactResult(
        columns=("category", "count", "share_of_connected"),
        rows=rows,
        text=table.render(),
    )


@artifact(
    "fig6",
    needs=("census",),
    title="Figure 6 — readiness by popularity",
    paper="Figure 6",
)
def fig6(study: Study) -> ArtifactResult:
    """Readiness shares across top-N slices of the site ranking."""
    n = len(study.census.dataset.results)
    ns = tuple(sorted({min(100, n), max(1, n // 10), n}))
    slices = top_n_breakdown(study.census.dataset, ns=ns)
    table = TextTable(
        ["top N", "IPv4-only", "IPv6-partial", "IPv6-full"],
        title="Figure 6 — readiness by popularity",
    )
    rows = []
    for row in slices:
        table.add_row([
            row.n, f"{row.ipv4_only_share:.1%}",
            f"{row.ipv6_partial_share:.1%}", f"{row.ipv6_full_share:.1%}",
        ])
        rows.append({
            "top_n": row.n,
            "ipv4_only_share": row.ipv4_only_share,
            "ipv6_partial_share": row.ipv6_partial_share,
            "ipv6_full_share": row.ipv6_full_share,
        })
    return ArtifactResult(
        columns=("top_n", "ipv4_only_share", "ipv6_partial_share", "ipv6_full_share"),
        rows=rows,
        text=table.render(),
    )


def _percentile_row(metric: str, values: np.ndarray) -> dict:
    row = {"metric": metric}
    for q in (10, 25, 50, 75, 90, 95):
        row[f"p{q}"] = float(np.percentile(values, q))
    return row


@artifact(
    "fig7",
    needs=("census", "dependencies"),
    title="Figure 7 — IPv4-only resources per IPv6-partial site",
    paper="Figure 7",
)
def fig7(study: Study) -> ArtifactResult:
    """How many (and what share of) resources stay IPv4-only per site."""
    analysis = study.dependencies
    if not analysis.num_partial:
        return ArtifactResult(lines=[_NO_PARTIAL])
    rows = [
        _percentile_row(
            "v4only_resources_per_site", np.array(analysis.v4only_resource_counts)
        ),
        _percentile_row(
            "v4only_resource_fraction", np.array(analysis.v4only_resource_fractions)
        ),
    ]
    return ArtifactResult(
        columns=("metric", "p10", "p25", "p50", "p75", "p90", "p95"),
        rows=rows,
        metadata={"num_partial": analysis.num_partial},
    )


@artifact(
    "fig8",
    needs=("census", "dependencies"),
    title="Figure 8 — span and contribution of IPv4-only domains",
    paper="Figure 8",
)
def fig8(study: Study, top: int = 15) -> ArtifactResult:
    """Which IPv4-only domains hold back the most partial sites."""
    analysis = study.dependencies
    if not analysis.num_partial:
        return ArtifactResult(lines=[_NO_PARTIAL])
    impacts = analysis.impacts_by_span()
    spans = np.array([impact.span for impact in impacts])
    rows = [
        {
            "domain": impact.domain,
            "span": impact.span,
            "median_contribution": impact.median_contribution,
            "third_party": impact.is_third_party_anywhere,
        }
        for impact in impacts[:top]
    ]
    return ArtifactResult(
        columns=("domain", "span", "median_contribution", "third_party"),
        rows=rows,
        metadata={
            "num_domains": len(impacts),
            "span_p75": float(np.percentile(spans, 75)),
            "span_p95": float(np.percentile(spans, 95)),
            "span_max": int(spans.max()),
        },
    )


@artifact(
    "fig9",
    needs=("census", "dependencies"),
    title="Figure 9 — categories of heavy-hitter IPv4-only domains",
    paper="Figure 9",
)
def fig9(study: Study, min_span: int | None = None) -> ArtifactResult:
    """What kinds of services the high-span IPv4-only domains are."""
    analysis = study.dependencies
    if not analysis.num_partial:
        return ArtifactResult(lines=[_NO_PARTIAL])
    census = study.census
    if min_span is None:
        min_span = max(3, census.config.num_sites // 250)
    pool = census.ecosystem.pool
    histogram = heavy_hitter_categories(
        analysis,
        lambda domain: pool.get(domain).category if domain in pool else None,
        min_span=min_span,
    )
    rows = [
        {
            "category": category.value if category is not None else "(uncategorized)",
            "domains": count,
        }
        for category, count in histogram.most_common()
    ]
    return ArtifactResult(
        columns=("category", "domains"),
        rows=rows,
        metadata={"min_span": min_span},
    )


@artifact(
    "fig10",
    needs=("census", "dependencies"),
    title="Figure 10 — what-if adoption of IPv4-only domains",
    paper="Figure 10",
)
def fig10(study: Study) -> ArtifactResult:
    """If IPv4-only domains adopted IPv6 in span order, who becomes full?"""
    analysis = study.dependencies
    curve = whatif_adoption_curve(analysis)
    if not analysis.num_partial or not curve:
        return ArtifactResult(lines=[_NO_PARTIAL])
    rows = []
    for mark in (0.033, 0.10, 0.50, 1.0):
        k = max(1, round(mark * len(curve)))
        adopted, full = curve[k - 1]
        rows.append({
            "domain_share": mark,
            "domains_adopted": adopted,
            "sites_full": full,
            "partial_unlocked": full / analysis.num_partial,
        })
    return ArtifactResult(
        columns=("domain_share", "domains_adopted", "sites_full", "partial_unlocked"),
        rows=rows,
        metadata={
            "num_partial": analysis.num_partial,
            "curve": sample_points(
                [p[0] for p in curve], [p[1] for p in curve], max_points=64
            ),
        },
    )


@artifact(
    "fig18",
    needs=("census", "dependencies"),
    title="Figure 18 — top IPv4-only domains by resource type",
    paper="Figure 18",
)
def fig18(study: Study, top_k: int = 20) -> ArtifactResult:
    """Which resource types each heavy-hitter domain serves, per site."""
    analysis = study.dependencies
    if not analysis.num_partial or not analysis.domain_impacts:
        return ArtifactResult(lines=[_NO_PARTIAL])
    domains, types, matrix = resource_type_matrix(analysis, top_k=top_k)
    type_names = [rtype.value for rtype in types]
    rows = [
        {"domain": domain, **dict(zip(type_names, matrix[i].tolist()))}
        for i, domain in enumerate(domains)
    ]
    return ArtifactResult(
        columns=("domain", *type_names),
        rows=rows,
        metadata={"top_k": top_k},
    )


@artifact(
    "deps",
    needs=("census", "dependencies"),
    title="Dependency summary — Figures 7, 8 and 10 in one block",
    paper="Figures 7-10",
)
def deps(study: Study) -> ArtifactResult:
    """The one-screen dependency summary the CLI has always printed."""
    analysis = study.dependencies
    if not analysis.num_partial:
        return ArtifactResult(text=_NO_PARTIAL)
    counts = np.array(analysis.v4only_resource_counts)
    fractions = np.array(analysis.v4only_resource_fractions)
    spans = np.array([i.span for i in analysis.domain_impacts.values()])
    curve = whatif_adoption_curve(analysis)
    k = max(1, round(0.033 * len(curve)))
    lines = [
        f"IPv6-partial sites: {analysis.num_partial}",
        f"IPv4-only resources per site (Fig 7): "
        f"p25={np.percentile(counts, 25):.0f} p50={np.percentile(counts, 50):.0f} "
        f"p75={np.percentile(counts, 75):.0f}",
        f"fraction IPv4-only (Fig 7): "
        f"p25={np.percentile(fractions, 25):.2f} p50={np.percentile(fractions, 50):.2f} "
        f"p75={np.percentile(fractions, 75):.2f}",
        f"IPv4-only domains (Fig 8): {len(spans)}; span p75={np.percentile(spans, 75):.0f} "
        f"p95={np.percentile(spans, 95):.0f} max={spans.max()}",
        f"what-if (Fig 10): top 3.3% of domains ({curve[k - 1][0]}) unlock "
        f"{curve[k - 1][1] / analysis.num_partial:.1%} of partial sites",
    ]
    rows = [
        {"metric": "partial_sites", "value": analysis.num_partial},
        {"metric": "v4only_domains", "value": len(spans)},
        {"metric": "span_max", "value": int(spans.max())},
        {"metric": "top_3pct_unlock_share",
         "value": curve[k - 1][1] / analysis.num_partial},
    ]
    return ArtifactResult(
        columns=("metric", "value"), rows=rows, text="\n".join(lines)
    )


@artifact(
    "misclass",
    needs=("census",),
    title="Section 4.4 — suspected version-split misclassifications",
    paper="Section 4.4",
)
def misclass(study: Study) -> ArtifactResult:
    """Partial sites whose IPv4-only resources all carry v4-name markers."""
    suspected, total = estimate_version_split_misclassification(study.census.dataset)
    rows = [{
        "suspected": suspected,
        "partial_sites": total,
        "share": (suspected / total) if total else 0.0,
    }]
    return ArtifactResult(columns=("suspected", "partial_sites", "share"), rows=rows)


@artifact(
    "longitudinal",
    needs=("census",),
    title="Longitudinal — the same universe at successive adoption levels",
    paper="Section 4.5",
)
def longitudinal(
    study: Study,
    labels: tuple[str, ...] = ("t0", "t1"),
    drift_per_round: float = 0.05,
) -> ArtifactResult:
    """Re-crawl the identical site population as adoption drifts forward."""
    from repro.crawler.crawl import LINK_CLICKS

    # Round 0 is the unchanged base universe; when the study's census was
    # crawled with the same knobs, its breakdown is byte-identical to
    # what round 0 would rebuild, so reuse it instead of re-crawling.
    precomputed = None
    if study.config.link_clicks == LINK_CLICKS:
        precomputed = {0: census_breakdown(study.census.dataset)}
    snapshots = run_snapshots(
        labels=labels,
        num_sites=study.config.sites,
        seed=study.config.seed,
        drift_per_round=drift_per_round,
        precomputed=precomputed,
    )
    rows = [
        {
            "label": snapshot.label,
            "total": snapshot.breakdown.total,
            "connection_success": snapshot.breakdown.connection_success,
            "ipv4_only": snapshot.breakdown.ipv4_only,
            "ipv6_partial": snapshot.breakdown.ipv6_partial,
            "ipv6_full": snapshot.breakdown.ipv6_full,
        }
        for snapshot in snapshots
    ]
    return ArtifactResult(
        columns=(
            "label", "total", "connection_success",
            "ipv4_only", "ipv6_partial", "ipv6_full",
        ),
        rows=rows,
        metadata={
            "adoption_change_pp": adoption_change(snapshots),
            "drift_per_round": drift_per_round,
        },
        text=compare_snapshots(snapshots),
    )
