"""Observatory artifacts: the binary perspective, and the contrast.

These read ``study.observatory`` (the active-measurement layer probing
the census universe from the per-country vantage fleet); the headline
``contrast`` artifact additionally reads ``study.census`` and
``study.traffic`` to place binary availability, graded readiness, and
actual usage side by side -- the paper's non-binary argument as one
table.
"""

from __future__ import annotations

from repro.api.registry import ArtifactResult, artifact
from repro.api.session import Study
from repro.observatory.analysis import (
    country_availability,
    policy_verdicts,
    site_spread,
    takeoff_series,
    three_way_contrast,
)
from repro.observatory.probe import ProbeVerdict
from repro.util.tables import TextTable, render_series


@artifact(
    "obs_vantages",
    needs=("observatory",),
    title="Observatory — vantage fleet",
    paper="Section 2 (prior-work methodology)",
)
def obs_vantages(study: Study) -> ArtifactResult:
    """The probing fleet: per-vantage country, policy, and knobs."""
    obs = study.observatory
    table = TextTable(
        ["vantage", "country", "policy", "v6 RTT", "policy knob"],
        title="Observatory — vantage fleet",
    )
    rows = []
    for vantage in obs.fleet:
        knob = ""
        if vantage.aaaa_loss_rate:
            knob = f"AAAA loss {vantage.aaaa_loss_rate:.0%}"
        elif vantage.pmtu_blackhole_rate:
            knob = f"PMTU blackhole {vantage.pmtu_blackhole_rate:.0%}"
        elif vantage.block_rate:
            knob = f"v6 blocked for {vantage.block_rate:.0%} of targets"
        table.add_row([
            vantage.name, vantage.country, vantage.policy.value,
            f"{vantage.v6_latency * 1000:.0f} ms", knob or "-",
        ])
        rows.append({
            "vantage": vantage.name,
            "country": vantage.country,
            "policy": vantage.policy.value,
            "v6_latency": vantage.v6_latency,
            "aaaa_loss_rate": vantage.aaaa_loss_rate,
            "pmtu_blackhole_rate": vantage.pmtu_blackhole_rate,
            "block_rate": vantage.block_rate,
        })
    return ArtifactResult(
        columns=(
            "vantage", "country", "policy", "v6_latency",
            "aaaa_loss_rate", "pmtu_blackhole_rate", "block_rate",
        ),
        rows=rows,
        metadata={
            "targets": len(obs.targets),
            "rounds": obs.num_rounds,
            "round_days": list(obs.config.round_days),
        },
        text=table.render(),
    )


@artifact(
    "obs_availability",
    needs=("observatory",),
    title="Observatory — per-country IPv6 availability",
    paper="after arXiv:2204.09539",
)
def obs_availability(study: Study) -> ArtifactResult:
    """The binary availability table a per-country observatory reports."""
    obs = study.observatory
    table = TextTable(
        ["country", "vantages", "probes", "AAAA seen", "v6 available", "client used v6"],
        title="Observatory — per-country IPv6 availability (all rounds)",
    )
    rows = []
    for row in country_availability(obs):
        table.add_row([
            row.country, row.vantages, row.probes,
            f"{row.aaaa_share:.1%}", f"{row.available_share:.1%}",
            f"{row.client_v6_share:.1%}",
        ])
        rows.append({
            "country": row.country,
            "vantages": row.vantages,
            "probes": row.probes,
            "aaaa_share": row.aaaa_share,
            "available_share": row.available_share,
            "synthesized": row.synthesized,
            "client_v6_share": row.client_v6_share,
        })
    return ArtifactResult(
        columns=(
            "country", "vantages", "probes", "aaaa_share",
            "available_share", "synthesized", "client_v6_share",
        ),
        rows=rows,
        text=table.render(),
    )


@artifact(
    "obs_takeoff",
    needs=("observatory",),
    title="Observatory — availability takeoff curve",
    paper="after arXiv:1402.3982",
)
def obs_takeoff(study: Study) -> ArtifactResult:
    """Availability share per probe round, overall and per country."""
    obs = study.observatory
    series = takeoff_series(obs)
    days = [float(d) for d in series.days]
    lines = [render_series("overall", days, list(series.overall))]
    lines.extend(
        render_series(country, days, list(shares))
        for country, shares in series.by_country.items()
    )
    rows = [
        {
            "round": index,
            "day": day,
            "overall": series.overall[index],
            **{c: series.by_country[c][index] for c in series.by_country},
        }
        for index, day in enumerate(series.days)
    ]
    return ArtifactResult(
        columns=("round", "day", "overall", *series.by_country),
        rows=rows,
        lines=lines,
        metadata={
            "countries": list(series.by_country),
            "adoption_drift": obs.config.adoption_drift,
        },
        # Text renders the compact series form only; the table form of
        # the same numbers lives in rows/columns for JSON consumers.
        text="Observatory — availability takeoff curve\n" + "\n".join(lines),
    )


@artifact(
    "obs_policies",
    needs=("observatory",),
    title="Observatory — verdicts by network policy",
    paper="Section 6 (discussion)",
)
def obs_policies(study: Study) -> ArtifactResult:
    """Why the binary answer moves: verdict taxonomy per access policy."""
    obs = study.observatory
    table = TextTable(
        ["policy", "vantages", "probes", "available"]
        + [verdict.name for verdict in ProbeVerdict],
        title="Observatory — probe verdicts by network policy",
    )
    rows = []
    for entry in policy_verdicts(obs):
        table.add_row(
            [entry.policy.value, entry.vantages, entry.probes,
             f"{entry.available_share:.1%}"]
            + [entry.verdict_counts.get(verdict, 0) for verdict in ProbeVerdict]
        )
        rows.append({
            "policy": entry.policy.value,
            "vantages": entry.vantages,
            "probes": entry.probes,
            "available_share": entry.available_share,
            "verdicts": {v.name: c for v, c in entry.verdict_counts.items()},
        })
    return ArtifactResult(
        columns=("policy", "vantages", "probes", "available_share", "verdicts"),
        rows=rows,
        text=table.render(),
    )


@artifact(
    "obs_sites",
    needs=("observatory",),
    title="Observatory — cross-country site agreement",
    paper="Section 6 (discussion)",
)
def obs_sites(study: Study) -> ArtifactResult:
    """How many countries agree a site "has IPv6" (final round)."""
    obs = study.observatory
    spread = site_spread(obs)
    table = TextTable(
        ["available from k countries", "sites"],
        title="Observatory — cross-country agreement (final round)",
    )
    rows = []
    for k, count in enumerate(spread.histogram):
        if count:
            table.add_row([k, count])
        rows.append({"countries_available": k, "sites": count})
    lines = [
        f"unanimous yes: {spread.unanimous_yes}   "
        f"unanimous no: {spread.unanimous_no}   "
        f"contested: {spread.contested} of {spread.sites}",
    ]
    return ArtifactResult(
        columns=("countries_available", "sites"),
        rows=rows,
        lines=lines,
        metadata={
            "countries": spread.countries,
            "sites": spread.sites,
            "unanimous_yes": spread.unanimous_yes,
            "unanimous_no": spread.unanimous_no,
            "contested": spread.contested,
        },
        text=table.render() + "\n" + lines[0],
    )


@artifact(
    "contrast",
    needs=("observatory", "census", "traffic"),
    title="Three-way contrast — availability vs readiness vs usage",
    paper="the paper's thesis, rendered",
)
def contrast(study: Study) -> ArtifactResult:
    """Binary availability vs graded readiness vs IPv6 usage, per country."""
    obs = study.observatory
    rows_data = three_way_contrast(obs, study.census.dataset, study.traffic)
    table = TextTable(
        [
            "country", "binary: v6 available", "graded: full", "graded: partial",
            "graded: v4-only", "usage: v6 byte share",
        ],
        title="Three-way contrast — binary availability vs graded readiness "
        "vs actual usage",
    )
    rows = []
    for row in rows_data:
        table.add_row([
            row.country, f"{row.available_share:.1%}",
            f"{row.census_full_share:.1%}", f"{row.census_partial_share:.1%}",
            f"{row.census_v4only_share:.1%}",
            f"{row.traffic_v6_byte_fraction:.1%}",
        ])
        rows.append({
            "country": row.country,
            "probes": row.probes,
            "available_share": row.available_share,
            "census_full_share": row.census_full_share,
            "census_partial_share": row.census_partial_share,
            "census_v4only_share": row.census_v4only_share,
            "traffic_v6_byte_fraction": row.traffic_v6_byte_fraction,
            "binary_minus_graded": row.binary_minus_graded,
        })
    spread_max = max((r.available_share for r in rows_data), default=0.0)
    spread_min = min((r.available_share for r in rows_data), default=0.0)
    footer = (
        f"binary answers span {spread_min:.1%}..{spread_max:.1%} across "
        "countries for the *same* sites; graded readiness and usage are "
        "single truths the binary check cannot express"
    )
    return ArtifactResult(
        columns=(
            "country", "probes", "available_share", "census_full_share",
            "census_partial_share", "census_v4only_share",
            "traffic_v6_byte_fraction", "binary_minus_graded",
        ),
        rows=rows,
        metadata={
            "binary_spread": [spread_min, spread_max],
            "targets": len(obs.targets),
            "final_round_day": obs.config.round_days[-1],
        },
        text=table.render() + "\n" + footer,
    )
