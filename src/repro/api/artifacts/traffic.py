"""Client-side artifacts (paper section 3): residential traffic shares.

Everything here reads ``study.traffic`` -- the five-residence study --
which the session builds lazily, once, however many of these artifacts a
run requests.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import ArtifactResult, artifact
from repro.api.session import Study
from repro.core.client import (
    as_traffic_breakdown,
    compute_residence_stats,
    daily_fractions,
    heavy_hitter_days,
    hourly_fraction_series,
    protocol_mix,
    shared_as_box_stats,
    shared_domain_box_stats,
)
from repro.core.mstl import mstl
from repro.flowmon.monitor import FlowScope
from repro.util.stats import empirical_cdf
from repro.util.tables import TextTable, render_series

#: The paper's MSTL window: March 2025, days 120-150 of the observation.
MARCH_START_DAY = 120
MARCH_DAYS = 31


def sample_points(xs, ys, max_points: int = 48) -> list[list[float]]:
    """Evenly subsample a series into JSON-sized ``[x, y]`` pairs."""
    n = len(xs)
    if n <= max_points:
        idx = range(n)
    else:
        step = (n - 1) / (max_points - 1)
        idx = sorted({round(i * step) for i in range(max_points)})
    return [[float(xs[i]), float(ys[i])] for i in idx]


@artifact(
    "table1",
    needs=("traffic",),
    title="Table 1 — per-residence traffic and IPv6 fractions",
    paper="Table 1",
)
def table1(study: Study) -> ArtifactResult:
    """Per-residence traffic volumes and IPv6 byte/flow fractions."""
    traffic = study.traffic
    columns = (
        "residence", "scope", "total_gb", "byte_fraction",
        "byte_fraction_daily_mean", "byte_fraction_daily_std",
        "flows", "flow_fraction",
    )
    rows = []
    table = TextTable(
        ["res", "scope", "GB", "frac v6 bytes", "daily mean (s.d.)",
         "flows", "frac v6 flows"],
        title=(
            f"Table 1 — {traffic.num_days} days, residences "
            f"{', '.join(sorted(traffic.datasets))}"
        ),
    )
    for name in sorted(traffic.datasets):
        stats = compute_residence_stats(traffic.dataset(name))
        for scope in (stats.external, stats.internal):
            rows.append({
                "residence": name,
                "scope": scope.scope.value,
                "total_gb": round(scope.total_gb, 3),
                "byte_fraction": scope.byte_fraction_overall,
                "byte_fraction_daily_mean": scope.byte_fraction_daily_mean,
                "byte_fraction_daily_std": scope.byte_fraction_daily_std,
                "flows": scope.total_flows,
                "flow_fraction": scope.flow_fraction_overall,
            })
            table.add_row([
                name, scope.scope.value, f"{scope.total_gb:.2f}",
                f"{scope.byte_fraction_overall:.3f}",
                f"{scope.byte_fraction_daily_mean:.3f} ({scope.byte_fraction_daily_std:.3f})",
                scope.total_flows,
                f"{scope.flow_fraction_overall:.3f}",
            ])
    return ArtifactResult(
        columns=columns,
        rows=rows,
        metadata={"num_days": traffic.num_days},
        text=table.render(),
    )


def _daily_cdfs(study: Study, residences: tuple[str, ...], label: str) -> ArtifactResult:
    traffic = study.traffic
    rows, lines = [], [label]
    for name in residences:
        dataset = traffic.datasets.get(name)
        if dataset is None:
            continue
        for scope in (FlowScope.EXTERNAL, FlowScope.INTERNAL):
            for metric in ("bytes", "flows"):
                values = daily_fractions(dataset, scope=scope, metric=metric)
                if not values:
                    continue
                cdf = empirical_cdf(values)
                rows.append({
                    "residence": name,
                    "scope": scope.value,
                    "metric": metric,
                    "days": len(values),
                    "cdf": sample_points(cdf.points, cdf.fractions),
                })
                lines.append(
                    render_series(f"{name}/{scope.value}/{metric}",
                                  cdf.points, cdf.fractions)
                )
    present = [r for r in residences if r in traffic.datasets]
    return ArtifactResult(rows=rows, lines=lines, metadata={"residences": present})


@artifact(
    "fig1",
    needs=("traffic",),
    title="Figure 1 — per-day IPv6 fraction CDFs, residences A-C",
    paper="Figure 1",
)
def fig1(study: Study) -> ArtifactResult:
    """CDFs of per-day IPv6 byte/flow fractions at residences A-C."""
    return _daily_cdfs(
        study, ("A", "B", "C"),
        "Figure 1: fraction of per-day IPv6 bytes/flows (CDFs)",
    )


@artifact(
    "fig16",
    needs=("traffic",),
    title="Figure 16 — per-day IPv6 fraction CDFs, residences D-E",
    paper="Figure 16",
)
def fig16(study: Study) -> ArtifactResult:
    """CDFs of per-day IPv6 fractions at the appendix residences D-E."""
    return _daily_cdfs(
        study, ("D", "E"),
        "Figure 16: fraction of per-day IPv6 bytes/flows, residences D-E",
    )


def _mstl_decomposition(study: Study, residence: str, metric: str) -> ArtifactResult:
    traffic = study.traffic
    dataset = traffic.datasets.get(residence)
    if dataset is None:
        return ArtifactResult(
            lines=[f"residence {residence} is not part of this study"],
            metadata={"residence": residence, "metric": metric},
        )
    if traffic.num_days >= MARCH_START_DAY + MARCH_DAYS:
        start, span = MARCH_START_DAY, MARCH_DAYS
    else:
        start, span = 0, traffic.num_days
    series = hourly_fraction_series(
        dataset, metric=metric, start_day=start, num_days=span
    )
    periods = [p for p in (24, 168) if series.size >= 2 * p]
    metadata = {
        "residence": residence,
        "metric": metric,
        "window_start_day": start,
        "window_days": span,
        "periods": periods,
    }
    if not periods:
        return ArtifactResult(
            lines=[f"{span}-day window too short for seasonal decomposition"],
            metadata=metadata,
        )
    result = mstl(series, periods)
    components = [("observed", result.observed), ("trend", result.trend)]
    components += [(f"seasonal-{p}h", result.seasonal(p)) for p in periods]
    components.append(("residual", result.residual))
    hours = np.arange(series.size, dtype=float)
    rows = [
        {
            "component": label,
            "n": int(values.size),
            "points": sample_points(hours, values),
        }
        for label, values in components
    ]
    lines = [
        render_series(f"{label:12s}", hours, values, max_points=12)
        for label, values in components
    ]
    daily = result.seasonal(24).reshape(-1, 24).mean(axis=0)
    metadata["daily_peak_hour"] = int(daily.argmax())
    metadata["daily_trough_hour"] = int(daily.argmin())
    return ArtifactResult(rows=rows, lines=lines, metadata=metadata)


@artifact(
    "fig2",
    needs=("traffic",),
    title="Figure 2 — MSTL of residence A's hourly IPv6 byte fraction",
    paper="Figure 2",
)
def fig2(study: Study) -> ArtifactResult:
    """MSTL decomposition showing IPv6 traffic is human-driven (bytes, A)."""
    return _mstl_decomposition(study, "A", "bytes")


@artifact(
    "fig13",
    needs=("traffic",),
    title="Figure 13 — MSTL of residence A's hourly IPv6 flow fraction",
    paper="Figure 13",
)
def fig13(study: Study) -> ArtifactResult:
    """MSTL decomposition of the flow (not byte) fraction at residence A."""
    return _mstl_decomposition(study, "A", "flows")


@artifact(
    "fig14",
    needs=("traffic",),
    title="Figure 14 — MSTL of residence B's hourly IPv6 byte fraction",
    paper="Figure 14",
)
def fig14(study: Study) -> ArtifactResult:
    """MSTL decomposition of residence B's byte fraction (appendix B)."""
    return _mstl_decomposition(study, "B", "bytes")


@artifact(
    "fig15",
    needs=("traffic",),
    title="Figure 15 — MSTL of residence C's hourly IPv6 byte fraction",
    paper="Figure 15",
)
def fig15(study: Study) -> ArtifactResult:
    """MSTL decomposition of residence C's byte fraction (appendix B)."""
    return _mstl_decomposition(study, "C", "bytes")


def _pick_residence(study: Study, residence: str):
    datasets = study.traffic.datasets
    if residence in datasets:
        return residence, datasets[residence]
    name = sorted(datasets)[0]
    return name, datasets[name]


@artifact(
    "fig3",
    needs=("traffic",),
    title="Figure 3 — per-AS IPv6 byte fractions at one residence",
    paper="Figure 3",
)
def fig3(study: Study, residence: str = "A", top: int = 10) -> ArtifactResult:
    """Which services lead and lag: per-AS IPv6 fractions and their CDF."""
    residence, dataset = _pick_residence(study, residence)
    entries = as_traffic_breakdown(dataset)
    ranked = sorted(entries, key=lambda e: -e.fraction_v6)
    rows = [
        {
            "rank": kind,
            "asn": entry.info.asn,
            "name": entry.info.name,
            "category": entry.info.category.value,
            "total_gb": round(entry.total_bytes / 1e9, 3),
            "fraction_v6": entry.fraction_v6,
        }
        for kind, selection in (
            ("lead", ranked[:top]),
            ("lag", ranked[max(top, len(ranked) - top):]),
        )
        for entry in selection
    ]
    lines = []
    if entries:
        cdf = empirical_cdf([e.fraction_v6 for e in entries])
        lines.append(render_series("per-AS IPv6 fraction CDF",
                                   cdf.points, cdf.fractions))
    return ArtifactResult(
        columns=("rank", "asn", "name", "category", "total_gb", "fraction_v6"),
        rows=rows,
        lines=lines,
        metadata={"residence": residence, "num_ases": len(entries)},
    )


@artifact(
    "fig4",
    needs=("traffic",),
    title="Figure 4 — per-AS IPv6 fraction box stats across residences",
    paper="Figure 4",
)
def fig4(study: Study, min_residences: int | None = None) -> ArtifactResult:
    """Cross-residence per-AS box statistics, grouped by service category."""
    datasets = study.traffic.datasets
    if min_residences is None:
        min_residences = min(3, len(datasets))
    grouped = shared_as_box_stats(datasets, min_residences=min_residences)
    rows = [
        {
            "category": category.value,
            "asn": info.asn,
            "name": info.name,
            "median": stats.median,
            "p25": stats.p25,
            "p75": stats.p75,
            "residences": stats.n,
        }
        for category in sorted(grouped, key=lambda c: c.value)
        for info, stats in grouped[category]
    ]
    return ArtifactResult(
        columns=("category", "asn", "name", "median", "p25", "p75", "residences"),
        rows=rows,
        metadata={"min_residences": min_residences},
    )


@artifact(
    "fig17",
    needs=("traffic",),
    title="Figure 17 — per-domain IPv6 fraction box stats across residences",
    paper="Figure 17",
)
def fig17(
    study: Study,
    min_residences: int | None = None,
    min_bytes: int = 100_000_000,
    top: int = 25,
) -> ArtifactResult:
    """Reverse-DNS domain view of which services lead and lag."""
    datasets = study.traffic.datasets
    if min_residences is None:
        min_residences = min(3, len(datasets))
    stats = shared_domain_box_stats(
        datasets, min_residences=min_residences, min_bytes=min_bytes
    )
    rows = [
        {
            "domain": domain,
            "median": box.median,
            "p25": box.p25,
            "p75": box.p75,
            "residences": box.n,
        }
        for domain, box in stats[:top]
    ]
    return ArtifactResult(
        columns=("domain", "median", "p25", "p75", "residences"),
        rows=rows,
        metadata={"num_domains": len(stats), "min_residences": min_residences},
    )


@artifact(
    "heavydays",
    needs=("traffic",),
    title="Heavy-hitter days — who drives the extreme IPv6 days",
    paper="Section 3.2",
)
def heavydays(study: Study, residence: str = "A") -> ArtifactResult:
    """Days at the tails of the daily IPv6 fraction and their top ASes."""
    residence, dataset = _pick_residence(study, residence)
    registry = dataset.universe.registry
    low, high = heavy_hitter_days(dataset)

    def describe(asn: int) -> str:
        info = registry.lookup(asn)
        return f"{info.name} (AS{asn})" if info is not None else f"AS{asn}"

    rows = [
        {
            "tail": tail,
            "day": day.day,
            "fraction_v6": day.fraction_v6,
            "total_gb": round(day.total_bytes / 1e9, 3),
            "dominant_ases": ", ".join(describe(asn) for asn, _ in day.dominant_ases),
        }
        for tail, days in (("low", low), ("high", high))
        for day in days
    ]
    return ArtifactResult(
        columns=("tail", "day", "fraction_v6", "total_gb", "dominant_ases"),
        rows=rows,
        metadata={"residence": residence},
    )


@artifact(
    "protocols",
    needs=("traffic",),
    title="Protocol mix — bytes and flows per family and transport",
    paper="Section 3.1",
)
def protocols(study: Study) -> ArtifactResult:
    """Modern IPv6 carries data, not just control traffic, like IPv4."""
    rows = []
    for name in sorted(study.traffic.datasets):
        mixes = protocol_mix(study.traffic.dataset(name))
        for family in ("IPv4", "IPv6"):
            mix = mixes[family]
            for protocol in sorted(
                mix.bytes_by_protocol, key=mix.bytes_by_protocol.get, reverse=True
            ):
                rows.append({
                    "residence": name,
                    "family": family,
                    "protocol": protocol,
                    "gb": round(mix.bytes_by_protocol[protocol] / 1e9, 3),
                    "flows": mix.flows_by_protocol.get(protocol, 0),
                    "byte_share": mix.byte_share(protocol),
                })
    return ArtifactResult(
        columns=("residence", "family", "protocol", "gb", "flows", "byte_share"),
        rows=rows,
    )
