"""Registered renderers for every figure and table of the paper.

Importing this package registers all artifacts with
:mod:`repro.api.registry`; the modules are grouped by the session layer
they read:

* :mod:`repro.api.artifacts.traffic` -- section 3, the client-side view.
* :mod:`repro.api.artifacts.census` -- section 4, website readiness.
* :mod:`repro.api.artifacts.cloud` -- section 5, cloud adoption.
* :mod:`repro.api.artifacts.observatory` -- the binary availability
  perspective (per-country vantage probes) and the three-way contrast.
* :mod:`repro.api.artifacts.whatif` -- the counterfactual intervention
  sweep (overlay studies, per-country deltas against the baseline).
* :mod:`repro.api.artifacts.sentinel` -- the significance engine's
  event feed and the sweep-by-events scenario ranking.
"""

from repro.api.artifacts import (  # noqa: F401
    census,
    cloud,
    observatory,
    sentinel,
    traffic,
    whatif,
)
