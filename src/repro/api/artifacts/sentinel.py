"""Sentinel artifacts: the event feed and the whatif event ranking.

* ``sentinel_events`` -- the study's full significance feed, one row
  per emitted event, plus the scan census (points watched, thresholds)
  that makes an empty feed legible as "watched and quiet" rather than
  "not run".
* ``whatif_event_ranking`` -- the sweep-by-events view: every whatif
  scenario re-scanned in its overlay world, ranked by how many events
  the counterfactual would have triggered.
"""

from __future__ import annotations

import dataclasses

from repro.api.registry import ArtifactResult, artifact
from repro.api.session import Study


@artifact(
    "sentinel_events",
    needs=("sentinel",),
    title="Sentinel — significant deviations in the adoption series",
    paper="the non-binary thesis, monitored: inflection points per signal",
)
def sentinel_events(study: Study) -> ArtifactResult:
    """The deterministic event feed over the five adoption signals."""
    from repro.util.tables import TextTable

    feed = study.sentinel
    table = TextTable(
        ["day", "signal", "scope", "severity", "dir", "value", "baseline", "z"],
        title="Sentinel — significant deviations vs trailing baselines",
    )
    rows = []
    severity_totals = {severity: 0 for severity in ("watch", "elevated", "critical")}
    for event in feed.events:
        severity_totals[event.severity] += 1
        table.add_row([
            str(event.day),
            event.signal,
            event.scope,
            event.severity,
            event.direction,
            f"{event.value:.4f}",
            f"{event.baseline:.4f}",
            f"{event.z:+.2f}",
        ])
        rows.append({
            "day": event.day,
            "signal": event.signal,
            "scope": event.scope,
            "severity": event.severity,
            "direction": event.direction,
            "value": event.value,
            "baseline": event.baseline,
            "sigma": event.sigma,
            "z": event.z,
        })
    footer = (
        f"{len(feed.events)} event(s) across {feed.points} series points "
        f"({len(feed.signals)} signals, {len(feed.scopes)} scopes, "
        f"{feed.days} days); silence is valid data"
    )
    return ArtifactResult(
        columns=(
            "day", "signal", "scope", "severity", "direction",
            "value", "baseline", "sigma", "z",
        ),
        rows=rows,
        metadata={
            "signals": list(feed.signals),
            "scopes": list(feed.scopes),
            "points": feed.points,
            "days": feed.days,
            "events_total": len(feed.events),
            "by_severity": severity_totals,
            "thresholds": dataclasses.asdict(feed.config),
        },
        text=table.render() + "\n" + footer,
    )


@artifact(
    "whatif_event_ranking",
    needs=("sentinel",),
    title="What-if — scenarios ranked by triggered sentinel events",
    paper="section 6 run forward, through the significance model",
)
def whatif_event_ranking(study: Study) -> ArtifactResult:
    """Which interventions would have set the sentinel off, ranked."""
    from repro.util.tables import TextTable
    from repro.whatif.events import run_event_sweep

    sweep = run_event_sweep(study)
    table = TextTable(
        ["#", "scenario", "perturbs", "events", "new", "resolved", "severities"],
        title="What-if — scenarios ranked by triggered sentinel events",
    )
    rows = []
    for rank, entry in enumerate(sweep.scenarios, start=1):
        severities = ", ".join(
            f"{severity}:{count}" for severity, count in entry.by_severity if count
        )
        table.add_row([
            str(rank),
            entry.scenario,
            ",".join(entry.layers),
            str(entry.events_total),
            str(entry.new_events),
            str(entry.resolved_events),
            severities or "-",
        ])
        rows.append({
            "rank": rank,
            "scenario": entry.scenario,
            "layers": list(entry.layers),
            "events_total": entry.events_total,
            "by_severity": dict(entry.by_severity),
            "new_events": entry.new_events,
            "resolved_events": entry.resolved_events,
        })
    footer = (
        f"baseline feed: {sweep.baseline_events} event(s) over "
        f"{sweep.baseline_points} points; overlays rebuild only perturbed "
        "layers -- baseline universes stay cache hits"
    )
    return ArtifactResult(
        columns=(
            "rank", "scenario", "layers", "events_total", "by_severity",
            "new_events", "resolved_events",
        ),
        rows=rows,
        metadata={
            "scenarios": len(sweep.scenarios),
            "baseline_events": sweep.baseline_events,
            "baseline_points": sweep.baseline_points,
        },
        text=table.render() + "\n" + footer,
    )
