"""The :class:`Study` session: one object owning scale, seed, and caches.

A study is configured once (:class:`StudyConfig`) and then builds each
expensive layer -- the residential traffic study, the web census, the
cloud attribution, the dependency analysis -- lazily, exactly once per
configuration, no matter how many artifacts ask for it.  The caches are
process-wide and keyed on the configuration, so two ``Study`` objects
with equal configs share the same underlying universes (the behaviour
the benchmark harness and ``python -m repro all`` rely on).

    from repro.api import Study

    study = Study(days=28, sites=1500)
    print(study.artifact("table1").to_text())
    print(study.artifact("fig5").to_json())
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.core.cloudstats import attribute_domains
from repro.core.deps import analyze_dependencies
from repro.datasets.scenarios import (
    BENCH_CENSUS_SITES,
    BENCH_TRAFFIC_DAYS,
    CensusStudy,
    ResidenceStudy,
    build_census,
    build_residence_study,
)
from repro.telemetry import counter_view, registry as _metrics_registry, span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.registry import ArtifactResult
    from repro.core.cloudstats import DomainCloudView
    from repro.core.deps import DependencyAnalysis
    from repro.observatory.rounds import ObservatoryStudy
    from repro.sentinel.scan import SentinelFeed
    from repro.whatif.sweep import WhatifSweep

#: The session's registry instruments.  Builds and store traffic count
#: here (label-keyed), render on ``GET /metrics``, and merge across
#: procpool workers; the legacy ``*_COUNTS`` names below are
#: compatibility views over these instruments, not separate state.
_BUILDS = _metrics_registry().counter(
    "builds_total", "layer builds (process-cache misses), per layer", ("layer",)
)
_STORE_OPS = _metrics_registry().counter(
    "store_ops_total", "session store traffic, per event:layer", ("op",)
)
_BUILD_SECONDS = _metrics_registry().histogram(
    "build_seconds", "wall time of each layer build", ("layer",)
)
_WRITE_BEHIND_FAILURES = _metrics_registry().counter(
    "store_write_behind_failures_total",
    "write-behind persists that failed (the build still served)",
)

#: How many times each layer has actually been *built* (cache misses).
#: Tests assert on deltas of this counter to prove memoization works.
#: Overlay (whatif) rebuilds count under ``whatif:<layer>`` keys, so a
#: sweep never inflates the baseline layer counters.  A layer loaded
#: from the on-disk store is *not* a build: it counts in
#: :data:`STORE_COUNTS` instead.
# replint: allow[REP010] compatibility view over the builds_total registry instrument
BUILD_COUNTS = counter_view(_BUILDS)

#: Disk-tier traffic, when a store is active (``repro.store``):
#: ``hit:<layer>`` / ``miss:<layer>`` on reads, ``write:<layer>`` on
#: write-behind, ``retry:<layer>`` per transient read re-attempt under
#: the shared store retry policy, ``error:<layer>`` when a corrupt or
#: unreadable entry fell back to a rebuild (which then overwrites --
#: repairs -- the damaged entry).
# replint: allow[REP010] compatibility view over the store_ops_total registry instrument
STORE_COUNTS = counter_view(_STORE_OPS)


def _store_load(layer: str, key: tuple) -> tuple[Any | None, bool]:
    """Read-through: fetch a layer from the active store (miss = None).

    Returns ``(value, damaged)``.  Reads run under the shared store
    retry policy (:data:`repro.resilience.retry.STORE_POLICY`), so a
    transient IO failure backs off and re-reads before anything is
    rebuilt; a corrupt entry (checksum failure, which retrying cannot
    cure) or a read that exhausted its retries is a warning and a miss
    with ``damaged=True`` -- the session rebuilds rather than dying on
    a damaged warehouse, and the write-behind then *overwrites* the bad
    entry so the store actually heals.
    """
    from repro.resilience.retry import STORE_POLICY, call_with_retry
    from repro.store.warehouse import StoreReadError, active_store

    store = active_store()
    if store is None:
        return None, False

    def on_retry(attempt: int, exc: BaseException) -> None:
        STORE_COUNTS[f"retry:{layer}"] += 1

    try:
        value = call_with_retry(
            lambda: store.load_layer(layer, key),
            label=f"store:{layer}",
            policy=STORE_POLICY,
            retryable=(StoreReadError, OSError),
            on_retry=on_retry,
        )
    except Exception as exc:
        import warnings

        STORE_COUNTS[f"error:{layer}"] += 1
        warnings.warn(
            f"store: could not load the {layer} layer ({exc}); rebuilding",
            RuntimeWarning,
            stacklevel=3,
        )
        return None, True
    STORE_COUNTS[("hit:" if value is not None else "miss:") + layer] += 1
    return value, False


def _store_save(layer: str, key: tuple, value: Any, repair: bool = False) -> None:
    """Write-behind: persist a freshly built layer (failures are warnings).

    ``repair=True`` (the load before this build failed) overwrites the
    existing entry instead of trusting the content-addressed
    skip-if-present fast path, which would otherwise leave the damaged
    bytes in place forever.
    """
    from repro.store.warehouse import active_store

    store = active_store()
    if store is None:
        return
    try:
        store.save_layer(layer, key, value, overwrite=repair)
    except Exception as exc:
        import warnings

        STORE_COUNTS[f"error:{layer}"] += 1
        _WRITE_BEHIND_FAILURES.inc()
        warnings.warn(
            f"store: could not persist the {layer} layer ({exc}); "
            "continuing without write-behind",
            RuntimeWarning,
            stacklevel=3,
        )
        return
    STORE_COUNTS[f"write:{layer}"] += 1

_TRAFFIC_CACHE: dict[tuple, ResidenceStudy] = {}
_CENSUS_CACHE: dict[tuple, CensusStudy] = {}
_CLOUD_CACHE: dict[tuple, dict] = {}
_DEPS_CACHE: dict[tuple, Any] = {}
_OBSERVATORY_CACHE: dict[tuple, Any] = {}
_WHATIF_CACHE: dict[tuple, Any] = {}
_SENTINEL_CACHE: dict[tuple, Any] = {}

#: Every process-wide layer cache, in one place.  ``clear_caches`` and
#: the sweep-worker priming iterate this; a new layer that adds its own
#: module-level ``_*_CACHE`` dict must register here (enforced by
#: ``tests/api/test_session.py``), so overlays can never be silently
#: leaked across ``clear_caches()``.
_ALL_CACHES: dict[str, dict] = {
    "traffic": _TRAFFIC_CACHE,
    "census": _CENSUS_CACHE,
    "cloud": _CLOUD_CACHE,
    "dependencies": _DEPS_CACHE,
    "observatory": _OBSERVATORY_CACHE,
    "whatif": _WHATIF_CACHE,
    "sentinel": _SENTINEL_CACHE,
}


def clear_caches() -> None:
    """Drop every cached layer (``BUILD_COUNTS`` is left intact)."""
    for cache in _ALL_CACHES.values():
        cache.clear()


def prime_caches(layer_values: dict[str, dict[tuple, Any]]) -> None:
    """Seed the process-wide caches with already-built layers.

    ``layer_values`` maps a layer name (a key of :data:`_ALL_CACHES`)
    to ``{cache_key: built_value}`` entries.  Used by the whatif sweep
    workers: the parent ships its baseline universes once per worker so
    a 20-scenario sweep fanned over processes still rebuilds zero
    untouched layers.
    """
    for layer, entries in layer_values.items():
        try:
            cache = _ALL_CACHES[layer]
        except KeyError:
            raise ValueError(
                f"unknown layer {layer!r}; expected one of "
                f"{', '.join(sorted(_ALL_CACHES))}"
            ) from None
        cache.update(entries)


@dataclass(frozen=True)
class StudyConfig:
    """Scale and seed of one study; hashable, so it keys the caches.

    Defaults are the *bench* scale from :mod:`repro.datasets.scenarios`
    (154 days, 4000 sites); the paper scale is ``days=273``,
    ``sites=100_000``.

    ``parallel`` controls the process-pool fan-outs (traffic generation
    and observatory probe rounds): ``None`` (default) auto-enables a
    pool on multi-core machines, ``False`` forces the sequential path,
    an ``int`` pins the worker count.  It does not key the caches --
    parallel and sequential builds are bit-identical (every residence
    and every vantage point draws from its own seeded RNG substream), so
    they share cache entries.

    ``probe_targets`` / ``probe_interval_days`` scale the observatory
    layer only: how many top-ranked sites every vantage probes, and how
    many days apart the probe rounds run across the ``days`` window.

    ``whatif_scenarios`` selects the counterfactual sweep grid: a tuple
    of scenario spec strings (``"nat64:DE"``,
    ``"dualstack:Amazon+ispv6"``; see :mod:`repro.whatif.spec`).
    ``None`` means the default grid.  It keys only the ``whatif`` layer.
    """

    days: int = BENCH_TRAFFIC_DAYS
    sites: int = BENCH_CENSUS_SITES
    seed: int = 42
    link_clicks: int = 5
    residences: tuple[str, ...] | None = None
    parallel: bool | int | None = None
    probe_targets: int = 500
    probe_interval_days: int = 14
    whatif_scenarios: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("days must be >= 1")
        if self.sites < 1:
            raise ValueError("sites must be >= 1")
        if self.link_clicks < 0:
            raise ValueError("link_clicks must be >= 0")
        if self.probe_targets < 1:
            raise ValueError("probe_targets must be >= 1")
        if self.probe_interval_days < 1:
            raise ValueError("probe_interval_days must be >= 1")
        if self.residences is not None:
            object.__setattr__(self, "residences", tuple(sorted(self.residences)))
        if self.whatif_scenarios is not None:
            from repro.whatif.spec import parse_scenario

            # Canonicalize each spec (round-trip through the parser) and
            # de-duplicate preserving order, so equal sweeps share keys.
            canonical = tuple(
                dict.fromkeys(
                    parse_scenario(text).spec() for text in self.whatif_scenarios
                )
            )
            if not canonical:
                raise ValueError("whatif_scenarios must not be empty")
            object.__setattr__(self, "whatif_scenarios", canonical)

    def replace(self, **changes: Any) -> "StudyConfig":
        """A copy with ``changes`` applied (and re-validated)."""
        return dataclasses.replace(self, **changes)

    @property
    def result_key(self) -> tuple:
        """Everything that determines *results* (``parallel`` does not:
        parallel and sequential builds are bit-identical).  Keys the
        rendered-artifact entries of the store and the serving layer's
        caches, the same way the layer keys key the session caches."""
        return (
            "config",
            self.days,
            self.sites,
            self.seed,
            self.link_clicks,
            self.residences,
            self.probe_targets,
            self.probe_interval_days,
            self.whatif_scenarios,
        )

    @property
    def traffic_key(self) -> tuple:
        return ("traffic", self.days, self.seed, self.residences)

    @property
    def census_key(self) -> tuple:
        return ("census", self.sites, self.seed, self.link_clicks)

    @property
    def observatory_key(self) -> tuple:
        return self.observatory_key_over(self.census_key)

    def observatory_key_over(self, census_key: tuple) -> tuple:
        """The observatory key over an explicit census key.

        The observatory probes the census universe, so its key embeds
        the census key -- which an overlay may have extended.  This is
        the single definition both :attr:`observatory_key` and
        ``Study._observatory_key`` compose.
        """
        return (
            "observatory",
            census_key,
            self.days,
            self.probe_targets,
            self.probe_interval_days,
        )


class Study:
    """A lazy, memoized session over the paper's three perspectives.

    Layers are exposed as properties -- :attr:`traffic`, :attr:`census`,
    :attr:`cloud`, :attr:`dependencies` -- and nothing is generated until
    an artifact (or caller) touches one.  Artifacts run through
    :meth:`artifact` / :meth:`run` and every artifact sharing this
    study's config reuses the same builds.
    """

    def __init__(
        self,
        config: StudyConfig | None = None,
        *,
        log: Callable[[str], None] | None = None,
        **overrides: Any,
    ) -> None:
        if config is None:
            config = StudyConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        self._log = log
        self._prebuilt = False
        self._traffic: ResidenceStudy | None = None
        self._census: CensusStudy | None = None
        self._cloud: dict[str, "DomainCloudView"] | None = None
        self._deps: "DependencyAnalysis | None" = None
        self._observatory: "ObservatoryStudy | None" = None
        self._whatif: "WhatifSweep | None" = None
        self._sentinel: "SentinelFeed | None" = None

    @classmethod
    def from_prebuilt(
        cls,
        traffic: ResidenceStudy | None = None,
        census: CensusStudy | None = None,
        config: StudyConfig | None = None,
    ) -> "Study":
        """Wrap already-built universes (compat shims, tests).

        Derived layers (cloud attribution, dependency analysis) are
        computed from the given objects and cached on the instance only:
        the prebuilt universes' true seed/scale are unknown, so they must
        not populate the config-keyed process caches.
        """
        if config is None:
            config = StudyConfig(
                days=traffic.num_days if traffic is not None else BENCH_TRAFFIC_DAYS,
                sites=census.config.num_sites if census is not None else BENCH_CENSUS_SITES,
            )
        study = cls(config)
        study._prebuilt = True
        study._traffic = traffic
        study._census = census
        return study

    def _say(self, message: str) -> None:
        if self._log is not None:
            self._log(message)

    # -- layer cache keys and builders -------------------------------------
    #
    # Each layer's cache key and build recipe is an overridable method,
    # which is how ``repro.whatif.overlay.OverlayStudy`` perturbs only
    # the layers an intervention touches: it extends the keys (and
    # swaps the builders) for perturbed layers and inherits these
    # verbatim for everything else, so untouched layers stay cache hits
    # against the baseline.  ``_count_key`` namespaces BUILD_COUNTS the
    # same way (overlay rebuilds land under ``whatif:<layer>``).

    def _count_key(self, layer: str) -> str:
        return layer

    def _traffic_key(self) -> tuple:
        return self.config.traffic_key

    def _census_key(self) -> tuple:
        return self.config.census_key

    def _observatory_key(self) -> tuple:
        return self.config.observatory_key_over(self._census_key())

    def _whatif_key(self) -> tuple:
        return (
            "whatif",
            self._traffic_key(),
            self._census_key(),
            self._observatory_key(),
            self._whatif_scenario_specs(),
        )

    def _sentinel_key(self) -> tuple:
        return (
            "sentinel",
            self._traffic_key(),
            self._census_key(),
            self._observatory_key(),
        )

    def _whatif_scenario_specs(self) -> tuple[str, ...]:
        """The sweep's scenario specs, with ``None`` resolved to the
        default grid (so explicit-default and implicit-default sweeps
        share one cache entry)."""
        if self.config.whatif_scenarios is not None:
            return self.config.whatif_scenarios
        from repro.whatif.spec import default_sweep_grid

        return tuple(scenario.spec() for scenario in default_sweep_grid())

    def _build_traffic(self) -> ResidenceStudy:
        return build_residence_study(
            num_days=self.config.days,
            seed=self.config.seed,
            residences=self.config.residences,
            parallel=self.config.parallel,
        )

    def _build_census(self) -> CensusStudy:
        return build_census(
            num_sites=self.config.sites,
            seed=self.config.seed,
            link_clicks=self.config.link_clicks,
        )

    def _build_observatory(self, census: CensusStudy) -> "ObservatoryStudy":
        from repro.observatory.rounds import ObservatoryConfig, run_observatory

        return run_observatory(
            census.ecosystem,
            ObservatoryConfig(
                num_days=self.config.days,
                probe_interval_days=self.config.probe_interval_days,
                max_targets=self.config.probe_targets,
                seed=self.config.seed,
                parallel=self.config.parallel,
            ),
        )

    def _timed_build(self, layer: str, build: Callable[[], Any]) -> Any:
        """Count and trace one actual layer build (the only build path).

        Every build increments ``builds_total``, runs inside a
        ``build:<layer>`` span (nesting under whatever artifact or CLI
        span is open), and lands its wall time in the
        ``build_seconds`` histogram -- so "where did the smoke go"
        is answerable per layer without a profiler.
        """
        count_key = self._count_key(layer)
        BUILD_COUNTS[count_key] += 1
        with span(f"build:{layer}", layer=count_key) as build_span:
            value = build()
        _BUILD_SECONDS.observe(build_span.duration_s, layer=count_key)
        return value

    def _resolve_layer(
        self, layer: str, key: tuple, build: Callable[[], Any], message: str
    ) -> Any:
        """Memory -> disk -> build, the tiering every layer shares.

        On a process-cache miss the active store (if any) is consulted
        first; only a disk miss actually builds (and the fresh value is
        written behind).  ``BUILD_COUNTS`` counts builds only -- a disk
        hit shows up in :data:`STORE_COUNTS` instead, which is what the
        warm-start tests key on.
        """
        cache = _ALL_CACHES[layer]
        if key not in cache:
            value, damaged = _store_load(layer, key)
            if value is None:
                self._say(message)
                value = self._timed_build(layer, build)
                _store_save(layer, key, value, repair=damaged)
            cache[key] = value
        return cache[key]

    # -- the layers --------------------------------------------------------

    @property
    def traffic(self) -> ResidenceStudy:
        """The five-residence traffic study (built on first access)."""
        if self._traffic is None:
            self._traffic = self._resolve_layer(
                "traffic",
                self._traffic_key(),
                self._build_traffic,
                f"# generating {self.config.days} days of residential traffic ...",
            )
        return self._traffic

    @property
    def census(self) -> CensusStudy:
        """The crawled web census (built on first access)."""
        if self._census is None:
            self._census = self._resolve_layer(
                "census",
                self._census_key(),
                self._build_census,
                f"# crawling a {self.config.sites}-site universe ...",
            )
        return self._census

    @property
    def cloud(self) -> dict[str, "DomainCloudView"]:
        """Per-FQDN cloud attribution of the census (section 5)."""
        if self._cloud is None:
            def build() -> dict[str, "DomainCloudView"]:
                census = self.census
                return attribute_domains(
                    census.dataset, census.ecosystem.routing, census.ecosystem.registry
                )

            message = "# attributing crawled FQDNs to cloud organizations ..."
            if self._prebuilt:
                # Prebuilt universes never enter the config-keyed caches
                # (their true seed/scale are unknown) -- and for the same
                # reason they must bypass the store.
                self._say(message)
                self._cloud = self._timed_build("cloud", build)
            else:
                self._cloud = self._resolve_layer(
                    "cloud", self._census_key(), build, message
                )
        return self._cloud

    @property
    def dependencies(self) -> "DependencyAnalysis":
        """The section-4.3 dependency analysis of the census."""
        if self._deps is None:
            def build() -> "DependencyAnalysis":
                return analyze_dependencies(self.census.dataset)

            message = "# analyzing IPv4-only dependencies of partial sites ..."
            if self._prebuilt:
                self._say(message)
                self._deps = self._timed_build("dependencies", build)
            else:
                self._deps = self._resolve_layer(
                    "dependencies", self._census_key(), build, message
                )
        return self._deps

    @property
    def observatory(self) -> "ObservatoryStudy":
        """The active-measurement observatory over the census universe.

        Probe rounds run across the study's ``days`` window against the
        top ``probe_targets`` sites, from the default per-country
        vantage fleet; built lazily (the census ecosystem is the ground
        truth being probed) and cached per configuration like every
        other layer.
        """
        if self._observatory is None:
            def build() -> "ObservatoryStudy":
                return self._build_observatory(self.census)

            message = (
                f"# probing {min(self.config.probe_targets, self.config.sites)}"
                " sites from the vantage fleet ..."
            )
            if self._prebuilt:
                self._say(message)
                self._observatory = self._timed_build("observatory", build)
            else:
                self._observatory = self._resolve_layer(
                    "observatory", self._observatory_key(), build, message
                )
        return self._observatory

    @property
    def whatif(self) -> "WhatifSweep":
        """The counterfactual sweep over this study's scenario grid.

        Runs every scenario of ``config.whatif_scenarios`` (the default
        grid when ``None``) as an :class:`~repro.whatif.overlay.
        OverlayStudy` against this study's baseline and assembles the
        per-country availability/readiness/usage deltas into a columnar
        :class:`~repro.whatif.sweep.DeltaFrame`.  Overlays reuse every
        baseline layer an intervention does not perturb, so the sweep
        costs rebuilds only where the counterfactual differs.
        """
        if self._whatif is None:
            from repro.whatif.spec import parse_scenario
            from repro.whatif.sweep import run_sweep

            if self._prebuilt:
                # Same contract as OverlayStudy/run_sweep: prebuilt
                # universes never entered the process caches, so the
                # overlays would fork a different world than the one
                # the baseline signals come from.
                raise ValueError(
                    "whatif sweeps need a config-cached baseline; prebuilt "
                    "studies bypass the process caches the overlays share"
                )
            scenarios = tuple(
                parse_scenario(spec) for spec in self._whatif_scenario_specs()
            )
            self._whatif = self._resolve_layer(
                "whatif",
                self._whatif_key(),
                lambda: run_sweep(self, scenarios, parallel=self.config.parallel),
                f"# sweeping {len(scenarios)} counterfactual scenarios ...",
            )
        return self._whatif

    @property
    def sentinel(self) -> "SentinelFeed":
        """The significance engine's event feed over this study's series.

        Scans the five adoption signals (availability, takeoff,
        readiness, usage, heavy-hitter mix) against trailing baselines
        and caches the resulting deterministic
        :class:`~repro.sentinel.scan.SentinelFeed` like every other
        layer.  An empty feed is a valid result: silence means nothing
        deviated, not that nothing was watched.
        """
        if self._sentinel is None:
            from repro.sentinel.scan import run_sentinel

            def build() -> "SentinelFeed":
                return run_sentinel(self)

            message = "# scanning adoption series for significant deviations ..."
            if self._prebuilt:
                self._say(message)
                self._sentinel = self._timed_build("sentinel", build)
            else:
                self._sentinel = self._resolve_layer(
                    "sentinel", self._sentinel_key(), build, message
                )
        return self._sentinel

    def artifact(self, name: str, **params: Any) -> "ArtifactResult":
        """Run one registered artifact against this study."""
        from repro.api import registry

        return registry.run(self, name, **params)

    def run(self, names: Iterable[str] | None = None) -> list["ArtifactResult"]:
        """Run several artifacts (all of them by default), in order."""
        from repro.api import registry

        wanted = list(names) if names is not None else registry.names()
        return [self.artifact(name) for name in wanted]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        built = [
            layer
            for layer, value in (
                ("traffic", self._traffic),
                ("census", self._census),
                ("cloud", self._cloud),
                ("dependencies", self._deps),
                ("observatory", self._observatory),
                ("whatif", self._whatif),
                ("sentinel", self._sentinel),
            )
            if value is not None
        ]
        return f"Study({self.config!r}, built={built or 'nothing'})"
