"""The supported public surface of the reproduction.

One session object, :class:`Study`, owns scale and seed and lazily
builds each expensive layer exactly once; a registry of named artifacts
covers every figure and table of the paper and renders each to text or
JSON from a single analysis pass::

    from repro.api import Study

    study = Study(days=28, sites=1500, seed=42)
    print(study.artifact("table1").to_text())
    print(study.artifact("fig5").to_json())

    from repro.api import registry
    registry.names()        # every artifact the CLI can produce

New analyses register themselves with :func:`repro.api.registry.artifact`
and immediately appear in ``python -m repro list``.
"""

from repro.api.registry import ArtifactResult, ArtifactSpec, artifact, jsonify
from repro.api.session import (
    BUILD_COUNTS,
    STORE_COUNTS,
    Study,
    StudyConfig,
    clear_caches,
    prime_caches,
)

__all__ = [
    "ArtifactResult",
    "ArtifactSpec",
    "BUILD_COUNTS",
    "STORE_COUNTS",
    "Study",
    "StudyConfig",
    "artifact",
    "clear_caches",
    "jsonify",
    "prime_caches",
]
