"""The counterfactual intervention engine (what-if scenarios).

The repo's other subsystems measure the one world they were seeded
with; this one manufactures the worlds the deployment literature
argues about.  A declarative :class:`~repro.whatif.spec.Intervention`
(an ISP enabling IPv6, a provider dual-stacking, a country deploying
NAT64, a policy block, an accelerated takeoff, a Happy Eyeballs timer
change) names the layers it perturbs; an
:class:`~repro.whatif.overlay.OverlayStudy` forks a baseline
:class:`~repro.api.Study` into that counterfactual, rebuilding *only*
the perturbed layers and reusing the baseline's process-wide caches
for everything else; :func:`~repro.whatif.sweep.run_sweep` fans a
scenario grid out in parallel and lands per-country
availability/readiness/usage deltas in a columnar
:class:`~repro.whatif.sweep.DeltaFrame`::

    from repro.api import Study
    from repro.whatif import OverlayStudy, run_sweep

    study = Study(days=28, sites=1500)
    overlay = OverlayStudy(study, "nat64:DE")     # one counterfactual
    sweep = run_sweep(study, ["nat64:DE", "dualstack:Amazon+ispv6"])
    print(study.artifact("whatif").to_text())     # the default grid
"""

from repro.whatif.analysis import (
    SIGNALS,
    CountryRanking,
    ScenarioSummary,
    country_rankings,
    deltas_table,
    scenario_summaries,
    signal_movers,
)
from repro.whatif.overlay import OverlayStudy
from repro.whatif.spec import (
    INTERVENTION_TYPES,
    AcceleratedAdoption,
    DeployNAT64,
    DualStackProvider,
    EnableISPv6,
    HappyEyeballsTimerChange,
    Intervention,
    PolicyBlockCountry,
    Scenario,
    as_scenario,
    default_sweep_grid,
    parse_intervention,
    parse_scenario,
)
from repro.whatif.sweep import (
    DELTA_DTYPE,
    BaselineSignals,
    DeltaFrame,
    WhatifSweep,
    availability_by_country,
    census_full_share,
    compute_baseline_signals,
    run_sweep,
    scenario_block,
    sweep_grid,
)

__all__ = [
    "SIGNALS",
    "CountryRanking",
    "ScenarioSummary",
    "country_rankings",
    "deltas_table",
    "scenario_summaries",
    "signal_movers",
    "OverlayStudy",
    "INTERVENTION_TYPES",
    "AcceleratedAdoption",
    "DeployNAT64",
    "DualStackProvider",
    "EnableISPv6",
    "HappyEyeballsTimerChange",
    "Intervention",
    "PolicyBlockCountry",
    "Scenario",
    "as_scenario",
    "default_sweep_grid",
    "parse_intervention",
    "parse_scenario",
    "DELTA_DTYPE",
    "BaselineSignals",
    "DeltaFrame",
    "WhatifSweep",
    "availability_by_country",
    "census_full_share",
    "compute_baseline_signals",
    "run_sweep",
    "scenario_block",
    "sweep_grid",
]
