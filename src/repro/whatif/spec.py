"""Declarative intervention specs: the counterfactual vocabulary.

An :class:`Intervention` is a frozen, serializable description of one
acceleration lever from the deployment literature (an ISP turning on
IPv6, a cloud provider dual-stacking its services, a country deploying
NAT64, a policy firewall, an accelerated takeoff, a Happy Eyeballs
timer change).  Each intervention declares which session **layers** it
perturbs -- that declaration is what lets
:class:`repro.whatif.overlay.OverlayStudy` rebuild only the affected
universes and reuse the baseline's caches for everything else.

Interventions serialize to compact spec strings (``nat64:DE``,
``dualstack:Amazon``, ``hetimer:300``) and compose into
:class:`Scenario`\\ s with ``+`` (``nat64:DE+accelerate:2``), which is
the form the CLI (``--intervention``), ``StudyConfig.whatif_scenarios``,
and the cache keys all share; ``parse_scenario(s.spec()) == s`` round-
trips by construction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Iterable

from repro.happyeyeballs.algorithm import HappyEyeballsConfig
from repro.observatory.vantage import NetworkPolicy, VantagePoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observatory.rounds import ObservatoryConfig
    from repro.traffic.apps import ServiceProfile
    from repro.traffic.residences import ResidenceProfile
    from repro.web.ecosystem import WebEcosystem

#: The session layers an intervention may perturb.  ``census``
#: perturbation cascades into the derived layers (cloud, dependencies,
#: observatory) through the overlay's cache keys; it is not declared
#: separately.
PERTURBABLE_LAYERS = frozenset({"traffic", "census", "observatory"})


@dataclass(frozen=True)
class Intervention:
    """Base class: one composable counterfactual lever.

    Subclasses set ``KIND`` (the spec keyword) and ``LAYERS`` (which
    session layers rebuilding is required for), implement
    :meth:`parse` / :meth:`spec_arg`, and override the transform hooks
    for their layers.  All hooks are pure-by-convention: they either
    return a replacement object or mutate the one universe handed to
    them (``transform_ecosystem``), and they run identically in the
    parent process and in sweep workers.
    """

    KIND: ClassVar[str] = ""
    LAYERS: ClassVar[frozenset[str]] = frozenset()

    # -- serialization -----------------------------------------------------

    @classmethod
    def parse(cls, arg: str) -> "Intervention":
        """Build this intervention from the text after ``kind:``."""
        raise NotImplementedError

    def spec_arg(self) -> str:
        """The text after ``kind:`` (empty when the kind alone suffices)."""
        raise NotImplementedError

    def spec(self) -> str:
        """The canonical ``kind[:arg]`` spec string."""
        arg = self.spec_arg()
        return f"{self.KIND}:{arg}" if arg else self.KIND

    def describe(self) -> str:
        """One human-readable line for tables and logs."""
        return self.spec()

    # -- traffic layer hooks -----------------------------------------------

    def transform_profiles(
        self, profiles: "list[ResidenceProfile]"
    ) -> "list[ResidenceProfile]":
        return profiles

    def transform_catalog(
        self, catalog: "list[ServiceProfile]"
    ) -> "list[ServiceProfile]":
        return catalog

    def transform_he_config(
        self, config: HappyEyeballsConfig | None
    ) -> HappyEyeballsConfig | None:
        return config

    # -- census layer hook -------------------------------------------------

    def transform_ecosystem(self, ecosystem: "WebEcosystem") -> None:
        """Mutate the built (not yet crawled) web universe in place."""

    # -- observatory layer hooks -------------------------------------------

    def transform_fleet(
        self, fleet: tuple[VantagePoint, ...]
    ) -> tuple[VantagePoint, ...]:
        return fleet

    def transform_observatory_config(
        self, config: "ObservatoryConfig"
    ) -> "ObservatoryConfig":
        return config


def _known_residences() -> tuple[str, ...]:
    from repro.traffic.residences import build_paper_residences

    return tuple(p.name for p in build_paper_residences())


def _known_providers() -> tuple[str, ...]:
    from repro.cloud.providers import build_provider_catalog

    return tuple(p.name for p in build_provider_catalog())


def _known_countries() -> tuple[str, ...]:
    from repro.observatory.vantage import build_vantage_fleet

    seen: dict[str, None] = {}
    for vantage in build_vantage_fleet():
        seen.setdefault(vantage.country)
    return tuple(seen)


@dataclass(frozen=True)
class EnableISPv6(Intervention):
    """An ISP (or CPE fix) turns on working WAN IPv6 for residences.

    Every device of the selected residences becomes WAN-IPv6-capable
    (Residence C's broken fleet, E's console...), so Happy Eyeballs can
    actually race IPv6 -- the usage signal moves, availability and
    readiness do not.
    """

    KIND: ClassVar[str] = "ispv6"
    LAYERS: ClassVar[frozenset[str]] = frozenset({"traffic"})

    residences: tuple[str, ...] = ()  # empty = every residence

    def __post_init__(self) -> None:
        known = _known_residences()
        unknown = [name for name in self.residences if name not in known]
        if unknown:
            raise ValueError(
                f"unknown residences {unknown}; known: {', '.join(known)}"
            )
        # Canonical order (like StudyConfig.residences) so ispv6:C,A and
        # ispv6:A,C share one spec string -- and therefore one cache key.
        object.__setattr__(self, "residences", tuple(sorted(set(self.residences))))

    @classmethod
    def parse(cls, arg: str) -> "EnableISPv6":
        names = tuple(n for n in arg.split(",") if n) if arg else ()
        return cls(residences=names)

    def spec_arg(self) -> str:
        return ",".join(self.residences)

    def describe(self) -> str:
        who = ",".join(self.residences) or "every residence"
        return f"ISP enables IPv6 for {who}"

    def transform_profiles(self, profiles):
        wanted = set(self.residences) or {p.name for p in profiles}
        changed = []
        for profile in profiles:
            if profile.name not in wanted:
                changed.append(profile)
                continue
            specs = tuple(
                (kind, True, weight) for kind, _capable, weight in profile.device_specs
            )
            changed.append(
                dataclasses.replace(
                    profile, native_ipv6=True, device_specs=specs
                )
            )
        return changed


@dataclass(frozen=True)
class DualStackProvider(Intervention):
    """A cloud/CDN provider dual-stacks everything it hosts.

    Census side: every tenant subdomain placed on the provider's
    services gains an AAAA record (graded readiness moves).  Traffic
    side: the provider's services in the client catalog become fully
    dual-stack (usage moves).  The binary availability answer moves too
    wherever vantages can see the new records -- which is the point of
    contrasting the three signals.
    """

    KIND: ClassVar[str] = "dualstack"
    LAYERS: ClassVar[frozenset[str]] = frozenset({"traffic", "census"})

    provider: str = ""

    def __post_init__(self) -> None:
        known = _known_providers()
        if self.provider not in known:
            raise ValueError(
                f"unknown provider {self.provider!r}; known: {', '.join(known)}"
            )

    @classmethod
    def parse(cls, arg: str) -> "DualStackProvider":
        return cls(provider=arg)

    def spec_arg(self) -> str:
        return self.provider

    def describe(self) -> str:
        return f"{self.provider} dual-stacks all hosted services"

    def transform_catalog(self, catalog):
        needle = self.provider.lower()
        changed = []
        for service in catalog:
            matches = (
                needle in service.name.lower()
                or needle in service.as_name.lower()
                or needle in service.domain.lower()
            )
            changed.append(
                dataclasses.replace(service, ipv6_support=1.0)
                if matches
                else service
            )
        return changed

    def transform_ecosystem(self, ecosystem) -> None:
        ecosystem.enable_provider_aaaa(self.provider)


@dataclass(frozen=True)
class DeployNAT64(Intervention):
    """A country's access networks deploy DNS64/NAT64.

    Every vantage in the country becomes a NAT64 eyeball network: the
    resolver synthesizes AAAA from A, so the binary availability answer
    jumps (IPv4-only sites now "have IPv6") while graded readiness --
    the census ground truth -- does not move at all.
    """

    KIND: ClassVar[str] = "nat64"
    LAYERS: ClassVar[frozenset[str]] = frozenset({"observatory"})

    country: str = ""

    def __post_init__(self) -> None:
        known = _known_countries()
        if self.country not in known:
            raise ValueError(
                f"no vantage in country {self.country!r}; known: {', '.join(known)}"
            )

    @classmethod
    def parse(cls, arg: str) -> "DeployNAT64":
        return cls(country=arg)

    def spec_arg(self) -> str:
        return self.country

    def describe(self) -> str:
        return f"{self.country} deploys NAT64/DNS64"

    def transform_fleet(self, fleet):
        return tuple(
            dataclasses.replace(
                vantage,
                policy=NetworkPolicy.NAT64,
                aaaa_loss_rate=0.0,
                pmtu_blackhole_rate=0.0,
                block_rate=0.0,
            )
            if vantage.country == self.country
            else vantage
            for vantage in fleet
        )


@dataclass(frozen=True)
class PolicyBlockCountry(Intervention):
    """A country administratively blocks IPv6 to a share of targets."""

    KIND: ClassVar[str] = "block"
    LAYERS: ClassVar[frozenset[str]] = frozenset({"observatory"})

    country: str = ""
    block_rate: float = 1.0

    def __post_init__(self) -> None:
        known = _known_countries()
        if self.country not in known:
            raise ValueError(
                f"no vantage in country {self.country!r}; known: {', '.join(known)}"
            )
        if not 0.0 <= self.block_rate <= 1.0:
            raise ValueError("block_rate must be a probability")

    @classmethod
    def parse(cls, arg: str) -> "PolicyBlockCountry":
        country, sep, rate = arg.partition("@")
        return cls(
            country=country, block_rate=float(rate) if sep else 1.0
        )

    def spec_arg(self) -> str:
        if self.block_rate == 1.0:
            return self.country
        return f"{self.country}@{self.block_rate:g}"

    def describe(self) -> str:
        return f"{self.country} blocks v6 for {self.block_rate:.0%} of targets"

    def transform_fleet(self, fleet):
        return tuple(
            dataclasses.replace(
                vantage,
                policy=NetworkPolicy.POLICY_BLOCK,
                aaaa_loss_rate=0.0,
                pmtu_blackhole_rate=0.0,
                block_rate=self.block_rate,
            )
            if vantage.country == self.country
            else vantage
            for vantage in fleet
        )


@dataclass(frozen=True)
class AcceleratedAdoption(Intervention):
    """The takeoff happens faster: mid-window AAAA adoption multiplied.

    Scales :attr:`ObservatoryConfig.adoption_drift` (capped at 1.0), so
    more targets publish AAAA during the window and earlier -- the
    lever the acceleration literature attributes to a handful of large
    players moving at once.
    """

    KIND: ClassVar[str] = "accelerate"
    LAYERS: ClassVar[frozenset[str]] = frozenset({"observatory"})

    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")

    @classmethod
    def parse(cls, arg: str) -> "AcceleratedAdoption":
        return cls(multiplier=float(arg) if arg else 2.0)

    def spec_arg(self) -> str:
        return f"{self.multiplier:g}"

    def describe(self) -> str:
        return f"adoption takeoff x{self.multiplier:g}"

    def transform_observatory_config(self, config):
        return dataclasses.replace(
            config,
            adoption_drift=min(1.0, config.adoption_drift * self.multiplier),
        )


@dataclass(frozen=True)
class HappyEyeballsTimerChange(Intervention):
    """Client stacks ship different RFC 8305 timers.

    ``resolution_delay_ms`` is how long a client waits for a late AAAA
    before racing with IPv4 alone; raising it past the slow-AAAA tail
    recovers connections that today fall back to IPv4, moving the usage
    signal without touching availability or readiness.  Applies to the
    client traffic stacks only -- the observatory's prober keeps the
    RFC defaults, as real measurement fleets do.
    """

    KIND: ClassVar[str] = "hetimer"
    LAYERS: ClassVar[frozenset[str]] = frozenset({"traffic"})

    resolution_delay_ms: float = 250.0
    attempt_delay_ms: float | None = None

    def __post_init__(self) -> None:
        if self.resolution_delay_ms < 0:
            raise ValueError("resolution_delay_ms must be >= 0")
        if self.attempt_delay_ms is not None and self.attempt_delay_ms <= 0:
            raise ValueError("attempt_delay_ms must be positive")

    @classmethod
    def parse(cls, arg: str) -> "HappyEyeballsTimerChange":
        parts = arg.split(",") if arg else []
        resolution = float(parts[0]) if parts and parts[0] else 250.0
        attempt = float(parts[1]) if len(parts) > 1 and parts[1] else None
        return cls(resolution_delay_ms=resolution, attempt_delay_ms=attempt)

    def spec_arg(self) -> str:
        if self.attempt_delay_ms is None:
            return f"{self.resolution_delay_ms:g}"
        return f"{self.resolution_delay_ms:g},{self.attempt_delay_ms:g}"

    def describe(self) -> str:
        text = f"HE resolution delay {self.resolution_delay_ms:g} ms"
        if self.attempt_delay_ms is not None:
            text += f", attempt delay {self.attempt_delay_ms:g} ms"
        return text

    def transform_he_config(self, config):
        base = config or HappyEyeballsConfig()
        changes: dict[str, float] = {
            "resolution_delay": self.resolution_delay_ms / 1000.0
        }
        if self.attempt_delay_ms is not None:
            changes["attempt_delay"] = self.attempt_delay_ms / 1000.0
        return dataclasses.replace(base, **changes)


#: Spec keyword -> intervention class, the parse registry.
INTERVENTION_TYPES: dict[str, type[Intervention]] = {
    cls.KIND: cls
    for cls in (
        EnableISPv6,
        DualStackProvider,
        DeployNAT64,
        PolicyBlockCountry,
        AcceleratedAdoption,
        HappyEyeballsTimerChange,
    )
}


def parse_intervention(text: str) -> Intervention:
    """Parse one ``kind[:arg]`` spec string into an intervention."""
    kind, _, arg = text.strip().partition(":")
    cls = INTERVENTION_TYPES.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown intervention kind {kind!r}; known: "
            + ", ".join(sorted(INTERVENTION_TYPES))
        )
    try:
        return cls.parse(arg)
    except Exception as exc:  # malformed args, unknown names, bad numbers
        raise ValueError(f"bad intervention spec {text!r}: {exc}") from exc


@dataclass(frozen=True)
class Scenario:
    """One named counterfactual world: a composition of interventions.

    Interventions apply in declared order; the scenario's :meth:`spec`
    (``+``-joined intervention specs) is its identity everywhere --
    cache keys, DeltaFrame interning, CLI, JSON.
    """

    interventions: tuple[Intervention, ...]

    def __post_init__(self) -> None:
        if not self.interventions:
            raise ValueError("a scenario needs at least one intervention")
        object.__setattr__(self, "interventions", tuple(self.interventions))

    def spec(self) -> str:
        return "+".join(iv.spec() for iv in self.interventions)

    def describe(self) -> str:
        return "; ".join(iv.describe() for iv in self.interventions)

    def layers(self) -> frozenset[str]:
        """The union of perturbed layers, the overlay's rebuild set."""
        perturbed: frozenset[str] = frozenset()
        for intervention in self.interventions:
            perturbed |= intervention.LAYERS
        return perturbed


def parse_scenario(text: str) -> Scenario:
    """Parse a ``+``-joined spec string into a :class:`Scenario`."""
    parts = [part for part in text.split("+") if part.strip()]
    if not parts:
        raise ValueError("empty scenario spec")
    return Scenario(tuple(parse_intervention(part) for part in parts))


def as_scenario(value: "Scenario | Intervention | str | Iterable") -> Scenario:
    """Coerce a spec string / intervention / iterable into a Scenario."""
    if isinstance(value, Scenario):
        return value
    if isinstance(value, Intervention):
        return Scenario((value,))
    if isinstance(value, str):
        return parse_scenario(value)
    return Scenario(tuple(value))


def default_sweep_grid() -> tuple[Scenario, ...]:
    """The canonical grid: every lever once, plus two compositions.

    Used when a whatif artifact runs without explicit ``--intervention``
    scenarios, so ``python -m repro whatif`` works out of the box.
    """
    specs = (
        "ispv6",
        "dualstack:Amazon",
        "nat64:US",
        "block:US@0.6",
        "accelerate:3",
        "hetimer:300",
        "nat64:US+accelerate:3",
        "dualstack:Amazon+ispv6",
    )
    return tuple(parse_scenario(spec) for spec in specs)
