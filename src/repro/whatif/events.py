"""Sweep-by-events: rank interventions by the alarms they would raise.

The delta sweep (:mod:`repro.whatif.sweep`) asks "how far does each
intervention move the signals?"; this module asks the sentinel's
question instead: **which interventions would have triggered events?**
Each scenario's overlay world gets its own sentinel scan, and scenarios
are ranked by how many significant deviations their counterfactual
series produce -- an intervention that trips the detector changed the
world's dynamics, not just its endpoint.

Cache discipline matches the delta sweep exactly: every overlay runs
through :class:`~repro.whatif.overlay.OverlayStudy`, so unperturbed
layers are baseline cache *hits* and only the overlay's own sentinel
scan (plus the layers the scenario genuinely perturbs) builds --
``BUILD_COUNTS`` for baseline traffic/census/observatory stay flat
across a whole sweep, with overlay work accounted under
``whatif:<layer>``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.sentinel.config import SEVERITIES
from repro.sentinel.detect import SentinelEvent
from repro.whatif.overlay import OverlayStudy
from repro.whatif.spec import Intervention, Scenario, as_scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Study


def _event_key(event: SentinelEvent) -> tuple[int, str, str, str]:
    """Identity for cross-world comparison: where/what/which way."""
    return (event.day, event.signal, event.scope, event.direction)


@dataclass(frozen=True)
class ScenarioEvents:
    """One scenario's sentinel verdict.

    Attributes:
        scenario: canonical spec string (``"nat64:DE+accelerate:2"``).
        layers: the session layers the scenario perturbs, sorted.
        events_total: events the overlay world's scan emitted.
        by_severity: ``(severity, count)`` pairs in severity order.
        new_events: events absent from the baseline feed (same
            day/signal/scope/direction identity).
        resolved_events: baseline events the overlay world no longer
            triggers.
    """

    scenario: str
    layers: tuple[str, ...]
    events_total: int
    by_severity: tuple[tuple[str, int], ...]
    new_events: int
    resolved_events: int


@dataclass(frozen=True)
class EventSweep:
    """The ranked sweep: scenarios ordered by triggered-event count."""

    baseline_events: int
    baseline_points: int
    scenarios: tuple[ScenarioEvents, ...]


def run_event_sweep(
    study: "Study",
    scenarios: Iterable[Scenario | Intervention | str] | None = None,
) -> EventSweep:
    """Re-run the sentinel per overlay scenario and rank the results.

    Scenarios default to the study's whatif grid
    (``config.whatif_scenarios``, or the default grid).  The loop runs
    sequentially and each iteration is one overlay scan over cached
    universes, so the sweep is deterministic and the ranking is a pure
    function of the seed and the grid.
    """
    if study._prebuilt:
        raise ValueError(
            "event sweeps need a config-cached baseline; prebuilt studies "
            "bypass the process caches the overlays share"
        )
    if scenarios is None:
        specs = study._whatif_scenario_specs()
    else:
        specs = tuple(as_scenario(scenario).spec() for scenario in scenarios)
    baseline = study.sentinel
    baseline_keys = {_event_key(event) for event in baseline.events}
    results: list[ScenarioEvents] = []
    for spec in specs:
        overlay = OverlayStudy(study, spec)
        feed = overlay.sentinel
        keys = {_event_key(event) for event in feed.events}
        severity_counts = Counter(event.severity for event in feed.events)
        results.append(
            ScenarioEvents(
                scenario=spec,
                layers=tuple(sorted(overlay.perturbed)),
                events_total=len(feed.events),
                by_severity=tuple(
                    (severity, severity_counts.get(severity, 0))
                    for severity in SEVERITIES
                ),
                new_events=len(keys - baseline_keys),
                resolved_events=len(baseline_keys - keys),
            )
        )
    results.sort(
        key=lambda entry: (-entry.events_total, -entry.new_events, entry.scenario)
    )
    return EventSweep(
        baseline_events=len(baseline.events),
        baseline_points=baseline.points,
        scenarios=tuple(results),
    )
