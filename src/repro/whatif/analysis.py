"""Sweep aggregations: which lever moves which signal, where.

Everything works on the :class:`~repro.whatif.sweep.DeltaFrame`'s
integer codes in the columnar idiom of :mod:`repro.core.client` and
:mod:`repro.observatory.analysis`: scenario-major reductions for the
per-scenario summaries, country-major argmax scans for the rankings.

The headline fact these surface is the paper's thesis run forward: the
three signals respond to *different* interventions.  NAT64 moves the
binary availability answer without touching readiness; a provider
dual-stacking moves readiness and usage; a Happy Eyeballs timer change
moves usage alone.  A binary metric cannot even express the difference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.whatif.sweep import DeltaFrame, WhatifSweep

#: The three signal axes, in reporting order.
SIGNALS = ("availability", "readiness", "usage")


@dataclass(frozen=True)
class ScenarioSummary:
    """One scenario's sweep row: how far each signal moved."""

    scenario: str
    description: str
    layers: tuple[str, ...]
    #: Mean availability delta across countries, and the single most
    #: moved country (availability is the only per-country signal).
    d_availability_mean: float
    d_availability_max: float
    d_availability_max_country: str
    d_readiness: float
    d_usage: float


def scenario_summaries(sweep: WhatifSweep) -> list[ScenarioSummary]:
    """Per-scenario aggregate deltas, in grid order."""
    frame = sweep.frame
    n_countries = len(frame.countries)
    rows: list[ScenarioSummary] = []
    for index, scenario in enumerate(sweep.scenarios):
        view = frame.data[frame.scenario == index]
        d_avail = view["d_availability"]
        top = int(np.argmax(np.abs(d_avail))) if view.size else 0
        rows.append(
            ScenarioSummary(
                scenario=scenario.spec(),
                description=scenario.describe(),
                layers=tuple(sorted(scenario.layers())),
                d_availability_mean=float(d_avail.mean()) if view.size else 0.0,
                d_availability_max=float(d_avail[top]) if view.size else 0.0,
                d_availability_max_country=(
                    frame.countries[int(view["country"][top])]
                    if view.size
                    else ""
                ),
                d_readiness=float(view["d_readiness"][0]) if view.size else 0.0,
                d_usage=float(view["d_usage"][0]) if view.size else 0.0,
            )
        )
        if view.size != n_countries:  # pragma: no cover - scenario_block guards
            raise ValueError(
                f"scenario {scenario.spec()!r} carries {view.size} rows, "
                f"expected one per country ({n_countries})"
            )
    return rows


def _top_mover(
    scenario_codes: np.ndarray, deltas: np.ndarray, scenarios: tuple[str, ...]
) -> tuple[str, float]:
    """The scenario with the largest absolute delta, or ``("", 0.0)``
    when nothing moved the signal at all -- naming an arbitrary
    scenario as the "strongest mover" of an untouched signal would be
    exactly the confusion these tables exist to dispel."""
    if not deltas.size:
        return "", 0.0
    top = int(np.argmax(np.abs(deltas)))
    if deltas[top] == 0.0:
        return "", 0.0
    return scenarios[int(scenario_codes[top])], float(deltas[top])


@dataclass(frozen=True)
class CountryRanking:
    """One country's row: the strongest mover per signal.

    ``*_delta`` keeps the mover's sign (a block intervention "wins" the
    availability column with a negative delta); movers are selected by
    absolute effect.  A signal nothing moved reports an empty scenario
    and a zero delta.
    """

    country: str
    availability_scenario: str
    availability_delta: float
    readiness_scenario: str
    readiness_delta: float
    usage_scenario: str
    usage_delta: float


def country_rankings(sweep: WhatifSweep) -> list[CountryRanking]:
    """Per country: which scenario moves each signal most.

    Availability is genuinely per-country (a NAT64 deployment in DE
    moves DE and nothing else); readiness and usage are global truths,
    so their top mover is the same in every row -- the asymmetry the
    table is meant to show.
    """
    frame = sweep.frame
    rankings: list[CountryRanking] = []
    for country_index, country in enumerate(frame.countries):
        view = frame.data[frame.country == country_index]
        winners: dict[str, tuple[str, float]] = {}
        for signal in SIGNALS:
            winners[signal] = _top_mover(
                view["scenario"], view[f"d_{signal}"], frame.scenarios
            )
        rankings.append(
            CountryRanking(
                country=country,
                availability_scenario=winners["availability"][0],
                availability_delta=winners["availability"][1],
                readiness_scenario=winners["readiness"][0],
                readiness_delta=winners["readiness"][1],
                usage_scenario=winners["usage"][0],
                usage_delta=winners["usage"][1],
            )
        )
    return rankings


def signal_movers(sweep: WhatifSweep) -> dict[str, tuple[str, float]]:
    """Sweep-wide: the single strongest scenario per signal.

    Availability is judged by the largest absolute per-country delta
    (country effects are the whole point); readiness and usage by their
    global deltas.  Signals nothing in the grid moved report ``("",
    0.0)``.
    """
    frame = sweep.frame
    return {
        signal: _top_mover(
            frame.data["scenario"], frame.data[f"d_{signal}"], frame.scenarios
        )
        for signal in SIGNALS
    }


def deltas_table(frame: DeltaFrame) -> list[dict[str, float | str]]:
    """The scenario x country delta rows as plain dicts (JSON-ready)."""
    rows: list[dict[str, float | str]] = []
    # replint: allow[REP006] renders every scenario x country row: O(output), not a group-by
    for row in frame.data:
        rows.append(
            {
                "scenario": frame.scenarios[int(row["scenario"])],
                "country": frame.countries[int(row["country"])],
                "base_availability": float(row["base_availability"]),
                "availability": float(row["availability"]),
                "d_availability": float(row["d_availability"]),
                "base_readiness": float(row["base_readiness"]),
                "readiness": float(row["readiness"]),
                "d_readiness": float(row["d_readiness"]),
                "base_usage": float(row["base_usage"]),
                "usage": float(row["usage"]),
                "d_usage": float(row["d_usage"]),
            }
        )
    return rows
