"""The sweep runner: intervention grids fanned into a DeltaFrame.

A sweep runs every scenario of a grid as an
:class:`~repro.whatif.overlay.OverlayStudy` against one baseline and
encodes, per scenario and country, the three signals the paper refuses
to collapse -- **availability** (the observatory's binary final-round
answer), **readiness** (the census's IPv6-full share of the probed
sites), **usage** (the traffic study's external IPv6 byte fraction) --
as baseline/overlay/delta triples in a columnar :class:`DeltaFrame`
(NumPy structured array with interned scenario/country tables, the
``FlowFrame``/``ProbeFrame`` idiom).

Scenarios fan out over :mod:`repro.util.procpool` like residences and
vantage points do.  Workers receive the baseline universes **once per
worker** through the pool initializer and seed their process caches
with them (:func:`repro.api.session.prime_caches`), so a parallel
sweep, like a sequential one, rebuilds only the layers each scenario
perturbs.  Every signal is a deterministic function of (config,
scenario) and blocks are reassembled in grid order, so the parallel
and sequential paths are bit-identical.

A worker never *touches* a baseline layer the scenario leaves alone:
unperturbed readiness and usage come from the parent's
:class:`BaselineSignals` snapshot, which is why the traffic study --
by far the largest universe -- is never pickled at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.api.session import Study, StudyConfig, prime_caches
from repro.util.procpool import map_in_pool, resolve_worker_count
from repro.whatif.overlay import OverlayStudy
from repro.whatif.spec import Scenario, as_scenario, default_sweep_grid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crawler.records import CrawlDataset
    from repro.observatory.rounds import ObservatoryStudy

#: The columnar delta layout: one row per (scenario, country), each
#: signal as a (baseline, overlay, delta) triple.
DELTA_DTYPE = np.dtype(
    [
        ("scenario", np.int16),
        ("country", np.int16),
        ("base_availability", np.float64),
        ("availability", np.float64),
        ("d_availability", np.float64),
        ("base_readiness", np.float64),
        ("readiness", np.float64),
        ("d_readiness", np.float64),
        ("base_usage", np.float64),
        ("usage", np.float64),
        ("d_usage", np.float64),
    ]
)


@dataclass
class DeltaFrame:
    """All scenario deltas of one sweep, as parallel columns.

    Attributes:
        data: the structured array (:data:`DELTA_DTYPE`), one row per
            (scenario, country), scenario-major in grid order.
        scenarios: interned scenario spec strings, in grid order.
        countries: interned country codes, in fleet first-appearance
            order (matching the baseline observatory's interning).
    """

    data: np.ndarray
    scenarios: tuple[str, ...] = ()
    countries: tuple[str, ...] = ()

    @classmethod
    def assemble(
        cls,
        scenarios: tuple[str, ...],
        countries: tuple[str, ...],
        blocks: Iterable[np.ndarray],
    ) -> "DeltaFrame":
        parts = list(blocks)
        data = np.concatenate(parts) if parts else np.empty(0, dtype=DELTA_DTYPE)
        return cls(data=data, scenarios=scenarios, countries=countries)

    def __len__(self) -> int:
        return int(self.data.size)

    @property
    def scenario(self) -> np.ndarray:
        return self.data["scenario"]

    @property
    def country(self) -> np.ndarray:
        return self.data["country"]

    @property
    def d_availability(self) -> np.ndarray:
        return self.data["d_availability"]

    @property
    def d_readiness(self) -> np.ndarray:
        return self.data["d_readiness"]

    @property
    def d_usage(self) -> np.ndarray:
        return self.data["d_usage"]

    def select(
        self, scenario: str | None = None, country: str | None = None
    ) -> "DeltaFrame":
        """A filtered view sharing this frame's interning tables."""
        mask = np.ones(self.data.size, dtype=bool)
        if scenario is not None:
            mask &= self.data["scenario"] == self.scenarios.index(scenario)
        if country is not None:
            mask &= self.data["country"] == self.countries.index(country)
        return DeltaFrame(
            data=self.data[mask],
            scenarios=self.scenarios,
            countries=self.countries,
        )


@dataclass(frozen=True)
class BaselineSignals:
    """The baseline world's three signals, snapshotted once per sweep.

    ``availability`` is per country (final probe round); ``readiness``
    and ``usage`` are the global census/traffic truths every country
    row shares (exactly as in the ``contrast`` artifact).
    """

    countries: tuple[str, ...]
    availability: tuple[float, ...]
    readiness: float
    usage: float


@dataclass
class WhatifSweep:
    """One finished sweep: the grid, the deltas, and the baseline."""

    scenarios: tuple[Scenario, ...]
    frame: DeltaFrame
    baseline: BaselineSignals

    @property
    def num_scenarios(self) -> int:
        return len(self.scenarios)

    def scenario_by_spec(self, spec: str) -> Scenario:
        for scenario in self.scenarios:
            if scenario.spec() == spec:
                return scenario
        raise KeyError(f"no scenario {spec!r} in this sweep")


# -- signal extraction -------------------------------------------------------


def availability_by_country(obs: "ObservatoryStudy") -> np.ndarray:
    """Final-round per-country available share, aligned to ``obs.countries``.

    Delegates to :func:`repro.observatory.analysis.
    final_round_availability` -- the *same* definition the ``contrast``
    artifact renders, so a baseline row and its overlay delta can never
    disagree about what "availability" means.
    """
    from repro.observatory.analysis import final_round_availability

    return final_round_availability(obs)


def census_full_share(dataset: "CrawlDataset", probed: set[str]) -> float:
    """IPv6-full share among the probed, classified census sites.

    The readiness signal of the deltas: the ``contrast`` artifact's
    "graded: full" column (shared definition).
    """
    from repro.observatory.analysis import census_readiness_shares

    return census_readiness_shares(dataset, probed)[0]


def compute_baseline_signals(study: Study) -> BaselineSignals:
    """Snapshot the baseline's three signals (builds its layers)."""
    from repro.observatory.analysis import traffic_v6_byte_fraction

    obs = study.observatory
    probed = {target.etld1 for target in obs.targets}
    return BaselineSignals(
        countries=obs.countries,
        availability=tuple(float(v) for v in availability_by_country(obs)),
        readiness=census_full_share(study.census.dataset, probed),
        usage=traffic_v6_byte_fraction(study.traffic),
    )


def scenario_block(
    config: StudyConfig,
    scenario_index: int,
    scenario: Scenario,
    baseline: BaselineSignals,
) -> np.ndarray:
    """One scenario's DeltaFrame rows (runs the overlay).

    Touches only the layers the scenario perturbs: unperturbed
    readiness and usage are copied from the baseline snapshot rather
    than read through the (possibly absent) baseline universes, so the
    same code runs in the parent and in initializer-primed workers.
    """
    from repro.observatory.analysis import traffic_v6_byte_fraction

    overlay = OverlayStudy(config, scenario)
    obs = overlay.observatory
    if obs.countries != baseline.countries:  # pragma: no cover - guarded by spec
        raise ValueError(
            f"scenario {scenario.spec()!r} changed the fleet's countries: "
            f"{obs.countries} != {baseline.countries}"
        )
    availability = availability_by_country(obs)
    if "census" in overlay.perturbed:
        probed = {target.etld1 for target in obs.targets}
        readiness = census_full_share(overlay.census.dataset, probed)
    else:
        readiness = baseline.readiness
    if "traffic" in overlay.perturbed:
        usage = traffic_v6_byte_fraction(overlay.traffic)
    else:
        usage = baseline.usage

    n = len(baseline.countries)
    block = np.empty(n, dtype=DELTA_DTYPE)
    block["scenario"] = scenario_index
    block["country"] = np.arange(n, dtype=np.int16)
    block["base_availability"] = baseline.availability
    block["availability"] = availability
    block["d_availability"] = availability - np.asarray(baseline.availability)
    block["base_readiness"] = baseline.readiness
    block["readiness"] = readiness
    block["d_readiness"] = readiness - baseline.readiness
    block["base_usage"] = baseline.usage
    block["usage"] = usage
    block["d_usage"] = usage - baseline.usage
    return block


# -- the parallel fan-out ----------------------------------------------------

#: What every sweep worker receives once (pool initializer): the
#: baseline config, the cache entries to prime (census + observatory;
#: never the traffic study), and the baseline signal snapshot.
_SweepUniverse = tuple[StudyConfig, dict, BaselineSignals]

_WORKER_UNIVERSE: _SweepUniverse | None = None


def _init_sweep_worker(universe: _SweepUniverse) -> None:
    """Pool initializer: prime this worker's caches with the baseline."""
    global _WORKER_UNIVERSE
    _WORKER_UNIVERSE = universe
    prime_caches(universe[1])


def _sweep_scenario_in_worker(task: tuple[int, str]) -> np.ndarray:
    """Worker entry: run one scenario against the primed baseline."""
    from repro.whatif.spec import parse_scenario

    assert _WORKER_UNIVERSE is not None, "pool initializer did not run"
    config, _entries, baseline = _WORKER_UNIVERSE
    index, spec = task
    # One scenario per worker already saturates the pool; nested pools
    # inside overlay rebuilds would only thrash.  ``parallel`` does not
    # key the caches, so the primed entries still match.
    config = config.replace(parallel=False)
    return scenario_block(config, index, parse_scenario(spec), baseline)


def run_sweep(
    baseline: Study | StudyConfig,
    scenarios: Sequence[Scenario | str] | None = None,
    parallel: bool | int | None = None,
) -> WhatifSweep:
    """Run an intervention grid and assemble the :class:`DeltaFrame`.

    Args:
        baseline: the world every scenario forks from (a bare config
            builds a fresh baseline study first).
        scenarios: the grid; ``None`` runs
            :func:`~repro.whatif.spec.default_sweep_grid`.
        parallel: scenario fan-out across worker processes, with the
            usual contract (``None`` auto-detects, ``False`` forces
            sequential, results bit-identical either way).
    """
    study = baseline if isinstance(baseline, Study) else Study(baseline)
    if study._prebuilt:
        # Same contract as OverlayStudy: a prebuilt study's universes
        # never entered the process caches, so overlays built from its
        # *config* would fork a different world than the one the
        # baseline signals were snapshotted from.
        raise ValueError(
            "run_sweep needs a config-cached baseline; prebuilt studies "
            "bypass the process caches the overlays share"
        )
    grid = tuple(
        as_scenario(s) for s in (scenarios if scenarios is not None else default_sweep_grid())
    )
    if not grid:
        raise ValueError("a sweep needs at least one scenario")

    signals = compute_baseline_signals(study)
    config = study.config

    tasks = [(index, scenario.spec()) for index, scenario in enumerate(grid)]
    workers = resolve_worker_count(parallel, len(tasks))
    blocks: list[np.ndarray] | None = None
    if workers > 1:
        entries = {
            "census": {study._census_key(): study.census},
            "observatory": {study._observatory_key(): study.observatory},
        }
        blocks = map_in_pool(
            _sweep_scenario_in_worker,
            tasks,
            workers,
            "whatif sweep",
            initializer=_init_sweep_worker,
            initargs=((config, entries, signals),),
        )
    if blocks is None:
        blocks = [
            scenario_block(config, index, scenario, signals)
            for index, scenario in enumerate(grid)
        ]

    frame = DeltaFrame.assemble(
        tuple(scenario.spec() for scenario in grid),
        signals.countries,
        blocks,
    )
    return WhatifSweep(scenarios=grid, frame=frame, baseline=signals)


def sweep_grid(
    base: Sequence[Scenario | str], pairs: bool = True
) -> tuple[Scenario, ...]:
    """Expand base interventions into a combination grid.

    Every base scenario runs alone; with ``pairs`` (the default), every
    unordered pair of *distinct* base scenarios also runs as one
    composed scenario (interventions concatenated in grid order) --
    ``--sweep`` on the CLI.
    """
    singles = tuple(as_scenario(s) for s in base)
    if not singles:
        raise ValueError("sweep_grid needs at least one base scenario")
    grid: list[Scenario] = list(singles)
    seen = {scenario.spec() for scenario in grid}
    if pairs:
        for i, first in enumerate(singles):
            for second in singles[i + 1:]:
                combo = Scenario(first.interventions + second.interventions)
                if combo.spec() not in seen:
                    seen.add(combo.spec())
                    grid.append(combo)
    return tuple(grid)
