"""OverlayStudy: a Study forked into a counterfactual world.

An overlay is a full :class:`~repro.api.session.Study` whose universes
differ from a baseline's only where a :class:`~repro.whatif.spec.
Scenario`'s interventions say they must.  The mechanics ride the
session's layer-key/builder methods:

* for every layer the scenario **perturbs**, the overlay extends the
  baseline cache key with the scenario's canonical spec and swaps in a
  builder that applies the interventions' transforms (a mutated web
  universe, a policy-transformed vantage fleet, a patched service
  catalog / residence fleet / Happy Eyeballs config);
* for every **untouched** layer, keys and builders are inherited
  verbatim, so the overlay is a cache *hit* against the baseline --
  a sweep of twenty scenarios rebuilds zero censuses it didn't change.

Derived layers cascade through key composition: the cloud, dependency,
and observatory keys are all functions of ``_census_key()``, so a
census perturbation re-derives them against the counterfactual crawl
without any explicit wiring.

Overlay rebuilds count under ``whatif:<layer>`` in ``BUILD_COUNTS``
(never under the baseline layer names), which is what the cache-reuse
accounting tests assert on.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.api.session import Study, StudyConfig
from repro.datasets.scenarios import (
    CensusStudy,
    ResidenceStudy,
    build_census,
    build_residence_study,
)
from repro.whatif.spec import Intervention, Scenario, as_scenario


class OverlayStudy(Study):
    """A lazy, memoized session over one counterfactual scenario.

    Args:
        baseline: the study (or bare config) the counterfactual forks
            from.  Prebuilt studies (``Study.from_prebuilt``) are
            rejected: their universes never entered the process caches,
            so there is nothing for the overlay's untouched layers to
            share.
        scenario: a :class:`Scenario`, single intervention, spec string
            (``"nat64:DE+accelerate:2"``), or iterable of interventions.
    """

    def __init__(
        self,
        baseline: Study | StudyConfig,
        scenario: Scenario | Intervention | str,
        *,
        log: Callable[[str], None] | None = None,
    ) -> None:
        if isinstance(baseline, Study):
            if baseline._prebuilt:
                raise ValueError(
                    "OverlayStudy needs a config-cached baseline; prebuilt "
                    "studies bypass the process caches the overlay shares"
                )
            config = baseline.config
        else:
            config = baseline
        # Overlays fork one world; they do not themselves carry a sweep.
        super().__init__(config.replace(whatif_scenarios=None), log=log)
        self.scenario = as_scenario(scenario)
        #: Which layers this overlay rebuilds; everything else is a
        #: baseline cache hit.  ``census`` perturbation implicitly
        #: re-derives cloud/dependencies/observatory via key cascade.
        self.perturbed: frozenset[str] = self.scenario.layers()
        self._sig = ("whatif", self.scenario.spec())

    # -- key extension -----------------------------------------------------

    def _count_key(self, layer: str) -> str:
        """Overlay rebuilds count as ``whatif:<layer>``; a *missing
        baseline* layer an overlay builds lazily (unperturbed key, so
        the entry is shared with the baseline) still counts under the
        plain layer name.  Derived layers follow the census cascade."""
        perturbs = {
            "traffic": "traffic" in self.perturbed,
            "census": "census" in self.perturbed,
            "cloud": "census" in self.perturbed,
            "dependencies": "census" in self.perturbed,
            "observatory": (
                "observatory" in self.perturbed or "census" in self.perturbed
            ),
        }
        return f"whatif:{layer}" if perturbs.get(layer, True) else layer

    def _traffic_key(self) -> tuple:
        key = super()._traffic_key()
        return key + self._sig if "traffic" in self.perturbed else key

    def _census_key(self) -> tuple:
        key = super()._census_key()
        return key + self._sig if "census" in self.perturbed else key

    def _observatory_key(self) -> tuple:
        # Already includes _census_key(), so a census perturbation
        # cascades even when the fleet itself is untouched.
        key = super()._observatory_key()
        return key + self._sig if "observatory" in self.perturbed else key

    # -- perturbed builders ------------------------------------------------

    def _build_traffic(self) -> ResidenceStudy:
        from repro.traffic.apps import build_service_catalog
        from repro.traffic.residences import build_paper_residences

        catalog: list[Any] = build_service_catalog()
        profiles: list[Any] = build_paper_residences()
        he_config = None
        for intervention in self.scenario.interventions:
            catalog = intervention.transform_catalog(catalog)
            profiles = intervention.transform_profiles(profiles)
            he_config = intervention.transform_he_config(he_config)
        return build_residence_study(
            num_days=self.config.days,
            seed=self.config.seed,
            residences=self.config.residences,
            parallel=self.config.parallel,
            catalog=catalog,
            profiles=profiles,
            he_config=he_config,
        )

    def _build_census(self) -> CensusStudy:
        def mutate(ecosystem) -> None:
            for intervention in self.scenario.interventions:
                intervention.transform_ecosystem(ecosystem)

        return build_census(
            num_sites=self.config.sites,
            seed=self.config.seed,
            link_clicks=self.config.link_clicks,
            mutate=mutate,
        )

    def _build_observatory(self, census: CensusStudy):
        from repro.observatory.rounds import ObservatoryConfig, run_observatory
        from repro.observatory.vantage import build_vantage_fleet

        fleet = build_vantage_fleet()
        obs_config = ObservatoryConfig(
            num_days=self.config.days,
            probe_interval_days=self.config.probe_interval_days,
            max_targets=self.config.probe_targets,
            seed=self.config.seed,
            parallel=self.config.parallel,
        )
        for intervention in self.scenario.interventions:
            fleet = intervention.transform_fleet(fleet)
            obs_config = intervention.transform_observatory_config(obs_config)
        return run_observatory(census.ecosystem, obs_config, fleet=fleet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OverlayStudy({self.scenario.spec()!r}, "
            f"perturbs={sorted(self.perturbed)}, config={self.config!r})"
        )
