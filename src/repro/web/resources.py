"""Third-party resources: types, categories, and the shared service pool.

Section 4.3 of the paper characterizes the IPv4-only resources that hold
IPv6-partial websites back: by VirusTotal category (Figure 9: ads dominate,
then information technology, trackers, content delivery, analytics) and by
resource type (Figure 18: images, then xmlhttprequest, sub_frame, script).

:class:`ThirdPartyPool` generates a service population with the *span*
distribution the paper measures (Figure 8): a head of very popular services
appearing on thousands of sites and a long tail used by one or two, with
IPv6 adoption varying by category (advertising lags).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.util.rng import RngStream


class ResourceType(enum.Enum):
    """Browser resource types, as in the paper's Figure 18."""

    IMAGE = "image"
    XHR = "xmlhttprequest"
    SUB_FRAME = "sub_frame"
    SCRIPT = "script"
    BEACON = "beacon"
    MEDIA = "media"
    FONT = "font"
    STYLESHEET = "stylesheet"


class ResourceCategory(enum.Enum):
    """VirusTotal-style domain categories, as in the paper's Figure 9."""

    ADS = "ads"
    INFORMATION_TECHNOLOGY = "information technology"
    TRACKERS = "trackers"
    CONTENT_DELIVERY = "content delivery"
    ANALYTICS = "analytics"


#: Category mix of the third-party pool (ads nearly half, Figure 9).
CATEGORY_WEIGHTS: dict[ResourceCategory, float] = {
    ResourceCategory.ADS: 0.44,
    ResourceCategory.INFORMATION_TECHNOLOGY: 0.22,
    ResourceCategory.TRACKERS: 0.15,
    ResourceCategory.CONTENT_DELIVERY: 0.11,
    ResourceCategory.ANALYTICS: 0.08,
}

#: Probability a service of each category supports IPv6.  Advertising and
#: tracking lag (they are the paper's heavy-hitter IPv4-only domains);
#: CDNs mostly lead.
CATEGORY_IPV6_RATE: dict[ResourceCategory, float] = {
    ResourceCategory.ADS: 0.68,
    ResourceCategory.INFORMATION_TECHNOLOGY: 0.84,
    ResourceCategory.TRACKERS: 0.76,
    ResourceCategory.CONTENT_DELIVERY: 0.92,
    ResourceCategory.ANALYTICS: 0.80,
}

#: Resource types each category serves, weighted (Figure 18's columns).
CATEGORY_RESOURCE_TYPES: dict[ResourceCategory, dict[ResourceType, float]] = {
    ResourceCategory.ADS: {
        ResourceType.IMAGE: 4.0, ResourceType.XHR: 2.5,
        ResourceType.SUB_FRAME: 2.5, ResourceType.SCRIPT: 2.0,
        ResourceType.BEACON: 0.5,
    },
    ResourceCategory.INFORMATION_TECHNOLOGY: {
        ResourceType.SCRIPT: 3.0, ResourceType.IMAGE: 2.0,
        ResourceType.STYLESHEET: 1.5, ResourceType.XHR: 1.5,
        ResourceType.FONT: 1.0,
    },
    ResourceCategory.TRACKERS: {
        ResourceType.BEACON: 3.0, ResourceType.IMAGE: 3.0,
        ResourceType.SCRIPT: 2.0, ResourceType.XHR: 2.0,
    },
    ResourceCategory.CONTENT_DELIVERY: {
        ResourceType.IMAGE: 3.0, ResourceType.SCRIPT: 2.0,
        ResourceType.MEDIA: 2.0, ResourceType.FONT: 1.5,
        ResourceType.STYLESHEET: 1.5,
    },
    ResourceCategory.ANALYTICS: {
        ResourceType.SCRIPT: 3.0, ResourceType.XHR: 2.5,
        ResourceType.BEACON: 2.0, ResourceType.IMAGE: 1.0,
    },
}


@dataclass(frozen=True)
class ThirdPartyService:
    """One third-party provider (ad network, tracker, CDN, ...).

    Attributes:
        domain: the service's eTLD+1 (its resources live on subdomains).
        category: VirusTotal-style category.
        popularity: relative draw weight -- the head/tail shape of this
            weight across the pool produces the span distribution.
        nested_dependencies: other third-party domains this service pulls
            in when loaded (ad networks syndicating other ad networks);
            drives the paper's arbitrary-depth resolution.
    """

    domain: str
    category: ResourceCategory
    popularity: float
    nested_dependencies: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.popularity <= 0:
            raise ValueError("popularity must be positive")

    def draw_resource_type(self, rng: RngStream) -> ResourceType:
        weights = CATEGORY_RESOURCE_TYPES[self.category]
        return rng.weighted_choice(list(weights), list(weights.values()))


class ThirdPartyPool:
    """The shared pool of third-party services sites embed.

    Head services follow a Zipf popularity law (a doubleclick-like ad
    network lands on thousands of sites); tail services have tiny uniform
    popularity, so most appear on one or two sites -- matching Figure 8's
    span CDF (p75 <= 2, p95 ~= 20, max > 1000).
    """

    def __init__(
        self,
        num_head: int,
        num_tail: int,
        rng: RngStream,
        zipf_alpha: float = 1.05,
        nested_dependency_prob: float = 0.25,
        tail_popularity: float = 4e-4,
    ) -> None:
        if num_head < 1 or num_tail < 0:
            raise ValueError("pool needs at least one head service")
        if tail_popularity <= 0:
            raise ValueError("tail_popularity must be positive")
        self._rng = rng
        self.num_head = num_head
        self.num_tail = num_tail
        categories = list(CATEGORY_WEIGHTS)
        cat_weights = list(CATEGORY_WEIGHTS.values())
        self.services: list[ThirdPartyService] = []
        for i in range(num_head):
            category = rng.weighted_choice(categories, cat_weights)
            slug = category.name.lower().replace("_", "-")
            self.services.append(
                ThirdPartyService(
                    # Each service is its own eTLD+1 (span analysis unit).
                    domain=f"{slug}-{i}-svc.com",
                    category=category,
                    popularity=(i + 1.0) ** (-zipf_alpha),
                )
            )
        for i in range(num_tail):
            category = rng.weighted_choice(categories, cat_weights)
            slug = category.name.lower().replace("_", "-")
            self.services.append(
                ThirdPartyService(
                    domain=f"tail-{slug}-{i}-svc.net",
                    category=category,
                    popularity=tail_popularity,
                )
            )
        # Wire nested dependencies among head services: a head service may
        # syndicate 1-2 other head services (ad-network chains).
        by_domain = {s.domain: s for s in self.services}
        head = self.services[:num_head]
        for index, service in enumerate(head):
            if not rng.bernoulli(nested_dependency_prob):
                continue
            count = rng.randint(1, 2)
            targets = tuple(
                t.domain
                for t in rng.sample(head, count + 1)
                if t.domain != service.domain
            )[:count]
            if targets:
                by_domain[service.domain] = ThirdPartyService(
                    domain=service.domain,
                    category=service.category,
                    popularity=service.popularity,
                    nested_dependencies=targets,
                )
        self.services = [by_domain[s.domain] for s in self.services]
        self._by_domain = {s.domain: s for s in self.services}
        # Precompute popularity CDFs (per category filter): draw() runs
        # hundreds of thousands of times per census.
        self._samplers: dict[
            frozenset[ResourceCategory] | None,
            tuple[list[ThirdPartyService], np.ndarray],
        ] = {}
        self._sampler_for(None)

    def _sampler_for(
        self, categories: frozenset[ResourceCategory] | None
    ) -> tuple[list[ThirdPartyService], np.ndarray]:
        cached = self._samplers.get(categories)
        if cached is not None:
            return cached
        if categories is None:
            eligible = self.services
        else:
            eligible = [s for s in self.services if s.category in categories]
        if not eligible:
            raise ValueError(f"no services in categories {categories}")
        weights = np.asarray([s.popularity for s in eligible], dtype=float)
        sampler = (eligible, np.cumsum(weights))
        self._samplers[categories] = sampler
        return sampler

    def get(self, domain: str) -> ThirdPartyService:
        return self._by_domain[domain]

    def __contains__(self, domain: str) -> bool:
        return domain in self._by_domain

    def __len__(self) -> int:
        return len(self.services)

    def draw(
        self, categories: frozenset[ResourceCategory] | None = None
    ) -> ThirdPartyService:
        """Draw one service by popularity (inverse-CDF sampling),
        optionally restricted to the given categories."""
        eligible, cumulative = self._sampler_for(categories)
        u = self._rng.random() * float(cumulative[-1])
        index = int(np.searchsorted(cumulative, u, side="right"))
        index = min(index, len(eligible) - 1)
        return eligible[index]

    def draw_embeds(
        self,
        mean_count: float,
        categories: frozenset[ResourceCategory] | None = None,
    ) -> list[ThirdPartyService]:
        """The distinct third-party services one site embeds."""
        count = self._rng.poisson(mean_count)
        seen: dict[str, ThirdPartyService] = {}
        for _ in range(count):
            service = self.draw(categories)
            seen[service.domain] = service
        return list(seen.values())
