"""A Tranco-style popularity-ranked top list.

The paper crawls the Tranco top-100k (section 4.1).  :class:`TopList`
generates a ranked list of registrable domains with the properties the
analyses depend on:

* a fraction of entries do not resolve at all (the paper's 13.4%
  "Loading-Failure (NXDOMAIN)" row -- top lists contain dead and
  DNS-only domains);
* rank correlates with operator maturity, which downstream drives the
  IPv6 readiness gradient of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import RngStream

#: TLD mix for generated site names.
_TLDS = ("com", "net", "org", "io", "co.uk", "de", "com.au", "fr", "co.jp")


@dataclass(frozen=True)
class TopListEntry:
    """One ranked site."""

    rank: int
    etld1: str

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError("ranks are 1-based")


@dataclass
class TopList:
    """A ranked list of registrable domains."""

    entries: list[TopListEntry]
    list_id: str = "SYNTH"

    def __post_init__(self) -> None:
        for expected, entry in enumerate(self.entries, start=1):
            if entry.rank != expected:
                raise ValueError(
                    f"entry {entry.etld1} has rank {entry.rank}, expected {expected}"
                )

    def top(self, n: int) -> list[TopListEntry]:
        """The first ``n`` entries (all of them if the list is shorter)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return self.entries[:n]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @classmethod
    def generate(cls, num_sites: int, rng: RngStream, list_id: str = "SYNTH") -> "TopList":
        """Generate a ranked list of ``num_sites`` distinct domains."""
        if num_sites < 1:
            raise ValueError("num_sites must be >= 1")
        entries = []
        for rank in range(1, num_sites + 1):
            tld = rng.choice(_TLDS)
            entries.append(TopListEntry(rank=rank, etld1=f"site{rank}.{tld}"))
        return cls(entries=entries, list_id=list_id)
