"""The synthetic web: top lists, websites, third-party resources.

This package builds the universe the server-side census (paper section 4)
crawls: a popularity-ranked top list, websites with multiple pages and
embedded resources resolved to arbitrary depth, a shared third-party
service pool with the long-tailed span distribution the paper measures,
and the DNS/BGP/addressing fabric tying every FQDN to a cloud provider.
"""

from repro.web.ecosystem import WebEcosystem, WebEcosystemConfig
from repro.web.resources import (
    ResourceCategory,
    ResourceType,
    ThirdPartyPool,
    ThirdPartyService,
)
from repro.web.sites import EmbeddedResource, Page, Website
from repro.web.toplist import TopList, TopListEntry

__all__ = [
    "WebEcosystem",
    "WebEcosystemConfig",
    "ResourceCategory",
    "ResourceType",
    "ThirdPartyPool",
    "ThirdPartyService",
    "EmbeddedResource",
    "Page",
    "Website",
    "TopList",
    "TopListEntry",
]
