"""The website model: pages, embedded resources, links, redirects.

A :class:`Website` is what the crawler visits: a main page plus further
same-site pages reachable by links, each embedding first-party resources
(subdomains of the site) and third-party resources (shared services).
Scripts can pull in further resources, so dependency resolution is
recursive -- the "arbitrary depth" page loads the paper performs with a
real browser (section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.web.resources import ResourceType


@dataclass(frozen=True)
class EmbeddedResource:
    """One resource reference on a page: where it lives and what it is."""

    fqdn: str
    resource_type: ResourceType

    def __post_init__(self) -> None:
        if not self.fqdn or "." not in self.fqdn:
            raise ValueError(f"implausible resource FQDN {self.fqdn!r}")


@dataclass
class Page:
    """One page of a website."""

    path: str
    resources: list[EmbeddedResource] = field(default_factory=list)
    internal_links: list[str] = field(default_factory=list)  # other paths

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise ValueError("page paths start with '/'")


@dataclass
class Website:
    """A crawlable website.

    Attributes:
        etld1: the registrable domain from the top list.
        rank: Tranco-style popularity rank (1 = most popular).
        main_host: FQDN serving the main page (usually ``www.etld1``).
        pages: path -> Page; ``/`` is the main page.
        redirects: FQDN-level redirects (e.g. apex -> www); the crawler
            follows chains through this map.
    """

    etld1: str
    rank: int
    main_host: str
    pages: dict[str, Page] = field(default_factory=dict)
    redirects: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError("rank is 1-based")

    @property
    def main_page(self) -> Page:
        try:
            return self.pages["/"]
        except KeyError:
            raise KeyError(f"website {self.etld1} has no main page") from None

    def page(self, path: str) -> Page | None:
        return self.pages.get(path)

    def all_resource_fqdns(self) -> set[str]:
        """Every FQDN directly referenced by any page (not transitive)."""
        return {
            resource.fqdn
            for page in self.pages.values()
            for resource in page.resources
        }
