"""Assembly of the full synthetic web universe.

:class:`WebEcosystem` wires every substrate together into the world the
census crawls:

* a ranked :class:`~repro.web.toplist.TopList`, some entries dead
  (NXDOMAIN) or failing (SERVFAIL/timeout/TLS) as in Figure 5's
  loading-failure rows;
* live sites as cloud :class:`~repro.cloud.tenancy.Tenant`\\ s whose
  subdomains CNAME onto provider service suffixes and resolve to shared
  edge addresses, announced in BGP under the provider's organizations;
* a :class:`~repro.web.resources.ThirdPartyPool` whose services are
  themselves cloud tenants, giving third-party resources their IPv6
  status through the same provider-policy machinery;
* websites with multiple pages, same-site links, first- and third-party
  embedded resources, and redirect chains.

Everything is derived deterministically from one seed.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.cloud.providers import CloudProvider, CloudService, build_provider_catalog
from repro.cloud.tenancy import Tenant, TenantPlanner
from repro.happyeyeballs.algorithm import Connectivity
from repro.net.addr import AddressPool, Family, IpAddress, Prefix
from repro.net.asn import AsCategory, AsRegistry
from repro.net.bgp import RoutingTable
from repro.net.dns import DnsRecordType, DnsStatus, Resolver, ZoneDatabase
from repro.net.psl import PublicSuffixList, default_psl
from repro.net.rdns import ReverseDns
from repro.util.rng import RngStream
from repro.web.resources import (
    CATEGORY_IPV6_RATE,
    ResourceCategory,
    ResourceType,
    ThirdPartyPool,
    ThirdPartyService,
)
from repro.web.sites import EmbeddedResource, Page, Website
from repro.web.toplist import TopList, TopListEntry


class SiteStatus(enum.Enum):
    """Ground-truth fate of a top-list entry (for verification only --
    the crawler discovers these through DNS and connections)."""

    OK = "ok"
    NXDOMAIN = "nxdomain"
    DNS_FAILURE = "dns-failure"
    TIMEOUT = "timeout"
    TLS_FAILURE = "tls-failure"
    UNKNOWN_PRIMARY = "unknown-primary"


@dataclass(frozen=True)
class WebEcosystemConfig:
    """Tunable knobs of the synthetic web.

    Defaults are calibrated so the census reproduces Figure 5's shape:
    ~18% loading failures, ~58% of reachable sites IPv4-only, ~30%
    IPv6-partial, ~12% IPv6-full, with Figure 6's rank gradient.
    """

    num_sites: int = 2000
    seed: int = 0
    nxdomain_rate: float = 0.134
    dns_failure_rate: float = 0.020
    timeout_rate: float = 0.012
    tls_failure_rate: float = 0.014
    unknown_primary_rate: float = 0.0015
    monetized_rate: float = 0.62  # share of sites carrying ads/trackers
    monetized_ad_services: float = 5.0  # mean ad/tracker services if monetized
    monetized_other_services: float = 4.0  # mean non-ad services if monetized
    lean_services: float = 3.0  # mean non-ad services on ad-free sites
    mean_subdomains: float = 3.2
    pages_per_site: int = 8
    first_party_resources_per_page: float = 3.0
    third_party_spread: float = 0.75  # share of a site's 3p set on each page
    head_services_per_kilosite: float = 50.0
    tail_services_per_site: float = 0.9
    version_split_rate: float = 0.004  # sites with intentional v4-only subdomains
    inclination_base: float = 0.48
    inclination_rank_gain: float = 0.62
    inclination_noise: float = 0.18

    def __post_init__(self) -> None:
        if self.num_sites < 1:
            raise ValueError("num_sites must be >= 1")
        rates = (
            self.nxdomain_rate, self.dns_failure_rate, self.timeout_rate,
            self.tls_failure_rate, self.unknown_primary_rate,
        )
        if any(not 0.0 <= r <= 1.0 for r in rates) or sum(rates) >= 1.0:
            raise ValueError("failure rates must be probabilities summing below 1")
        if self.pages_per_site < 1:
            raise ValueError("pages_per_site must be >= 1")


@dataclass
class SitePlan:
    """Ground truth for one top-list entry."""

    entry: TopListEntry
    status: SiteStatus
    tenant: Tenant | None = None
    website: Website | None = None
    third_parties: list[ThirdPartyService] = field(default_factory=list)


@dataclass
class _EdgeConnectivity:
    """Connectivity oracle: fast everywhere except blacklisted hosts."""

    unreachable: set[IpAddress] = field(default_factory=set)
    v4_latency: float = 0.032
    v6_latency: float = 0.028

    def connect_latency(self, address: IpAddress) -> float | None:
        if address in self.unreachable:
            return None
        return self.v6_latency if address.family is Family.V6 else self.v4_latency


# Static type check hook: _EdgeConnectivity satisfies the HE protocol.
_connectivity_check: Connectivity = _EdgeConnectivity()

#: First-party resource type mix.
_FIRST_PARTY_TYPES: dict[ResourceType, float] = {
    ResourceType.IMAGE: 4.0,
    ResourceType.SCRIPT: 2.5,
    ResourceType.STYLESHEET: 1.5,
    ResourceType.MEDIA: 0.7,
    ResourceType.FONT: 0.6,
}

_V4_SUPERNET = Prefix.parse("4.0.0.0/6")
_V6_SUPERNET = Prefix.parse("2600::/16")


class WebEcosystem:
    """The assembled synthetic web universe."""

    def __init__(self, config: WebEcosystemConfig | None = None) -> None:
        self.config = config or WebEcosystemConfig()
        self._rng = RngStream(self.config.seed, "web-ecosystem")
        self.psl: PublicSuffixList = default_psl()
        self.providers: list[CloudProvider] = build_provider_catalog()
        self.registry = AsRegistry()
        self.routing = RoutingTable()
        self.rdns = ReverseDns()
        self.zones = ZoneDatabase()
        self.resolver = Resolver(database=self.zones)
        self.connectivity = _EdgeConnectivity()
        self.toplist = TopList.generate(
            self.config.num_sites, self._rng.substream("toplist")
        )
        self.plans: dict[str, SitePlan] = {}
        self.tenants: dict[str, Tenant] = {}
        self.pool: ThirdPartyPool | None = None
        self._edges: dict[tuple[str, Family], list[IpAddress]] = {}
        self._edge_cursor: dict[tuple[str, Family], int] = {}
        self._org_pools: dict[tuple[str, Family], AddressPool] = {}
        self._service_by_suffix: dict[str, tuple[CloudProvider, CloudService]] = {}
        self._tenant_counter = 0
        self._build()

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        self._register_providers()
        self._build_third_party_pool()
        planner = TenantPlanner(self.providers, self._rng.substream("tenancy"))
        self._place_third_parties(planner)
        self._build_sites(planner)

    def _register_providers(self) -> None:
        """Register orgs/ASes and announce per-org prefixes."""
        org_index = 0
        for provider in self.providers:
            for org_id, org_name, asn in zip(
                provider.org_ids, provider.org_names, provider.asns
            ):
                if self.registry.lookup(asn) is not None:
                    continue
                self.registry.register(
                    asn,
                    org_name.upper().replace(" ", "-")[:24],
                    org_id=org_id,
                    org_name=org_name,
                    category=AsCategory.HOSTING_CLOUD,
                )
                v4_prefix = _V4_SUPERNET.subnet(16, org_index)
                v6_prefix = _V6_SUPERNET.subnet(32, org_index)
                self.routing.announce(v4_prefix, asn)
                self.routing.announce(v6_prefix, asn)
                self._org_pools[(org_id, Family.V4)] = AddressPool(v4_prefix)
                self._org_pools[(org_id, Family.V6)] = AddressPool(
                    v6_prefix.subnet(112, 1)
                )
                org_index += 1
            for service in provider.services:
                self._service_by_suffix[service.cname_suffix] = (provider, service)
                # One zone per service suffix holds the edge target names.
                suffix_zone_origin = service.cname_suffix.split(".", 1)[1]
                self.zones.get_or_create_zone(suffix_zone_origin)

    def _edge_address(
        self, provider: CloudProvider, service: CloudService, family: Family
    ) -> IpAddress:
        """Round-robin over the service's shared edge addresses."""
        org_id = service.v4_org_id if family is Family.V4 else service.v6_org_id
        key = (f"{provider.name}/{service.name}", family)
        pool = self._edges.setdefault(key, [])
        cursor = self._edge_cursor.get(key, 0)
        if len(pool) < provider.edge_pool_size:
            address = self._org_pools[(org_id, family)].allocate()
            edge_name = f"edge-{len(pool)}.{service.cname_suffix}"
            self.rdns.register(address, edge_name)
            pool.append(address)
            self._edge_cursor[key] = 0
            return address
        self._edge_cursor[key] = (cursor + 1) % len(pool)
        return pool[self._edge_cursor[key]]

    def _materialize_tenant(self, tenant: Tenant) -> None:
        """Create DNS records and addresses for a tenant's placements."""
        site_zone = self.zones.get_or_create_zone(tenant.etld1)
        for placement in tenant.placements:
            provider, service = self._provider_service(placement.service)
            self._tenant_counter += 1
            target = f"t{self._tenant_counter}.{service.cname_suffix}"
            site_zone.add(placement.fqdn, DnsRecordType.CNAME, target)
            target_zone = self.zones.zone_for(target)
            assert target_zone is not None
            v4 = self._edge_address(provider, service, Family.V4)
            target_zone.add(target, DnsRecordType.A, v4)
            if placement.has_aaaa:
                v6 = self._edge_address(provider, service, Family.V6)
                target_zone.add(target, DnsRecordType.AAAA, v6)

    def _provider_service(
        self, service: CloudService
    ) -> tuple[CloudProvider, CloudService]:
        return self._service_by_suffix[service.cname_suffix]

    def _build_third_party_pool(self) -> None:
        cfg = self.config
        num_head = max(24, int(cfg.head_services_per_kilosite * cfg.num_sites / 1000))
        num_tail = int(cfg.tail_services_per_site * cfg.num_sites)
        self.pool = ThirdPartyPool(
            num_head=num_head,
            num_tail=num_tail,
            rng=self._rng.substream("third-parties"),
        )

    def _place_third_parties(self, planner: TenantPlanner) -> None:
        """Place every third-party service as a cloud tenant.

        A service's IPv6 status is drawn once from its category rate
        (ads lag, CDNs lead: Figure 9's causal story), slightly boosted
        for head services; its placement is correlated with that status
        (IPv6-enabled services disproportionately front with default-on
        CDN providers).
        """
        rng = self._rng.substream("third-party-tenancy")
        assert self.pool is not None
        num_head = self.pool.num_head
        ad_like = {ResourceCategory.ADS, ResourceCategory.TRACKERS}
        for index, service in enumerate(self.pool.services):
            is_head = index < num_head
            rate = CATEGORY_IPV6_RATE[service.category] + (0.04 if is_head else -0.08)
            if is_head and service.category not in ad_like:
                # The most popular infrastructure third parties (major
                # CDNs, font/script hosts, analytics) are reliably
                # dual-stack; only the ad/tracker ecosystem lags at the
                # head (the paper's Figure 9).  Without this, one unlucky
                # IPv4-only top service would poison every lean site.
                rate = min(0.99, rate + 0.30 / (1.0 + index / 6.0))
            enabled = rng.bernoulli(rate)
            if enabled:
                # Dual-stack third parties front with providers where IPv6
                # is effortless -- placing them on an opt-in-only host
                # would contradict their observed AAAA.
                primary = planner.pick_primary_effortless()
            else:
                primary = planner.pick_primary(cdn_bias=0.1)
            tenant = planner.place_tenant(
                etld1=service.domain,
                num_subdomains=rng.randint(3, 6),
                inclination=1.0 if enabled else 0.0,
                primary=primary,
                forced_aaaa=enabled,
                prefer_v6_services=enabled,
            )
            self.tenants[service.domain] = tenant
            self._materialize_tenant(tenant)

    def _site_inclination(self, rank: int, rng: RngStream) -> float:
        """IPv6 inclination declining with rank (drives Figure 6)."""
        cfg = self.config
        span = math.log10(max(10, cfg.num_sites))
        rank_position = 1.0 - math.log10(rank + 1) / span  # 1 at top, ~0 at tail
        raw = (
            cfg.inclination_base
            + cfg.inclination_rank_gain * rank_position
            + rng.normal(0.0, cfg.inclination_noise)
        )
        return min(1.0, max(0.0, raw))

    def _build_sites(self, planner: TenantPlanner) -> None:
        cfg = self.config
        rng = self._rng.substream("sites")
        assert self.pool is not None
        for entry in self.toplist:
            status_draw = rng.random()
            if status_draw < cfg.nxdomain_rate:
                self.plans[entry.etld1] = SitePlan(entry, SiteStatus.NXDOMAIN)
                continue  # no zone at all: resolver will answer NXDOMAIN
            plan_status = SiteStatus.OK
            threshold = cfg.nxdomain_rate
            for rate, status in (
                (cfg.dns_failure_rate, SiteStatus.DNS_FAILURE),
                (cfg.timeout_rate, SiteStatus.TIMEOUT),
                (cfg.tls_failure_rate, SiteStatus.TLS_FAILURE),
                (cfg.unknown_primary_rate, SiteStatus.UNKNOWN_PRIMARY),
            ):
                threshold += rate
                if status_draw < threshold:
                    plan_status = status
                    break

            inclination = self._site_inclination(entry.rank, rng)
            rank_position = 1.0 - math.log10(entry.rank + 1) / math.log10(
                max(10, cfg.num_sites)
            )
            primary = planner.pick_primary(cdn_bias=max(0.0, rank_position))
            num_subdomains = max(1, rng.poisson(cfg.mean_subdomains))
            tenant = planner.place_tenant(
                entry.etld1, num_subdomains, inclination, primary=primary
            )
            self.tenants[entry.etld1] = tenant
            self._materialize_tenant(tenant)

            third_parties = self._draw_site_third_parties(rng)
            website = self._build_website(entry, tenant, third_parties, rng)
            self.plans[entry.etld1] = SitePlan(
                entry, plan_status, tenant=tenant,
                website=website, third_parties=third_parties,
            )
            self._apply_failure(plan_status, tenant, website, rng)

    def _draw_site_third_parties(self, rng: RngStream) -> list[ThirdPartyService]:
        """A site's third-party diet.

        Monetized sites embed the ad/tracker ecosystem (largely IPv4-only:
        Figure 9) plus other services; ad-free sites embed a few CDN/
        analytics services -- which is why a meaningful IPv6-full
        population survives at all.
        """
        cfg = self.config
        assert self.pool is not None
        ad_categories = frozenset(
            {ResourceCategory.ADS, ResourceCategory.TRACKERS}
        )
        other_categories = frozenset(
            {
                ResourceCategory.INFORMATION_TECHNOLOGY,
                ResourceCategory.CONTENT_DELIVERY,
                ResourceCategory.ANALYTICS,
            }
        )
        if rng.bernoulli(cfg.monetized_rate):
            embeds = self.pool.draw_embeds(cfg.monetized_ad_services, ad_categories)
            embeds.extend(
                self.pool.draw_embeds(cfg.monetized_other_services, other_categories)
            )
        else:
            embeds = self.pool.draw_embeds(cfg.lean_services, other_categories)
        # De-duplicate, preserving order.
        seen: dict[str, ThirdPartyService] = {}
        for service in embeds:
            seen[service.domain] = service
        return list(seen.values())

    def _build_website(
        self,
        entry: TopListEntry,
        tenant: Tenant,
        third_parties: list[ThirdPartyService],
        rng: RngStream,
    ) -> Website:
        cfg = self.config
        main_host = tenant.main_placement.fqdn
        website = Website(etld1=entry.etld1, rank=entry.rank, main_host=main_host)
        website.redirects[entry.etld1] = main_host
        # Apex serves only the redirect; give it an A record.
        apex_zone = self.zones.zone_for(entry.etld1)
        assert apex_zone is not None
        provider, service = self._provider_service(tenant.main_placement.service)
        apex_zone.add(entry.etld1, DnsRecordType.A,
                      self._edge_address(provider, service, Family.V4))

        # First-party asset hosts: predominantly the subdomains fronted by
        # the same service as www (one CDN config serves the site's
        # assets), occasionally any other subdomain.  This is what keeps
        # first-party-only IPv6-partial sites rare (the paper's 2.3%).
        www = tenant.main_placement
        same_service_hosts = [
            p.fqdn
            for p in tenant.placements
            if p.service.cname_suffix == www.service.cname_suffix
        ]
        other_hosts = [
            p.fqdn
            for p in tenant.placements
            if p.service.cname_suffix != www.service.cname_suffix
        ]
        version_split_host: str | None = None
        if rng.bernoulli(cfg.version_split_rate):
            # Intentional protocol-specific subdomain (section 4.4's
            # misclassification estimate): an A-only v4.<site> asset host.
            version_split_host = f"v4.{entry.etld1}"
            apex_zone.add(version_split_host, DnsRecordType.A,
                          self._edge_address(provider, service, Family.V4))

        paths = ["/"] + [f"/page{i}" for i in range(1, cfg.pages_per_site)]
        for path in paths:
            page = Page(path=path)
            count = max(1, rng.poisson(cfg.first_party_resources_per_page))
            for _ in range(count):
                if version_split_host is not None and rng.bernoulli(0.3):
                    host = version_split_host
                elif other_hosts and rng.bernoulli(0.04):
                    host = rng.choice(other_hosts)
                else:
                    host = rng.choice(same_service_hosts)
                rtype = rng.weighted_choice(
                    list(_FIRST_PARTY_TYPES), list(_FIRST_PARTY_TYPES.values())
                )
                page.resources.append(EmbeddedResource(host, rtype))
            for service_3p in third_parties:
                if path != "/" and not rng.bernoulli(cfg.third_party_spread):
                    continue
                tenant_3p = self.tenants[service_3p.domain]
                # A third-party integration touches several of the
                # service's hosts (pixel, script, iframe endpoints).
                for placement in rng.sample(
                    tenant_3p.placements, rng.randint(2, 4)
                ):
                    page.resources.append(
                        EmbeddedResource(
                            placement.fqdn, service_3p.draw_resource_type(rng)
                        )
                    )
            page.internal_links = [p for p in paths if p != path]
            website.pages[path] = page
        return website

    def _apply_failure(
        self,
        status: SiteStatus,
        tenant: Tenant,
        website: Website,
        rng: RngStream,
    ) -> None:
        main_host = website.main_host
        if status is SiteStatus.DNS_FAILURE:
            self.resolver.inject_failure(main_host, DnsStatus.SERVFAIL)
        elif status is SiteStatus.TIMEOUT:
            self.resolver.inject_failure(main_host, DnsStatus.TIMEOUT)
        elif status is SiteStatus.TLS_FAILURE:
            # Handshakes to the main host fail.  The host must be moved to
            # dedicated addresses first: blacklisting its *shared* CDN edge
            # would break IPv6 for every other tenant on that edge.
            a, aaaa = self.resolver.resolve_addresses(main_host)
            target = a.canonical_name
            zone = self.zones.zone_for(target)
            assert zone is not None
            service = tenant.main_placement.service
            zone.remove(target, DnsRecordType.A)
            fresh_v4 = self._org_pools[(service.v4_org_id, Family.V4)].allocate()
            zone.add(target, DnsRecordType.A, fresh_v4)
            self.connectivity.unreachable.add(fresh_v4)
            if aaaa.addresses:
                zone.remove(target, DnsRecordType.AAAA)
                fresh_v6 = self._org_pools[(service.v6_org_id, Family.V6)].allocate()
                zone.add(target, DnsRecordType.AAAA, fresh_v6)
                self.connectivity.unreachable.add(fresh_v6)
        elif status is SiteStatus.UNKNOWN_PRIMARY:
            # Redirect off into a domain that does not exist anywhere.
            website.redirects[main_host] = f"parked.gone-{website.rank}.example"

    # -- counterfactual mutations ------------------------------------------

    def enable_provider_aaaa(self, provider_name: str) -> int:
        """Dual-stack every placement hosted on ``provider_name``.

        The what-if lever behind ``dualstack:<provider>``: every tenant
        subdomain placed on one of the provider's services that lacks an
        AAAA record gains one (a fresh shared edge address of the
        service's v6 organization), and the placement's ``has_aaaa``
        ground truth is updated to match.  Placements whose edge is in
        the outage set are left alone -- turning on IPv6 does not fix a
        broken site.  Deterministic: iteration follows tenant insertion
        order and the allocator state, no RNG.  Returns the number of
        placements that gained an AAAA.

        Must run *before* a census crawls this ecosystem (the crawler
        observes DNS, so records added afterwards would be invisible).
        """
        if provider_name not in {p.name for p in self.providers}:
            raise ValueError(
                f"unknown provider {provider_name!r}; known: "
                + ", ".join(p.name for p in self.providers)
            )
        import dataclasses as _dataclasses

        from repro.net.dns import DnsRecordType as _RType

        enabled = 0
        for tenant in self.tenants.values():
            site_zone = self.zones.zone_for(tenant.etld1)
            if site_zone is None:  # pragma: no cover - tenants always have zones
                continue
            for index, placement in enumerate(tenant.placements):
                if placement.has_aaaa or placement.provider_name != provider_name:
                    continue
                cnames = site_zone.lookup(placement.fqdn, _RType.CNAME)
                if not cnames:
                    continue
                target = str(cnames[0].value)
                target_zone = self.zones.zone_for(target)
                if target_zone is None:  # pragma: no cover - guarded at build
                    continue
                a_records = target_zone.lookup(target, _RType.A)
                if any(r.value in self.connectivity.unreachable for r in a_records):
                    continue  # broken edge: v6 would be just as dead
                provider, service = self._provider_service(placement.service)
                target_zone.add(
                    target,
                    _RType.AAAA,
                    self._edge_address(provider, service, Family.V6),
                )
                tenant.placements[index] = _dataclasses.replace(
                    placement, has_aaaa=True
                )
                enabled += 1
        return enabled

    # -- convenience accessors ---------------------------------------------

    def websites(self) -> list[Website]:
        """All crawlable sites in rank order (failures included)."""
        return [
            plan.website
            for plan in (self.plans[e.etld1] for e in self.toplist)
            if plan.website is not None
        ]

    def plan_of(self, etld1: str) -> SitePlan:
        return self.plans[etld1]

    def service_of_cname(self, canonical_name: str) -> tuple[CloudProvider, CloudService] | None:
        """Identify the cloud service behind a canonical name, by suffix."""
        for suffix, value in self._service_by_suffix.items():
            if canonical_name.endswith("." + suffix):
                return value
        return None

    def org_of_address(self, address: IpAddress):
        """The owning organization of an address, via BGP + AS-to-Org."""
        asn = self.routing.origin_of(address)
        if asn is None:
            return None
        return self.registry.organization_of(asn)
