"""The process-wide metrics registry: typed, labeled, mergeable.

Three instrument kinds, the same trio Prometheus clients settle on:

* :class:`MetricCounter` -- monotonic; ``inc()`` only ever grows it.
* :class:`MetricGauge` -- a point-in-time level; ``set()`` replaces.
* :class:`MetricHistogram` -- fixed cumulative buckets plus sum/count,
  for latencies (``observe(seconds)``).

Every instrument is label-keyed: ``counter.inc(layer="traffic")``
stores under the label-value tuple, so one instrument covers a family
of series exactly like the exposition format renders them.  The hot
path is dict-and-list arithmetic with no locks -- under the GIL each
``+=`` on a dict slot is effectively atomic, and the consumers
(``/metrics``, snapshots) tolerate a torn read of *different* series.

The registry is serializable both directions: :meth:`MetricsRegistry.
snapshot` produces a deterministic JSON-able document and
:meth:`MetricsRegistry.merge` folds such a document back in (counters
and histograms add, gauges take the merged value), which is how
procpool workers ship their metrics back to the parent inside the map
result.  :func:`counter_view` wraps one single-label counter in a
``Counter``-shaped mutable mapping -- the compatibility surface that
keeps ``session.BUILD_COUNTS``-style call sites and tests working
unchanged while the storage lives here.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import MutableMapping
from typing import Any, Iterator

#: Latency buckets (seconds) shared by the request/build/store
#: histograms: sub-millisecond hot-cache hits up through ten-second
#: cold builds, with +Inf implied as the overflow bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _escape_label(value: str) -> str:
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Exposition-format numbers: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


class Instrument:
    """One named instrument: shared identity, per-label-value samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]) -> None:
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"bad metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._samples: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: dict[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: labels {sorted(labels)} != declared "
                f"{sorted(self.labelnames)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def clear(self) -> None:
        """Drop every sample (the instrument stays registered)."""
        self._samples.clear()

    def sample_items(self) -> list[tuple[tuple[str, ...], Any]]:
        """``(label_values, value)`` pairs, deterministically ordered."""
        return sorted(self._samples.items())


class MetricCounter(Instrument):
    """A monotonic counter; decrements are a bug and raise."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up (got {amount})")
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._samples.get(self._key(labels), 0.0)


class MetricGauge(Instrument):
    """A settable level (cache sizes, store bytes)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._samples[self._key(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        return self._samples.get(self._key(labels), 0.0)


class MetricHistogram(Instrument):
    """Fixed-bucket latency histogram (cumulative on render, not on store)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"{name}: buckets must be ascending and non-empty")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        sample = self._samples.get(key)
        if sample is None:
            # One slot per bucket plus the +Inf overflow slot.
            sample = self._samples[key] = {
                "buckets": [0] * (len(self.buckets) + 1),
                "sum": 0.0,
                "count": 0,
            }
        index = len(self.buckets)  # +Inf unless a bound catches it
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        sample["buckets"][index] += 1
        sample["sum"] += value
        sample["count"] += 1

    def value(self, **labels: Any) -> dict | None:
        """The raw sample dict for the label set (``None`` if unobserved)."""
        return self._samples.get(self._key(labels))


_KINDS: dict[str, type[Instrument]] = {
    "counter": MetricCounter,
    "gauge": MetricGauge,
    "histogram": MetricHistogram,
}


class MetricsRegistry:
    """All instruments of one process, keyed by metric name."""

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    def _get_or_create(
        self,
        cls: type[Instrument],
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        **kwargs: Any,
    ) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.labelnames}"
                )
            return existing
        instrument = cls(name, help, tuple(labelnames), **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricCounter:
        return self._get_or_create(MetricCounter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricGauge:
        return self._get_or_create(MetricGauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricHistogram:
        return self._get_or_create(
            MetricHistogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Instrument | None:
        return self._instruments.get(name)

    def instruments(self) -> list[Instrument]:
        return [self._instruments[name] for name in sorted(self._instruments)]

    def reset(self) -> None:
        """Clear every sample; registrations (names, labels, buckets) stay."""
        for instrument in self._instruments.values():
            instrument.clear()

    # -- serialization -------------------------------------------------------

    def snapshot(self) -> dict:
        """A deterministic JSON-able document of every instrument.

        Sample values are copied (histogram dicts included), so a
        snapshot taken before more traffic is a stable before-image --
        the property the procpool shipping and the delta-asserting
        tests rely on.
        """
        out: dict[str, Any] = {}
        for instrument in self.instruments():
            entry: dict[str, Any] = {
                "type": instrument.kind,
                "help": instrument.help,
                "labels": list(instrument.labelnames),
                "samples": [
                    [list(key), dict(value) if isinstance(value, dict) else value]
                    for key, value in instrument.sample_items()
                ],
            }
            if isinstance(instrument, MetricHistogram):
                entry["buckets"] = list(instrument.buckets)
                for _, sample in entry["samples"]:
                    sample["buckets"] = list(sample["buckets"])
            out[instrument.name] = entry
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` document into this registry.

        Counters and histograms *add* (a worker's deltas accumulate on
        the parent's totals); gauges take the snapshot's value (last
        merge wins -- a level, not a flow).  Instruments the snapshot
        has and this registry lacks are created with the snapshot's
        declaration, so merging into a fresh registry reproduces the
        source exactly.
        """
        for name in sorted(snapshot):
            entry = snapshot[name]
            cls = _KINDS.get(entry.get("type"))
            if cls is None:
                raise ValueError(f"snapshot metric {name!r} has unknown type "
                                 f"{entry.get('type')!r}")
            labelnames = tuple(entry.get("labels", ()))
            kwargs: dict[str, Any] = {}
            if cls is MetricHistogram:
                kwargs["buckets"] = tuple(entry.get("buckets", DEFAULT_BUCKETS))
            instrument = self._get_or_create(
                cls, name, entry.get("help", ""), labelnames, **kwargs
            )
            if (
                isinstance(instrument, MetricHistogram)
                and list(instrument.buckets) != list(entry.get("buckets", ()))
            ):
                raise ValueError(f"metric {name!r}: bucket bounds differ")
            for key_list, value in entry.get("samples", []):
                key = tuple(key_list)
                if isinstance(instrument, MetricCounter):
                    instrument._samples[key] = (
                        instrument._samples.get(key, 0.0) + value
                    )
                elif isinstance(instrument, MetricGauge):
                    instrument._samples[key] = float(value)
                else:
                    sample = instrument._samples.get(key)
                    if sample is None:
                        instrument._samples[key] = {
                            "buckets": list(value["buckets"]),
                            "sum": value["sum"],
                            "count": value["count"],
                        }
                    else:
                        for i, n in enumerate(value["buckets"]):
                            sample["buckets"][i] += n
                        sample["sum"] += value["sum"]
                        sample["count"] += value["count"]

    # -- exposition ----------------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for instrument in self.instruments():
            if instrument.help:
                lines.append(f"# HELP {instrument.name} {instrument.help}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            if isinstance(instrument, MetricHistogram):
                self._render_histogram(instrument, lines)
                continue
            for key, value in instrument.sample_items():
                lines.append(
                    f"{instrument.name}{self._labels(instrument.labelnames, key)}"
                    f" {_format_value(value)}"
                )
        return "\n".join(lines) + "\n" if lines else ""

    @staticmethod
    def _labels(
        names: tuple[str, ...], values: tuple[str, ...], extra: str = ""
    ) -> str:
        pairs = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(names, values)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def _render_histogram(
        self, instrument: MetricHistogram, lines: list[str]
    ) -> None:
        for key, sample in instrument.sample_items():
            cumulative = 0
            bounds = [*(_format_value(b) for b in instrument.buckets), "+Inf"]
            for bound, count in zip(bounds, sample["buckets"]):
                cumulative += count
                le = 'le="%s"' % bound
                label_text = self._labels(instrument.labelnames, key, le)
                lines.append(f"{instrument.name}_bucket{label_text} {cumulative}")
            label_text = self._labels(instrument.labelnames, key)
            lines.append(
                f"{instrument.name}_sum{label_text} {_format_value(sample['sum'])}"
            )
            lines.append(f"{instrument.name}_count{label_text} {sample['count']}")


#: The process-wide default registry every instrumented subsystem uses.
_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry (one per process; workers ship snapshots)."""
    return _DEFAULT


class CounterView(MutableMapping):
    """A ``collections.Counter``-shaped view over one single-label counter.

    The compatibility surface of the migration: ``BUILD_COUNTS[key] += 1``
    and every test-side read (``.copy()``, ``set(...)``, ``==`` against a
    ``Counter``, ``.get(key, 0)``) keep working while the storage lives
    in the registry.  Missing keys read as ``0`` without being stored,
    exactly like a ``Counter``.
    """

    def __init__(self, counter: MetricCounter) -> None:
        if len(counter.labelnames) != 1:
            raise ValueError("CounterView wraps exactly one label dimension")
        self._counter = counter

    def __getitem__(self, key: str) -> int:
        value = self._counter._samples.get((str(key),))
        if value is None:
            return 0
        return int(value) if float(value).is_integer() else value

    def __setitem__(self, key: str, value: float) -> None:
        self._counter._samples[(str(key),)] = value

    def __delitem__(self, key: str) -> None:
        del self._counter._samples[(str(key),)]

    def __iter__(self) -> Iterator[str]:
        return (key[0] for key, _ in self._counter.sample_items())

    def __len__(self) -> int:
        return len(self._counter._samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterView({self._counter.name}: {dict(self)!r})"

    def copy(self) -> Counter:
        """A detached ``Counter`` of the current values (the test idiom)."""
        return Counter(dict(self))

    def clear(self) -> None:
        self._counter.clear()


def counter_view(counter: MetricCounter) -> CounterView:
    """Wrap ``counter`` (one label) in its ``Counter``-compatible view."""
    return CounterView(counter)
