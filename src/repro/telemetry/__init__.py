"""repro.telemetry: the observability plane -- metrics and spans.

One process-wide :class:`MetricsRegistry` of typed, label-keyed
instruments (:mod:`repro.telemetry.metrics`) and a monotonic-clock
span tracer (:mod:`repro.telemetry.trace`).  Every counter in the repo
lives here (replint REP010 forbids new module-level ``*_COUNTS`` dicts
anywhere else); the legacy names (``session.BUILD_COUNTS``,
``retry.RETRY_COUNTS``, ...) survive as :class:`CounterView`
compatibility views over registry instruments.

Export surfaces: ``GET /metrics`` (Prometheus text exposition) and
``GET /v1/trace?last=N`` on the serve tier, ``--telemetry-json PATH``
on the CLI, and ``python -m repro trace`` for chrome://tracing.
"""

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    CounterView,
    Instrument,
    MetricCounter,
    MetricGauge,
    MetricHistogram,
    MetricsRegistry,
    counter_view,
    registry,
)
from repro.telemetry.trace import (
    Span,
    chrome_trace,
    current_span,
    recent_spans,
    reset_trace,
    set_profile_hook,
    span,
    span_tree,
    telemetry_document,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "CounterView",
    "Instrument",
    "MetricCounter",
    "MetricGauge",
    "MetricHistogram",
    "MetricsRegistry",
    "counter_view",
    "registry",
    "Span",
    "chrome_trace",
    "current_span",
    "recent_spans",
    "reset_trace",
    "set_profile_hook",
    "span",
    "span_tree",
    "telemetry_document",
]
