"""Build-span tracing: a tree of monotonic-clock timed spans.

``span("build:traffic", layer="traffic")`` opens one node; nested
``with`` blocks nest nodes; leaving the outermost span records the
completed tree in a bounded process-wide buffer (:func:`recent_spans`,
what ``GET /v1/trace`` and ``--telemetry-json`` read).  Durations come
from :func:`time.perf_counter` -- REP001 bans wall clocks and entropy
in build code, not the monotonic clock, and no span timing ever enters
artifact bytes, digests, or cache keys.  Wall-clock stamps appear only
at export time (:func:`telemetry_document`), explicitly waived.

Two export shapes:

* :func:`span_tree` -- the compact JSON tree (name, duration_ms,
  self_ms, labels, children), the ``/v1/trace`` wire format.
* :func:`chrome_trace` -- chrome://tracing / Perfetto "Trace Event
  Format" (phase-``X`` complete events, microsecond timestamps
  relative to the earliest recorded span), ``python -m repro trace
  --format chrome``.

The span stack is a ``threading.local``: the serving tier traces
executor-thread builds concurrently with event-loop requests without
interleaving their trees.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.telemetry.metrics import registry

#: Completed root spans kept for ``/v1/trace`` (older ones fall off).
_RECENT_LIMIT = 256

_RECENT: deque["Span"] = deque(maxlen=_RECENT_LIMIT)
_RECENT_LOCK = threading.Lock()


class _Stack(threading.local):
    def __init__(self) -> None:
        self.spans: list["Span"] = []


_STACK = _Stack()

#: The installed span-profiling hook (``repro.prof.capture`` object
#: with ``start(span) -> token|None`` / ``stop(span, token)``), or
#: ``None`` -- the default, costing one attribute check per span.  The
#: indirection keeps this module free of profiler imports (REP012):
#: the tracer knows *that* a span can be profiled, never *how*.
_PROFILE_HOOK: Any = None


def set_profile_hook(hook: Any) -> None:
    """Install (or with ``None`` remove) the span-profiling hook."""
    global _PROFILE_HOOK
    _PROFILE_HOOK = hook


@dataclass
class Span:
    """One timed node: a name, labels, a duration, child spans."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    started: float = 0.0  # perf_counter at __enter__ (process-relative)
    duration_s: float = 0.0
    children: list["Span"] = field(default_factory=list)
    discarded: bool = False
    #: Call-tree document attached by ``repro.prof`` when span-scoped
    #: CPU profiling is enabled and this span matched a pattern.
    profile: dict | None = None
    #: tracemalloc peak of this span's window (memory profiling only).
    peak_bytes: int | None = None

    def discard(self) -> None:
        """Drop this span (and its subtree) instead of recording it.

        The serving fast path uses this: a ``hot_only`` probe that
        misses returns ``None`` and re-runs in an executor thread --
        recording both attempts would double-count the request.
        """
        self.discarded = True

    @property
    def self_s(self) -> float:
        """Time spent in this span outside any child span."""
        return max(0.0, self.duration_s - sum(c.duration_s for c in self.children))


@contextmanager
def span(name: str, **labels: Any) -> Iterator[Span]:
    """Open one span; nests under the current span of this thread.

    Yields the :class:`Span` so callers can add labels mid-flight
    (``sp.labels["status"] = "200"``) or :meth:`~Span.discard` it.
    """
    node = Span(name=name, labels={k: str(v) for k, v in labels.items()})
    hook = _PROFILE_HOOK
    token = hook.start(node) if hook is not None else None
    node.started = time.perf_counter()
    _STACK.spans.append(node)
    try:
        yield node
    finally:
        node.duration_s = time.perf_counter() - node.started
        if token is not None:
            hook.stop(node, token)
        _STACK.spans.pop()
        if not node.discarded:
            if _STACK.spans:
                _STACK.spans[-1].children.append(node)
            else:
                with _RECENT_LOCK:
                    _RECENT.append(node)


def current_span() -> Span | None:
    """The innermost open span of this thread (``None`` outside any)."""
    return _STACK.spans[-1] if _STACK.spans else None


def recent_spans(last: int | None = None) -> list[Span]:
    """The most recent completed root spans, oldest first."""
    with _RECENT_LOCK:
        spans = list(_RECENT)
    if last is not None:
        spans = spans[-last:] if last > 0 else []
    return spans


def reset_trace() -> None:
    """Forget every recorded root span (test isolation hook)."""
    with _RECENT_LOCK:
        _RECENT.clear()


# -- exports ------------------------------------------------------------------


def span_tree(node: Span) -> dict:
    """The compact JSON tree of one span (the ``/v1/trace`` wire shape).

    ``peak_bytes`` appears only on spans that ran under memory
    profiling; profiled spans carry a ``profiled`` marker (the capture
    itself serves at ``/v1/profile``, keeping trace bodies lean).
    """
    tree = {
        "name": node.name,
        "duration_ms": round(node.duration_s * 1000.0, 3),
        "self_ms": round(node.self_s * 1000.0, 3),
        "labels": dict(sorted(node.labels.items())),
        "children": [span_tree(child) for child in node.children],
    }
    if node.peak_bytes is not None:
        tree["peak_bytes"] = node.peak_bytes
    if node.profile is not None:
        tree["profiled"] = True
    return tree


def chrome_trace(spans: list[Span] | None = None) -> dict:
    """Trace Event Format for chrome://tracing (phase-``X`` events).

    Timestamps are microseconds relative to the earliest recorded span
    -- absolute wall time never enters the trace, so two runs of the
    same build differ only in durations, never in epoch offsets.
    """
    spans = recent_spans() if spans is None else spans
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = min(node.started for node in spans)
    events: list[dict] = []

    def emit(node: Span, tid: int) -> None:
        events.append(
            {
                "name": node.name,
                "ph": "X",
                "ts": round((node.started - origin) * 1e6, 1),
                "dur": round(node.duration_s * 1e6, 1),
                "pid": 1,
                "tid": tid,
                "args": dict(sorted(node.labels.items())),
            }
        )
        for child in node.children:
            emit(child, tid)

    for index, node in enumerate(spans):
        emit(node, index + 1)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _exported_at() -> str:
    """Wall-clock export stamp (the only wall read in the telemetry plane).

    Snapshot provenance for operators; never enters artifact bytes,
    digests, or cache keys.
    """
    from datetime import datetime, timezone

    # replint: allow[REP001] export-time provenance stamp only, never artifact data
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def telemetry_document(last: int | None = None) -> dict:
    """The full telemetry snapshot: metrics + recent span trees.

    What ``--telemetry-json PATH`` writes after a CLI run and what the
    perf smoke folds into ``BENCH_results.json``.
    """
    return {
        "exported_at": _exported_at(),
        "metrics": registry().snapshot(),
        "trace": {"spans": [span_tree(node) for node in recent_spans(last)]},
    }
