"""Developer tooling for the reproduction: contract-enforcing linters.

The reproduction's headline guarantees -- parallel == sequential
bit-identity, content-addressed warm starts that are JSON-equal to cold
builds, ``allow_pickle=False`` persistence -- are conventions that every
new module must keep.  :mod:`repro.devtools.lint` (``replint``) turns
those conventions into machine-checked invariants.
"""
