"""REP009: retry/backoff loops live in ``repro.resilience`` only.

Ad-hoc retry loops -- a ``time.sleep`` inside a ``while``/``for``, or a
``for attempt in range(...)`` that swallows an exception and continues
-- scatter backoff behaviour (attempt counts, delay growth, jitter,
budgets) across the tree where nobody can audit or test it.  The repo
defines retrying exactly once, in :func:`repro.resilience.retry.
call_with_retry`: bounded exponential backoff, deterministic jitter
(REP001), a per-call timeout budget, and one telemetry counter.  This
rule flags every sleep-in-a-loop and retry-shaped loop outside
``repro/resilience/`` so new transient-failure handling is steered
through the shared policy instead of growing its own.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.astutil import import_aliases, resolve_call_name
from repro.devtools.lint.engine import ModuleContext, Rule, Violation

#: Callables that stall the thread/loop -- the backoff primitive an
#: ad-hoc retry loop is built around.
SLEEP_CALLS = frozenset({"time.sleep", "asyncio.sleep"})

_HINT = (
    "wrap the flaky call in repro.resilience.retry.call_with_retry (one "
    "shared policy: bounded backoff, deterministic jitter, timeout "
    "budget, RETRY_COUNTS telemetry) instead of hand-rolling a "
    "sleep/retry loop; a loop that genuinely is not a retry needs a "
    "justified '# replint: allow[REP009] ...' waiver"
)


class AdHocRetryRule(Rule):
    id = "REP009"
    title = "retry/sleep loops are centralized in repro.resilience"
    hint = _HINT

    def want(self, ctx: ModuleContext) -> bool:
        # The resilience package *implements* the shared policy (its
        # sleep loop is the one every caller is steered into), and
        # devtools is offline tooling, not library code.
        return (
            "resilience/" not in ctx.relpath and "devtools/" not in ctx.relpath
        )

    def check(self, ctx: ModuleContext) -> Iterable[Violation]:
        aliases = import_aliases(ctx.tree)
        seen: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                yield from self._flag_sleeps(ctx, node, aliases, seen)
                if isinstance(node, ast.For) and _is_retry_shaped(node, aliases):
                    if id(node) not in seen:
                        seen.add(id(node))
                        yield ctx.violation(
                            self,
                            node,
                            "retry-shaped loop (for ... in range(...) that "
                            "catches an exception and continues); use "
                            "resilience.retry.call_with_retry",
                        )

    def _flag_sleeps(
        self,
        ctx: ModuleContext,
        loop: ast.AST,
        aliases: dict[str, str],
        seen: set[int],
    ) -> Iterable[Violation]:
        for node in ast.walk(loop):
            if node is loop or not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, aliases)
            if name in SLEEP_CALLS and id(node) not in seen:
                seen.add(id(node))
                yield ctx.violation(
                    self,
                    node,
                    f"{name}() inside a loop is an ad-hoc backoff; "
                    "retrying goes through resilience.retry.call_with_retry",
                )


def _is_retry_shaped(loop: ast.For, aliases: dict[str, str]) -> bool:
    """``for _ in range(...)`` whose body swallows an exception to loop on."""
    if not isinstance(loop.iter, ast.Call):
        return False
    if resolve_call_name(loop.iter.func, aliases) != "range":
        return False
    for node in ast.walk(loop):
        if isinstance(node, ast.Try):
            for handler in node.handlers:
                if any(
                    isinstance(child, ast.Continue)
                    for stmt in handler.body
                    for child in ast.walk(stmt)
                ):
                    return True
    return False
