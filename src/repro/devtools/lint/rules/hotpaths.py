"""REP006: no per-record Python loops over frame columns in hot paths.

PR 2 rewrote the analysis layer as ``np.bincount`` / ``np.add.at``
group-bys over the columnar frames (FlowFrame / ProbeFrame /
DeltaFrame) precisely because per-record Python loops were 100-200x
slower and scale with traffic, not with the answer.  This rule keeps
the three analysis hot paths honest: iterating a frame's structured
``.data`` array -- or one of its string-keyed columns -- in a ``for``
loop or comprehension is flagged.  Loops over *aggregated* outputs
(``np.unique`` keys, interned label tables like ``frame.countries``)
are fine and not matched.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.lint.astutil import iter_comprehension_iters
from repro.devtools.lint.engine import ModuleContext, Rule, Violation

#: The analysis hot paths this rule patrols (path suffixes).
HOT_PATH_SUFFIXES = (
    "core/client.py",
    "observatory/analysis.py",
    "whatif/analysis.py",
)


class HotPathVectorizationRule(Rule):
    id = "REP006"
    title = "analysis hot paths stay vectorized (no per-record loops)"
    hint = (
        "group with np.bincount / np.add.at over the frame's integer "
        "codes (the PR 2 idiom) instead of looping rows; loops that are "
        "O(rendered output) may carry a justified REP006 waiver"
    )

    def want(self, ctx: ModuleContext) -> bool:
        return any(ctx.relpath.endswith(suffix) for suffix in HOT_PATH_SUFFIXES)

    def check(self, ctx: ModuleContext) -> Iterable[Violation]:
        for anchor, iterable in iter_comprehension_iters(ctx.tree):
            for offender in _frame_column_reads(iterable):
                yield ctx.violation(
                    self,
                    anchor,
                    f"per-record loop over {offender} in an analysis hot "
                    "path; group-bys here must be vectorized",
                )
                break  # one violation per loop, not per argument
        return ()


def _frame_column_reads(node: ast.AST) -> Iterator[str]:
    """Frame-column expressions inside one loop iterable.

    Matches ``<expr>.data`` (the structured per-record array),
    ``<expr>["column"]`` (a string-keyed structured column), and either
    of those threaded through ``zip``/``enumerate``/``reversed`` or a
    trailing ``.tolist()``.
    """
    if isinstance(node, ast.Attribute):
        if node.attr == "data":
            yield _describe(node)
        elif node.attr == "tolist":
            yield from _frame_column_reads(node.value)
    elif isinstance(node, ast.Subscript):
        slice_node = node.slice
        if isinstance(slice_node, ast.Constant) and isinstance(slice_node.value, str):
            yield _describe(node)
    elif isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if name in ("zip", "enumerate", "reversed", "iter", "list", "tuple"):
            for argument in node.args:
                yield from _frame_column_reads(argument)
        elif name == "tolist":
            yield from _frame_column_reads(func.value)  # type: ignore[union-attr]


def _describe(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our inputs
        return "a frame column"
