"""REP011: sentinel thresholds live in ``repro/sentinel/config.py``.

The significance model's whole value is that its thresholds are
conservative, reviewed, and *in one place*: a z-score cutoff buried in
detector code drifts silently, and two call sites comparing against
different literals means two significance models nobody decided to
have.  Inside ``repro/sentinel/`` (the config module excepted), any
float literal used in a comparison -- or bound to a module-level
constant -- is a hard-coded threshold and must move into
:class:`repro.sentinel.config.SentinelConfig` (or a named constant in
that module) and be referenced by attribute.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.engine import ModuleContext, Rule, Violation

#: The one module thresholds belong in.
CONFIG_SUFFIX = "sentinel/config.py"


def _float_literal(node: ast.AST) -> bool:
    """A bare float constant, or the unary minus of one."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and type(node.value) is float


class ThresholdLocalityRule(Rule):
    id = "REP011"
    title = "sentinel thresholds live in sentinel/config.py only"
    hint = (
        "move the float literal into repro/sentinel/config.py (a "
        "SentinelConfig field or a named module constant) and compare "
        "against the attribute; detector and series code must carry no "
        "hard-coded thresholds of its own"
    )

    def want(self, ctx: ModuleContext) -> bool:
        relpath = ctx.relpath
        in_sentinel = relpath.startswith("sentinel/") or "/sentinel/" in relpath
        return in_sentinel and not relpath.endswith(CONFIG_SUFFIX)

    def check(self, ctx: ModuleContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            if any(_float_literal(operand) for operand in operands):
                yield ctx.violation(
                    self,
                    node,
                    "float literal in a comparison is a hard-coded "
                    f"threshold; it belongs in {CONFIG_SUFFIX}",
                )
        for node in ctx.tree.body:  # module level only: a constant is a knob
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _float_literal(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    yield ctx.violation(
                        self,
                        node,
                        f"module-level float constant {target.id} is a "
                        f"threshold knob; it belongs in {CONFIG_SUFFIX}",
                    )
