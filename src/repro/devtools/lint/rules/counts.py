"""REP010: counters live in the telemetry registry, not side dicts.

Before :mod:`repro.telemetry`, every subsystem grew its own module-level
``*_COUNTS`` dict (``BUILD_COUNTS``, ``RETRY_COUNTS``, ...).  Those
dicts were invisible to ``GET /metrics``, died with procpool workers
instead of merging into the parent, and each invented its own reset
hook.  The registry fixes all three, so a *new* module-level
``*_COUNTS`` binding outside ``repro/telemetry/`` is a regression: the
counter must be a registry instrument
(``telemetry.registry().counter(...)``), optionally re-exported under a
legacy name through :func:`repro.telemetry.counter_view` -- and such a
compatibility view carries an explicit waiver naming the instrument it
fronts.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.devtools.lint.engine import ModuleContext, Rule, Violation

#: ``BUILD_COUNTS``, ``_STORE_COUNTS``, ``RETRY_COUNTS`` -- any
#: module-level constant-style name ending in ``_COUNTS``.
_COUNTS_NAME_RE = re.compile(r"^_?[A-Z][A-Za-z0-9_]*_COUNTS$")


class CounterRegistryRule(Rule):
    id = "REP010"
    title = "counters are telemetry-registry instruments, not module dicts"
    hint = (
        "create the counter with repro.telemetry.registry().counter(...) "
        "so it renders on /metrics, merges across procpool workers, and "
        "resets with the registry; if a legacy *_COUNTS name must survive, "
        "front the instrument with telemetry.counter_view and waive this "
        "rule naming the instrument the view wraps"
    )

    def want(self, ctx: ModuleContext) -> bool:
        # The telemetry package itself defines the registry and the
        # CounterView compatibility shim; everywhere else is in scope.
        relpath = ctx.relpath
        return not (
            relpath.startswith("telemetry/") or "/telemetry/" in relpath
        )

    def check(self, ctx: ModuleContext) -> Iterable[Violation]:
        for node in ctx.tree.body:  # module level only: locals are fine
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if _COUNTS_NAME_RE.match(target.id):
                    yield ctx.violation(
                        self,
                        node,
                        f"module-level counter {target.id} bypasses the "
                        "telemetry registry; it will not render on /metrics, "
                        "will not merge out of pool workers, and needs its "
                        "own reset hook",
                    )
