"""REP004 + REP005: the registry's declarative contracts hold statically.

REP004 -- every ``@artifact`` registration declares which session layers
it reads (``needs=...``, a literal subset of the registry's ``LAYERS``
vocabulary) and documents itself (the registry lifts the docstring's
first line into ``repro list``).  An artifact with no ``needs`` hides
its build cost; one with an unknown layer would fail only at import
time, and only if something imports it.

REP005 -- every :class:`~repro.whatif.spec.Intervention` subclass
declares the layers it perturbs (``LAYERS``, a literal subset of
``PERTURBABLE_LAYERS``).  That declaration is what the overlay engine
uses to decide which caches to fork; an empty or unknown declaration
means a counterfactual that silently reuses baseline universes it
actually changed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.astutil import dotted_name, string_elements
from repro.devtools.lint.engine import ModuleContext, Project, Rule, Violation

#: Fallbacks when the linted tree does not carry the vocabulary modules
#: (fixture corpora); the real tree overrides these from the source.
DEFAULT_REGISTRY_LAYERS = frozenset(
    {"traffic", "census", "cloud", "dependencies", "observatory", "whatif"}
)
DEFAULT_PERTURBABLE_LAYERS = frozenset({"traffic", "census", "observatory"})


def _module_level_string_set(ctx: ModuleContext, name: str) -> frozenset[str] | None:
    """A module-level ``NAME = frozenset({...})`` literal, when present."""
    for node in ctx.tree.body:
        targets: list[ast.expr] = []
        value: ast.AST | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                elements = string_elements(value)
                if elements is not None:
                    return frozenset(elements)
    return None


class ArtifactContractRule(Rule):
    id = "REP004"
    title = "@artifact declares known layers and carries a docstring"
    hint = (
        "declare needs=(...) as a literal tuple of registry layers "
        "(repro.api.registry.LAYERS) and give the renderer a docstring -- "
        "its first line becomes the artifact's description in `repro list`"
    )

    def __init__(self) -> None:
        self._decorated: list[tuple[ModuleContext, ast.FunctionDef, ast.Call]] = []
        self._layers: frozenset[str] | None = None

    def check(self, ctx: ModuleContext) -> Iterable[Violation]:
        if ctx.relpath.endswith("api/registry.py"):
            self._layers = _module_level_string_set(ctx, "LAYERS")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                name = dotted_name(decorator.func) or ""
                if name == "artifact" or name.endswith(".artifact"):
                    self._decorated.append((ctx, node, decorator))
        return ()

    def finalize(self, project: Project) -> Iterable[Violation]:
        layers = self._layers or DEFAULT_REGISTRY_LAYERS
        for ctx, fn, decorator in self._decorated:
            needs = _needs_argument(decorator)
            if needs is None:
                yield ctx.violation(
                    self,
                    decorator,
                    f"artifact renderer {fn.name!r} does not declare its "
                    "layers: pass needs=(...) as a literal tuple",
                )
            else:
                declared = string_elements(needs)
                if declared is None:
                    yield ctx.violation(
                        self,
                        needs,
                        f"artifact renderer {fn.name!r}: needs must be a "
                        "literal collection of layer-name strings",
                    )
                elif not declared:
                    yield ctx.violation(
                        self,
                        needs,
                        f"artifact renderer {fn.name!r} declares no layers; "
                        "every artifact reads at least one session layer",
                    )
                else:
                    unknown = sorted(set(declared) - layers)
                    if unknown:
                        yield ctx.violation(
                            self,
                            needs,
                            f"artifact renderer {fn.name!r} declares unknown "
                            f"layers {unknown}; known: {sorted(layers)}",
                        )
            if ast.get_docstring(fn) is None:
                yield ctx.violation(
                    self,
                    fn,
                    f"artifact renderer {fn.name!r} has no docstring "
                    "(its first line is the registry description)",
                )


def _needs_argument(decorator: ast.Call) -> ast.AST | None:
    for keyword in decorator.keywords:
        if keyword.arg == "needs":
            return keyword.value
    if len(decorator.args) >= 2:
        return decorator.args[1]
    return None


class InterventionContractRule(Rule):
    id = "REP005"
    title = "Intervention subclasses declare perturbed layers"
    hint = (
        "declare LAYERS: ClassVar[frozenset[str]] = frozenset({...}) with "
        "layers from repro.whatif.spec.PERTURBABLE_LAYERS -- the overlay "
        "engine rebuilds exactly (and only) what this set names"
    )

    def __init__(self) -> None:
        self._classes: list[tuple[ModuleContext, ast.ClassDef]] = []
        self._vocabulary: frozenset[str] | None = None

    def check(self, ctx: ModuleContext) -> Iterable[Violation]:
        vocabulary = _module_level_string_set(ctx, "PERTURBABLE_LAYERS")
        if vocabulary is not None:
            self._vocabulary = vocabulary
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for base in node.bases:
                base_name = dotted_name(base) or ""
                if base_name == "Intervention" or base_name.endswith(".Intervention"):
                    self._classes.append((ctx, node))
                    break
        return ()

    def finalize(self, project: Project) -> Iterable[Violation]:
        vocabulary = self._vocabulary or DEFAULT_PERTURBABLE_LAYERS
        for ctx, node in self._classes:
            declared = _class_layers(node)
            if declared is None:
                yield ctx.violation(
                    self,
                    node,
                    f"intervention {node.name} does not declare LAYERS as a "
                    "literal frozenset of perturbed-layer names",
                )
                continue
            if not declared:
                yield ctx.violation(
                    self,
                    node,
                    f"intervention {node.name} declares an empty LAYERS set; "
                    "an intervention that perturbs nothing is a no-op",
                )
                continue
            unknown = sorted(set(declared) - vocabulary)
            if unknown:
                yield ctx.violation(
                    self,
                    node,
                    f"intervention {node.name} declares unknown layers "
                    f"{unknown}; perturbable: {sorted(vocabulary)}",
                )


def _class_layers(node: ast.ClassDef) -> list[str] | None:
    for statement in node.body:
        targets: list[ast.expr] = []
        value: ast.AST | None = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        if value is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "LAYERS":
                return string_elements(value)
    return None
