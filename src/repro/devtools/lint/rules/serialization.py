"""REP003: persistence goes through ``store/serialize.py``, pickle-safe.

The warehouse's codec is the *only* place allowed to deserialize pickled
bytes (it whitelists what it reads and externalizes every ndarray into
an ``allow_pickle=False`` npz).  A stray ``pickle.load`` elsewhere is an
arbitrary-code-execution hole and a schema-drift hazard; an ``np.load``
without ``allow_pickle=False`` silently re-opens the object-array door
the codec exists to close.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.astutil import import_aliases, resolve_call_name, walk_calls
from repro.devtools.lint.engine import ModuleContext, Rule, Violation

#: The one module allowed to call the pickle/npz deserializers.
CODEC_SUFFIX = "store/serialize.py"

_PICKLE_READERS = frozenset(
    {"pickle.load", "pickle.loads", "pickle.Unpickler"}
)


class SerializationRule(Rule):
    id = "REP003"
    title = "deserialization confined to the store codec, allow_pickle=False"
    hint = (
        "load persisted objects through repro.store.serialize (the codec "
        "whitelists classes and keeps ndarrays in allow_pickle=False npz); "
        "every np.load must pass allow_pickle=False explicitly"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Violation]:
        in_codec = ctx.relpath.endswith(CODEC_SUFFIX)
        aliases = import_aliases(ctx.tree)
        for call in walk_calls(ctx.tree):
            name = resolve_call_name(call.func, aliases)
            if name is None:
                continue
            if name in _PICKLE_READERS and not in_codec:
                yield ctx.violation(
                    self,
                    call,
                    f"{name}() outside {CODEC_SUFFIX}: pickled bytes may only "
                    "be read by the store codec",
                )
            elif name == "numpy.load":
                if not in_codec:
                    yield ctx.violation(
                        self,
                        call,
                        f"np.load() outside {CODEC_SUFFIX}: array persistence "
                        "goes through the store codec",
                    )
                if not _passes_allow_pickle_false(call):
                    yield ctx.violation(
                        self,
                        call,
                        "np.load() without allow_pickle=False: object arrays "
                        "would unpickle arbitrary bytes",
                    )
        return ()


def _passes_allow_pickle_false(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "allow_pickle":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            )
    return False
