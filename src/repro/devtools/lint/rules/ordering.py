"""REP008: set iteration order must not leak into outputs.

Python ``set``/``frozenset`` iteration order depends on element hashes
and insertion history -- with ``PYTHONHASHSEED`` randomization it can
differ between *processes*, which is exactly the kind of nondeterminism
the content-addressed store and the golden wire-schema tests cannot
tolerate.  Iterating directly over a set literal, a set comprehension,
or a ``set(...)``/``frozenset(...)`` call (without wrapping it in
``sorted(...)``) is flagged wherever it appears: if the order truly
cannot matter, sorting is cheap; if it can, sorting is the fix.

Iterating a *variable* that happens to hold a set is deliberately not
matched -- the rule stays precise (no false positives on membership
accumulators) at the cost of recall, and the fixture corpus documents
that boundary.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.astutil import dotted_name, iter_comprehension_iters
from repro.devtools.lint.engine import ModuleContext, Rule, Violation


class SetOrderingRule(Rule):
    id = "REP008"
    title = "no unsorted set iteration feeding deterministic outputs"
    hint = (
        "wrap the set in sorted(...) (with a key= for non-orderable "
        "elements) so artifact bytes never depend on hash ordering"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Violation]:
        for anchor, iterable in iter_comprehension_iters(ctx.tree):
            description = _unsorted_set_expression(iterable)
            if description is not None:
                yield ctx.violation(
                    self,
                    anchor,
                    f"iteration over {description} uses hash order; "
                    "wrap it in sorted(...)",
                )
        return ()


def _unsorted_set_expression(node: ast.AST) -> str | None:
    """A description of ``node`` when it is a set built in place."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return f"a {name}(...) call"
    return None
