"""REP007: no silently swallowed errors in the serving and store tiers.

``serve/`` and ``store/`` are the long-running, operator-facing tiers:
an exception that vanishes into ``except: pass`` there is a corrupted
warehouse entry nobody notices or a serving degradation with no trace.
Degrade-to-rebuild is the *documented* contract of those tiers -- but
every degradation must leave a mark (a warning, a log line, an error
counter) or re-raise.  Bare ``except:`` is flagged unconditionally (it
catches ``KeyboardInterrupt``/``SystemExit`` too); ``except
Exception``/``BaseException`` is flagged when the handler body does
nothing at all.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.engine import ModuleContext, Rule, Violation

#: The tiers this rule patrols (posix path fragments).
SCOPED_FRAGMENTS = ("serve/", "store/")

_BROAD = ("Exception", "BaseException")


class SwallowedErrorRule(Rule):
    id = "REP007"
    title = "serve/store error handlers log, count, or re-raise"
    hint = (
        "record the degradation (warnings.warn, a STORE_COUNTS/error "
        "counter, an errors list) or re-raise; narrow the except type "
        "if only specific failures are expected"
    )

    def want(self, ctx: ModuleContext) -> bool:
        return any(fragment in ctx.relpath for fragment in SCOPED_FRAGMENTS)

    def check(self, ctx: ModuleContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.violation(
                    self,
                    node,
                    "bare 'except:' swallows KeyboardInterrupt and "
                    "SystemExit; catch Exception (and handle it) at most",
                )
                continue
            if _is_broad(node.type) and _body_does_nothing(node.body):
                yield ctx.violation(
                    self,
                    node,
                    "'except Exception' with an empty body: the error "
                    "disappears without a warning, counter, or log line",
                )
        return ()


def _is_broad(type_node: ast.AST) -> bool:
    names: list[ast.AST]
    if isinstance(type_node, ast.Tuple):
        names = list(type_node.elts)
    else:
        names = [type_node]
    for name in names:
        if isinstance(name, ast.Name) and name.id in _BROAD:
            return True
        if isinstance(name, ast.Attribute) and name.attr in _BROAD:
            return True
    return False


def _body_does_nothing(body: list[ast.stmt]) -> bool:
    """True when the handler is only ``pass``, ``...``, or docstrings."""
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
            continue  # docstring or bare `...`
        return False
    return True
