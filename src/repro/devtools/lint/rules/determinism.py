"""REP001: no ambient nondeterminism in library code.

The reproduction's parallel == sequential bit-identity and its
content-addressed warm starts both assume that *every* random draw
flows through :mod:`repro.util.rng` substreams and that no build path
reads the wall clock.  One stray ``random.random()`` or
``datetime.now()`` silently breaks cache keys, golden artifacts, and
the sweep's determinism tests -- this rule flags them at the call site.

Seeded construction is explicitly allowed: ``np.random.default_rng``,
``Generator``, ``SeedSequence`` and friends are how ``util.rng`` builds
its streams in the first place.
"""

from __future__ import annotations

from typing import Iterable

from repro.devtools.lint.astutil import import_aliases, resolve_call_name, walk_calls
from repro.devtools.lint.engine import ModuleContext, Rule, Violation

#: Fully-qualified callables that read ambient entropy or the wall clock.
BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Prefixes banned wholesale (any attribute under them).
BANNED_PREFIXES = ("random.", "secrets.")

#: ``numpy.random`` names that are *seeded construction*, not global state.
NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: The substream API callers should be pointed at.
_HINT = (
    "draw through a repro.util.rng.RngStream substream (seeded, labelled) "
    "so builds stay bit-identical; wall-clock/entropy reads outside the "
    "library need a justified '# replint: allow[REP001] ...' waiver"
)


class NondeterminismRule(Rule):
    id = "REP001"
    title = "no unseeded randomness or wall-clock reads in library code"
    hint = _HINT

    def want(self, ctx: ModuleContext) -> bool:
        # The rng module itself constructs the seeded generators, and
        # devtools is offline tooling, not build-path library code.
        return not ctx.relpath.endswith("util/rng.py") and "devtools/" not in ctx.relpath

    def check(self, ctx: ModuleContext) -> Iterable[Violation]:
        aliases = import_aliases(ctx.tree)
        for call in walk_calls(ctx.tree):
            name = resolve_call_name(call.func, aliases)
            if name is None:
                continue
            reason = _ban_reason(name)
            if reason is not None:
                yield ctx.violation(self, call, reason)


def _ban_reason(name: str) -> str | None:
    """Why ``name`` is nondeterministic, or ``None`` when it is fine."""
    if name in BANNED_CALLS:
        return f"{name}() is nondeterministic (wall clock / ambient entropy)"
    for prefix in BANNED_PREFIXES:
        if name.startswith(prefix):
            return (
                f"{name}() draws from unseeded global state; "
                "RNG must flow through util.rng substreams"
            )
    if name.startswith("numpy.random."):
        tail = name[len("numpy.random."):]
        head = tail.partition(".")[0]
        if head not in NUMPY_RANDOM_ALLOWED:
            return (
                f"{name}() uses numpy's legacy global RNG state; "
                "use np.random.default_rng via util.rng substreams"
            )
    return None
