"""REP002: every module-level ``_*_CACHE`` dict is registered.

``repro.api.session._ALL_CACHES`` is the single list of process-wide
layer caches: ``clear_caches()`` empties them between overlay runs and
the sweep workers prime them.  A cache dict that any module grows on
the side but never registers survives ``clear_caches()`` -- exactly the
silent cross-scenario leak the whatif engine must never have.  This is
the cross-module generalization of the reflection test that previously
covered ``session.py`` alone: *any* ``_*_CACHE`` dict in *any* linted
module must be reachable from the ``_ALL_CACHES`` literal (or via an
explicit ``_ALL_CACHES[...] = ...`` registration), or carry a justified
waiver.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.lint.astutil import dotted_name
from repro.devtools.lint.engine import ModuleContext, Project, Rule, Violation

_CACHE_NAME_RE = re.compile(r"^_[A-Za-z0-9_]*_CACHE$")

#: The registry dict's canonical name in ``repro.api.session``.
REGISTRY_NAME = "_ALL_CACHES"


def _is_dict_valued(node: ast.AST) -> bool:
    """Whether an assignment value builds a dict (literal, comp, call)."""
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("dict", "collections.defaultdict", "defaultdict", "OrderedDict",
                        "collections.OrderedDict")
    return False


def _last_segment(node: ast.AST) -> str | None:
    """``session._FOO_CACHE`` and ``_FOO_CACHE`` both yield ``_FOO_CACHE``."""
    name = dotted_name(node)
    if name is None:
        return None
    return name.rpartition(".")[2]


class CacheRegistryRule(Rule):
    id = "REP002"
    title = "module-level layer caches registered in session._ALL_CACHES"
    hint = (
        "add the cache to repro.api.session._ALL_CACHES (clear_caches and "
        "the sweep workers iterate it), or waive with a justification if "
        "the dict is a pure content-keyed memo that never leaks state"
    )

    def __init__(self) -> None:
        #: (ctx, cache name, defining node) per module-level cache dict.
        self._caches: list[tuple[ModuleContext, str, ast.AST]] = []
        #: Cache names reachable from an ``_ALL_CACHES`` registration.
        self._registered: set[str] = set()

    def check(self, ctx: ModuleContext) -> Iterable[Violation]:
        for node in ctx.tree.body:  # module level only: nested dicts are local
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == REGISTRY_NAME and isinstance(value, ast.Dict):
                    for entry in value.values:
                        segment = _last_segment(entry)
                        if segment is not None:
                            self._registered.add(segment)
                elif _CACHE_NAME_RE.match(target.id) and _is_dict_valued(value):
                    self._caches.append((ctx, target.id, node))
        # Explicit registrations anywhere: ``_ALL_CACHES["name"] = _X_CACHE``.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and _last_segment(target.value) == REGISTRY_NAME
                ):
                    segment = _last_segment(node.value)
                    if segment is not None:
                        self._registered.add(segment)
        return ()

    def finalize(self, project: Project) -> Iterable[Violation]:
        for ctx, name, node in self._caches:
            if name not in self._registered:
                yield ctx.violation(
                    self,
                    node,
                    f"module-level cache {name} is not registered in "
                    f"session.{REGISTRY_NAME}; clear_caches() will never "
                    "empty it and sweep workers will never prime it",
                )


def unregistered_caches(paths: Sequence[Path] | None = None) -> list[Violation]:
    """The REP002 cross-module pass alone, for the test suite.

    ``tests/api/test_session.py`` calls this instead of re-implementing
    the reflection check, so the test and the linter cannot drift.
    Defaults to the installed ``repro`` source tree.
    """
    from repro.devtools.lint.engine import lint_paths

    if paths is None:
        import repro

        paths = [Path(repro.__file__).resolve().parent.parent]
    return lint_paths(list(paths), [CacheRegistryRule()], select=["REP002"])
