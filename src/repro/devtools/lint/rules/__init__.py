"""The replint rule set: REP001..REP012, one invariant per rule.

``default_rules()`` returns fresh instances (rules accumulate per-run
state for their cross-module passes, so instances must not be shared
between runs).
"""

from __future__ import annotations

from repro.devtools.lint.engine import Rule
from repro.devtools.lint.rules.caches import CacheRegistryRule
from repro.devtools.lint.rules.counts import CounterRegistryRule
from repro.devtools.lint.rules.determinism import NondeterminismRule
from repro.devtools.lint.rules.errors import SwallowedErrorRule
from repro.devtools.lint.rules.hotpaths import HotPathVectorizationRule
from repro.devtools.lint.rules.ordering import SetOrderingRule
from repro.devtools.lint.rules.profiling import ProfilerConfinementRule
from repro.devtools.lint.rules.registry_contracts import (
    ArtifactContractRule,
    InterventionContractRule,
)
from repro.devtools.lint.rules.retries import AdHocRetryRule
from repro.devtools.lint.rules.serialization import SerializationRule
from repro.devtools.lint.rules.thresholds import ThresholdLocalityRule

RULE_CLASSES: tuple[type[Rule], ...] = (
    NondeterminismRule,
    CacheRegistryRule,
    SerializationRule,
    ArtifactContractRule,
    InterventionContractRule,
    HotPathVectorizationRule,
    SwallowedErrorRule,
    SetOrderingRule,
    AdHocRetryRule,
    CounterRegistryRule,
    ThresholdLocalityRule,
    ProfilerConfinementRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every rule, in id order."""
    return sorted((cls() for cls in RULE_CLASSES), key=lambda rule: rule.id)


def rule_ids() -> list[str]:
    return sorted(cls.id for cls in RULE_CLASSES)
