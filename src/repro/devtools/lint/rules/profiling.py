"""REP012: profiler imports live in ``repro/prof/`` only.

``cProfile``, ``pstats``, and ``tracemalloc`` are process-global
instrumentation: ``sys.setprofile`` state, the tracemalloc peak
register, measurable overhead.  One module owning them means one place
that knows what is being captured, one nesting discipline, and build
code that cannot accidentally ship with a profiler enabled.  Anywhere
outside ``repro/prof/``, profiling goes through the span-capture API
(``repro.prof.profiling`` / ``enable_profiling``) and memory
accounting through ``repro.prof.memory`` -- the same confinement
REP001 gives wall clocks and entropy.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.lint.engine import ModuleContext, Rule, Violation

#: Modules only ``repro/prof/`` may import.
PROFILER_MODULES = ("cProfile", "pstats", "tracemalloc")

#: The one package profiler imports belong in.
PROF_PACKAGE = "prof/"


def _module_root(dotted: str) -> str:
    return dotted.partition(".")[0]


class ProfilerConfinementRule(Rule):
    id = "REP012"
    title = "profiler imports live in repro/prof/ only"
    hint = (
        "route CPU profiling through repro.prof (profiling() / "
        "enable_profiling() attach cProfile captures to trace spans) "
        "and memory accounting through repro.prof.memory; only the "
        "prof package may import cProfile, pstats, or tracemalloc"
    )

    def want(self, ctx: ModuleContext) -> bool:
        relpath = ctx.relpath
        in_prof = relpath.startswith(PROF_PACKAGE) or f"/{PROF_PACKAGE}" in relpath
        return not in_prof

    def check(self, ctx: ModuleContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module] if node.module and node.level == 0 else []
            else:
                continue
            for dotted in names:
                root = _module_root(dotted)
                if root in PROFILER_MODULES:
                    yield ctx.violation(
                        self,
                        node,
                        f"import of {root} outside repro/prof/; span "
                        "profiling and memory accounting go through "
                        "the repro.prof API",
                    )
