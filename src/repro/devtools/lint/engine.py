"""The replint engine: rules, violations, waivers, and the tree walk.

``replint`` is a self-contained :mod:`ast`-based checker for the
repo-specific invariants the test suite can only police after the fact
(determinism, cache registration, serialization discipline, registry
contracts).  A :class:`Rule` sees each parsed module once
(:meth:`Rule.check`) and the whole project at the end
(:meth:`Rule.finalize`), which is how cross-module rules -- "every
``_*_CACHE`` dict is registered in ``session._ALL_CACHES``" -- are
expressed in the same framework as per-file ones.

Suppression is explicit and justified: a violation may be waived with

    something_flagged()  # replint: allow[REP001] why this one is fine

on the flagged line (or on a comment line directly above it).  A waiver
*without* a justification text is itself a violation (``REP000``), so
the tree can never accumulate silent exemptions.
"""

from __future__ import annotations

import ast
import hashlib
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Matches one waiver comment:  ``# replint: allow[REP001,REP002] reason``.
_WAIVER_RE = re.compile(
    r"#\s*replint:\s*allow\[(?P<rules>[A-Z0-9, ]+)\]\s*(?P<reason>.*)$"
)

#: The engine's own rule id: malformed / unjustified waiver comments.
WAIVER_RULE_ID = "REP000"


@dataclass(frozen=True)
class Violation:
    """One rule hit, pinned to a file:line with a stable fingerprint."""

    rule: str
    path: str  # posix-style, relative to the lint root
    line: int
    col: int
    message: str
    hint: str = ""
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity, so baselines survive edits above.

        Built from the rule, the file, and the *text* of the flagged
        line: inserting code elsewhere in the file does not invalidate a
        baseline entry, while touching the flagged line itself does.
        """
        basis = f"{self.rule}:{self.path}:{self.snippet.strip()}"
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def format(self, fix_hints: bool = False) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if fix_hints and self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }


@dataclass
class Waiver:
    """One parsed ``# replint: allow[...]`` comment."""

    line: int
    rules: frozenset[str]
    reason: str


class ModuleContext:
    """One parsed source file, as the rules see it."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.waivers = _parse_waivers(source)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def violation(
        self,
        rule: "Rule | str",
        node: ast.AST | int,
        message: str,
        hint: str | None = None,
    ) -> Violation:
        """Build a violation anchored at ``node`` (or a raw line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        if isinstance(rule, str):
            rule_id, default_hint = rule, ""
        else:
            rule_id, default_hint = rule.id, rule.hint
        return Violation(
            rule=rule_id,
            path=self.relpath,
            line=line,
            col=col,
            message=message,
            hint=hint if hint is not None else default_hint,
            snippet=self.line_text(line),
        )


def _parse_waivers(source: str) -> list[Waiver]:
    """Extract waiver comments with the tokenizer (strings stay inert)."""
    waivers: list[Waiver] = []
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _WAIVER_RE.search(token.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            waivers.append(
                Waiver(
                    line=token.start[0],
                    rules=rules,
                    reason=match.group("reason").strip(),
                )
            )
    except tokenize.TokenError:  # unterminated something: ast.parse said no too
        pass
    return waivers


class Rule:
    """Base class: one invariant, one id, one fix hint.

    Subclasses override :meth:`check` (per file) and/or :meth:`finalize`
    (once, after every file was seen -- the cross-module pass).  Rules
    are instantiated fresh for every lint run, so ``check`` may collect
    state on ``self`` for ``finalize`` to consume.
    """

    id: str = "REP???"
    title: str = ""
    hint: str = ""

    def want(self, ctx: ModuleContext) -> bool:
        """Whether this rule applies to ``ctx`` at all (path scoping)."""
        return True

    def check(self, ctx: ModuleContext) -> Iterable[Violation]:
        return ()

    def finalize(self, project: "Project") -> Iterable[Violation]:
        return ()


@dataclass
class Project:
    """Everything a finalize pass may want: all contexts, keyed lookups."""

    root: Path
    contexts: list[ModuleContext] = field(default_factory=list)

    def find(self, *suffixes: str) -> Iterator[ModuleContext]:
        """Contexts whose relpath ends with any of ``suffixes``."""
        for ctx in self.contexts:
            if any(ctx.relpath.endswith(suffix) for suffix in suffixes):
                yield ctx


def collect_python_files(paths: Sequence[Path]) -> list[tuple[Path, Path]]:
    """Expand files/directories into ``(root, file)`` pairs, sorted.

    For a directory argument the directory itself is the root (relpaths
    are computed against it); for a file argument its parent is.
    """
    pairs: list[tuple[Path, Path]] = []
    for path in paths:
        path = path.resolve()
        if path.is_dir():
            pairs.extend((path, found) for found in sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            pairs.append((path.parent, path))
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return pairs


def _apply_waivers(
    violations: list[Violation], contexts: dict[str, ModuleContext]
) -> list[Violation]:
    """Drop waived violations; flag unjustified or malformed waivers.

    A waiver covers its own line and -- when the waiver comment stands
    alone on its line -- the next line, so long waived statements can
    keep the justification above them.
    """
    covered: dict[str, dict[int, list[Waiver]]] = {}
    kept: list[Violation] = []
    for relpath, ctx in contexts.items():
        per_line: dict[int, list[Waiver]] = {}
        for waiver in ctx.waivers:
            per_line.setdefault(waiver.line, []).append(waiver)
            stripped = ctx.line_text(waiver.line).strip()
            if stripped.startswith("#"):  # standalone comment: covers next line
                per_line.setdefault(waiver.line + 1, []).append(waiver)
        covered[relpath] = per_line

    used: set[int] = set()
    for violation in violations:
        waivers = covered.get(violation.path, {}).get(violation.line, [])
        match = next(
            (w for w in waivers if violation.rule in w.rules and w.reason), None
        )
        if match is None:
            kept.append(violation)
        else:
            used.add(id(match))

    # Unjustified waivers are violations of their own: the justification
    # text is the whole point of the mechanism.
    for relpath, ctx in contexts.items():
        for waiver in ctx.waivers:
            if not waiver.reason:
                kept.append(
                    ctx.violation(
                        WAIVER_RULE_ID,
                        waiver.line,
                        "waiver without a justification: "
                        f"allow[{','.join(sorted(waiver.rules))}] needs a reason",
                        hint="append why this violation is acceptable, e.g. "
                        "# replint: allow[REP001] wall-clock is telemetry only",
                    )
                )
    return kept


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    *,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Run ``rules`` over every ``.py`` file under ``paths``.

    ``select`` filters by rule id (``REP000`` waiver hygiene always
    runs).  Returns violations sorted by (path, line, rule), with
    justified waivers already applied.
    """
    if select:
        wanted = set(select)
        rules = [rule for rule in rules if rule.id in wanted]
    contexts: dict[str, ModuleContext] = {}
    violations: list[Violation] = []
    pairs = collect_python_files(paths)
    project = Project(root=pairs[0][0] if pairs else Path.cwd())
    for root, file in pairs:
        relpath = file.relative_to(root).as_posix()
        try:
            source = file.read_text(encoding="utf-8")
            ctx = ModuleContext(file, relpath, source)
        except (SyntaxError, UnicodeDecodeError) as exc:
            violations.append(
                Violation(
                    rule="REP999",
                    path=relpath,
                    line=getattr(exc, "lineno", 1) or 1,
                    col=0,
                    message=f"could not parse: {exc}",
                )
            )
            continue
        contexts[relpath] = ctx
        project.contexts.append(ctx)
        for rule in rules:
            if rule.want(ctx):
                violations.extend(rule.check(ctx))
    for rule in rules:
        violations.extend(rule.finalize(project))
    violations = _apply_waivers(violations, contexts)
    if select:
        wanted = set(select) | {WAIVER_RULE_ID, "REP999"}
        violations = [v for v in violations if v.rule in wanted]
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))
