"""``replint``: the repo's AST-based invariant checker.

Public surface::

    from repro.devtools.lint import lint_repo, lint_paths, default_rules

    violations = lint_repo()            # the installed repro source tree
    violations = lint_paths([Path("src")], default_rules())

and on the command line::

    python -m repro lint
    python -m repro lint --format json --rule REP002
    python -m repro lint --baseline replint-baseline.json

See :mod:`repro.devtools.lint.engine` for the rule framework and
:mod:`repro.devtools.lint.rules` for the REP001..REP012 invariants.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.lint.engine import (
    WAIVER_RULE_ID,
    ModuleContext,
    Project,
    Rule,
    Violation,
    lint_paths,
)
from repro.devtools.lint.rules import RULE_CLASSES, default_rules, rule_ids
from repro.devtools.lint.rules.caches import unregistered_caches

__all__ = [
    "WAIVER_RULE_ID",
    "ModuleContext",
    "Project",
    "Rule",
    "RULE_CLASSES",
    "Violation",
    "default_rules",
    "default_lint_root",
    "lint_paths",
    "lint_repo",
    "rule_ids",
    "unregistered_caches",
]


def default_lint_root() -> Path:
    """The source tree to lint by default: the parent of ``repro``.

    Linting ``src/`` (not ``src/repro/``) keeps every relpath prefixed
    ``repro/...``, which the baselines and waiver docs rely on.
    """
    import repro

    return Path(repro.__file__).resolve().parent.parent


def lint_repo(
    *,
    select: list[str] | None = None,
) -> list[Violation]:
    """Run every rule over the installed ``repro`` source tree."""
    return lint_paths([default_lint_root()], default_rules(), select=select)
