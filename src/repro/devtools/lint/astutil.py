"""Shared AST helpers: dotted-name resolution through import aliases.

The determinism and serialization rules need to know that ``np.random
.rand(...)`` is really ``numpy.random.rand`` and that ``datetime.now``
after ``from datetime import datetime`` is ``datetime.datetime.now``.
:func:`import_aliases` builds the per-module alias map and
:func:`resolve_call_name` expands a call's dotted chain through it.
"""

from __future__ import annotations

import ast
from typing import Iterator


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted import targets they stand for.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from datetime
    import datetime as dt`` yields ``{"dt": "datetime.datetime"}``.
    Only top-level and function/class-nested imports are walked -- the
    whole tree, since local imports are idiomatic in this repo.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.partition(".")[0]
                target = item.name if item.asname else item.name.partition(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""  # relative imports keep the tail, best effort
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                aliases[local] = f"{base}.{item.name}" if base else item.name
    return aliases


def dotted_name(node: ast.AST) -> str | None:
    """The literal dotted chain of a Name/Attribute node, or ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call_name(func: ast.AST, aliases: dict[str, str]) -> str | None:
    """Expand a call's function chain through the module's import aliases.

    Returns the fully-qualified dotted name when the chain roots in an
    imported name (``np.random.rand`` -> ``numpy.random.rand``), the
    literal chain otherwise, or ``None`` for non-name callables
    (lambdas, subscripts, call results).
    """
    chain = dotted_name(func)
    if chain is None:
        return None
    head, _, rest = chain.partition(".")
    target = aliases.get(head)
    if target is None:
        return chain
    return f"{target}.{rest}" if rest else target


def walk_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def string_elements(node: ast.AST) -> list[str] | None:
    """The string constants of a literal tuple/list/set (or a
    ``set(...)``/``frozenset(...)`` call over one); ``None`` when the
    node is not a fully-literal string collection."""
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset") and len(node.args) == 1 and not node.keywords:
            return string_elements(node.args[0])
        return None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        elements: list[str] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                elements.append(element.value)
            else:
                return None
        return elements
    return None


def iter_comprehension_iters(tree: ast.Module) -> Iterator[tuple[ast.AST, ast.AST]]:
    """Every iteration site: ``for`` statements and comprehension clauses.

    Yields ``(anchor_node, iterable_expr)`` pairs; the anchor carries the
    line/col a violation should point at.
    """
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter, generator.iter
