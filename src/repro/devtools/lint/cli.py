"""``python -m repro lint`` -- the replint command line.

Exit codes follow the ratchet contract: 0 when the tree is clean (or
every violation is covered by ``--baseline``), 1 when any new violation
exists, 2 for usage errors.  ``--write-baseline`` accepts the current
state as the new floor; ``--rule`` narrows a run to specific invariants
while ``--list-rules`` documents them all.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.devtools.lint import default_lint_root, default_rules, lint_paths
from repro.devtools.lint.baseline import load_baseline, new_violations, write_baseline
from repro.devtools.lint.engine import WAIVER_RULE_ID
from repro.devtools.lint.rules import RULE_CLASSES, rule_ids


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Check the repo-specific determinism, cache, and "
        "serialization invariants (REP001..REP012) with the replint "
        "AST engine.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        metavar="PATH",
        help="files or directories to lint (default: the repro source tree)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="REPNNN",
        help="run only this rule id (repeatable; waiver hygiene REP000 "
        "always runs)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="accepted-violations file: only violations beyond it fail "
        "the run",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="accept the current violations as the new baseline and exit 0",
    )
    parser.add_argument(
        "--fix-hints",
        action="store_true",
        help="append each rule's fix hint to text output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _render_rule_table() -> str:
    lines = [f"{WAIVER_RULE_ID}  waivers must carry a justification "
             "(# replint: allow[REPNNN] reason)"]
    for cls in sorted(RULE_CLASSES, key=lambda c: c.id):
        lines.append(f"{cls.id}  {cls.title}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.list_rules:
        print(_render_rule_table())
        return 0

    known = set(rule_ids()) | {WAIVER_RULE_ID}
    if args.rule:
        unknown = sorted(set(args.rule) - known)
        if unknown:
            parser.error(
                f"unknown rule id(s) {', '.join(unknown)}; known: "
                + ", ".join(sorted(known))
            )

    paths = [path.resolve() for path in args.paths] or [default_lint_root()]
    for path in paths:
        if not path.exists():
            parser.error(f"no such path: {path}")

    started = time.perf_counter()
    try:
        violations = lint_paths(paths, default_rules(), select=args.rule)
    except FileNotFoundError as exc:
        parser.error(str(exc))
        raise AssertionError("unreachable")  # pragma: no cover
    elapsed = time.perf_counter() - started

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, violations)
        print(
            f"replint: wrote {len(violations)} accepted violation(s) to "
            f"{args.write_baseline}"
        )
        return 0

    fresh = violations
    accepted = 0
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            parser.error(f"could not read baseline {args.baseline}: {exc}")
            raise AssertionError("unreachable")  # pragma: no cover
        fresh = new_violations(violations, baseline)
        accepted = len(violations) - len(fresh)

    if args.format == "json":
        document = {
            "rules": sorted(known),
            "checked_paths": [str(path) for path in paths],
            "elapsed_s": round(elapsed, 3),
            "total": len(violations),
            "baselined": accepted,
            "new": len(fresh),
            "violations": [violation.to_dict() for violation in fresh],
        }
        print(json.dumps(document, indent=2))
    else:
        for violation in fresh:
            print(violation.format(fix_hints=args.fix_hints))
        summary = (
            f"replint: {len(fresh)} new violation(s)"
            + (f", {accepted} baselined" if args.baseline is not None else "")
            + f" ({elapsed:.2f}s)"
        )
        print(summary, file=sys.stderr)
    return 1 if fresh else 0


if __name__ == "__main__":
    raise SystemExit(main())
