"""Baseline files: accepted pre-existing violations, fingerprinted.

A baseline is a committed JSON document mapping violation fingerprints
(rule + file + flagged-line text, line-number free) to a small record of
what was accepted.  ``replint --baseline FILE`` exits 0 when every
current violation is covered and 1 the moment a *new* one appears --
the ratchet that lets a rule land before the last legacy violation is
fixed, without ever letting the count grow.

Fingerprints are multiset-compared: two identical offending lines in
one file need two baseline entries (the ``count`` field), so deleting
one of them and adding another elsewhere still trips the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.devtools.lint.engine import Violation

FORMAT_VERSION = 1


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    """Persist ``violations`` as the accepted baseline at ``path``."""
    counts = Counter(violation.fingerprint for violation in violations)
    entries = {}
    for violation in sorted(violations, key=lambda v: (v.path, v.line, v.rule)):
        entries.setdefault(
            violation.fingerprint,
            {
                "rule": violation.rule,
                "path": violation.path,
                "message": violation.message,
                "count": counts[violation.fingerprint],
            },
        )
    document = {"version": FORMAT_VERSION, "fingerprints": entries}
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_baseline(path: Path) -> Counter:
    """The accepted fingerprint multiset stored at ``path``."""
    document = json.loads(path.read_text())
    version = document.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {FORMAT_VERSION}; regenerate with --write-baseline)"
        )
    accepted: Counter = Counter()
    for fingerprint, entry in document.get("fingerprints", {}).items():
        accepted[fingerprint] = int(entry.get("count", 1))
    return accepted


def new_violations(
    violations: Sequence[Violation], accepted: Counter
) -> list[Violation]:
    """Violations beyond the baseline's multiset (the gate's input)."""
    remaining = Counter(accepted)
    fresh: list[Violation] = []
    for violation in violations:
        if remaining[violation.fingerprint] > 0:
            remaining[violation.fingerprint] -= 1
        else:
            fresh.append(violation)
    return fresh
