"""Shared utilities: deterministic RNG streams, statistics, time, tables.

These helpers are deliberately dependency-light so that every substrate
(network, traffic, web, cloud) and the analysis core can share one set of
idioms for randomness, empirical statistics, and simulated time.
"""

from repro.util.procpool import (
    POOL_UNAVAILABLE_ERRNOS,
    fallback_contexts,
    map_in_pool,
    resolve_worker_count,
    resubmitted_shards,
    warn_pool_fallback,
    warn_shard_resubmission,
)
from repro.util.rng import RngStream, derive_seed
from repro.util.stats import (
    BoxStats,
    Cdf,
    HolmBonferroni,
    WilcoxonResult,
    box_stats,
    empirical_cdf,
    holm_bonferroni,
    quantile,
    wilcoxon_signed_rank,
)
from repro.util.tables import TextTable, format_count_pct, render_series
from repro.util.timeutil import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    SimClock,
    TimeWindow,
    day_index,
    day_of_week,
    hour_of_day,
)

__all__ = [
    "POOL_UNAVAILABLE_ERRNOS",
    "fallback_contexts",
    "map_in_pool",
    "resolve_worker_count",
    "resubmitted_shards",
    "warn_pool_fallback",
    "warn_shard_resubmission",
    "RngStream",
    "derive_seed",
    "BoxStats",
    "Cdf",
    "HolmBonferroni",
    "WilcoxonResult",
    "box_stats",
    "empirical_cdf",
    "holm_bonferroni",
    "quantile",
    "wilcoxon_signed_rank",
    "TextTable",
    "format_count_pct",
    "render_series",
    "DAY",
    "HOUR",
    "MINUTE",
    "WEEK",
    "SimClock",
    "TimeWindow",
    "day_index",
    "day_of_week",
    "hour_of_day",
]
