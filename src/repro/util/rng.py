"""Deterministic random-number streams.

Every stochastic component of the simulation draws from a named substream
derived from a single scenario seed.  This keeps runs reproducible (the same
scenario seed always yields the same universe and the same traffic) while
letting independent subsystems draw without perturbing each other -- adding
one extra draw to the traffic generator must not change which websites the
web-ecosystem builder creates.

The derivation uses SHA-256 over ``(seed, label)`` so that substream seeds
are stable across Python versions and process invocations (unlike ``hash``).
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

_MASK_64 = (1 << 64) - 1

#: Normalized cumulative distributions, keyed by the weight tuple.
#: A pure content-keyed memo (the cdf is a function of the weights
#: alone), so it carries no per-study state: clearing it between
#: overlay runs would only cost recomputation, never change a draw.
# replint: allow[REP002] pure content-keyed memo; holds no per-study state to clear or prime
_CDF_CACHE: dict[tuple, "np.ndarray"] = {}


def derive_seed(seed: int, label: str) -> int:
    """Derive a stable 64-bit substream seed from a root seed and a label.

    >>> derive_seed(1, "traffic") == derive_seed(1, "traffic")
    True
    >>> derive_seed(1, "traffic") != derive_seed(1, "web")
    True
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _MASK_64


class RngStream:
    """A named, seeded random stream with the distributions the repo needs.

    Wraps :class:`numpy.random.Generator` and adds the handful of
    domain-specific draws (Zipf ranks, heavy-tailed flow sizes, weighted
    choices over small catalogs) that the substrates share.
    """

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = seed
        self.label = label
        self._gen = np.random.default_rng(derive_seed(seed, label))

    def substream(self, label: str) -> "RngStream":
        """Return an independent stream derived from this one's identity."""
        return RngStream(derive_seed(self.seed, self.label), label)

    # -- thin pass-throughs -------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return float(self._gen.random())

    def uniform(self, low: float, high: float) -> float:
        return float(self._gen.uniform(low, high))

    def randint(self, low: int, high: int) -> int:
        """Integer in [low, high] inclusive."""
        return int(self._gen.integers(low, high + 1))

    def normal(self, mean: float, std: float) -> float:
        return float(self._gen.normal(mean, std))

    def exponential(self, mean: float) -> float:
        return float(self._gen.exponential(mean))

    def poisson(self, lam: float) -> int:
        return int(self._gen.poisson(lam))

    def shuffle(self, items: list) -> None:
        self._gen.shuffle(items)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p`` (clamped to [0, 1])."""
        p = min(1.0, max(0.0, p))
        return bool(self._gen.random() < p)

    # -- domain-specific draws ----------------------------------------------

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[int(self._gen.integers(0, len(items)))]

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct items (all of them if ``k >= len(items)``)."""
        if k >= len(items):
            picked = list(items)
            self._gen.shuffle(picked)
            return picked
        idx = self._gen.choice(len(items), size=k, replace=False)
        return [items[int(i)] for i in idx]

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        # Inverse-CDF sampling, replicating Generator.choice(n, p=probs)
        # draw-for-draw (one uniform double, searchsorted over the
        # normalized cumulative) while skipping its per-call validation,
        # which dominates the generators' hot loops.  The cumulative is
        # pure in the weights, so it is memoized: the catalogs draw from
        # a handful of fixed weight vectors hundreds of thousands of
        # times per study.
        key = tuple(weights)
        cdf = _CDF_CACHE.get(key)
        if cdf is None:
            if min(weights) < 0:
                raise ValueError("weights must be non-negative")
            total = float(sum(weights))
            if total <= 0:
                raise ValueError("weights must sum to a positive value")
            cdf = (np.asarray(weights, dtype=float) / total).cumsum()
            cdf /= cdf[-1]
            _CDF_CACHE[key] = cdf
        index = int(cdf.searchsorted(self._gen.random(), side="right"))
        return items[min(index, len(items) - 1)]

    def zipf_rank(self, n: int, alpha: float = 1.0) -> int:
        """Draw a 1-based rank from a truncated Zipf distribution over ``n``.

        Used for popularity: rank 1 is drawn most often.  Uses inverse-CDF
        sampling over the exact normalized weights, so small ``n`` is exact.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** (-alpha)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        u = self._gen.random()
        return int(np.searchsorted(cdf, u) + 1)

    def lognormal_bytes(self, median: float, sigma: float) -> int:
        """Heavy-tailed byte count with the given median (>= 1 byte).

        Flow sizes on real networks are famously heavy-tailed; a lognormal
        body captures the mice while ``sigma`` controls the elephants.
        """
        if median <= 0:
            raise ValueError("median must be positive")
        value = self._gen.lognormal(mean=math.log(median), sigma=sigma)
        return max(1, int(value))

    def pareto_bytes(self, minimum: float, alpha: float) -> int:
        """Pareto-tailed byte count, for elephant flows (downloads, video)."""
        if minimum <= 0:
            raise ValueError("minimum must be positive")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        return max(1, int(minimum * (1.0 + self._gen.pareto(alpha))))

    def subset(self, items: Iterable[T], p: float) -> list[T]:
        """Independent Bernoulli(p) filter over ``items``, order-preserving."""
        return [item for item in items if self.bernoulli(p)]
