"""Plain-text rendering of the paper's tables and figure series.

The benchmark harness regenerates every table and figure of the paper; with
no plotting stack available the "figures" are emitted as aligned text tables
and CDF/series listings that carry the same rows and series the paper
reports.  Keeping the rendering in one module means every bench prints in a
consistent, diffable format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def format_count_pct(count: int, total: int) -> str:
    """Render ``count`` with its share of ``total``, e.g. ``"47158 (57.6%)"``."""
    if total <= 0:
        return f"{count} (-)"
    return f"{count} ({100.0 * count / total:.1f}%)"


@dataclass
class TextTable:
    """A minimal aligned-column text table.

    >>> t = TextTable(["name", "value"])
    >>> t.add_row(["alpha", 1])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    name  | value
    ------+------
    alpha | 1
    """

    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    title: str = ""

    def add_row(self, cells: Sequence[object]) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append([_stringify(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    max_points: int = 12,
) -> str:
    """Render an (x, y) series compactly, subsampling long series.

    Used for CDFs and decomposition components: the printed points let a
    reader check the curve's shape (where it rises, where the knees are)
    without a plot.
    """
    if len(xs) != len(ys):
        raise ValueError("series coordinates must be parallel")
    n = len(xs)
    if n == 0:
        return f"{name}: (empty)"
    if n <= max_points:
        idx = list(range(n))
    else:
        step = (n - 1) / (max_points - 1)
        idx = sorted({round(i * step) for i in range(max_points)})
    points = ", ".join(f"({xs[i]:.3g}, {ys[i]:.3g})" for i in idx)
    return f"{name} [n={n}]: {points}"
