"""Simulated time for the measurement study.

All substrates share one convention: time is a float count of seconds since
the start of the observation window ("sim-epoch").  Day 0 begins at t=0 and
is a Monday, matching how the paper's MSTL analysis indexes daily and weekly
seasonality.  Helper functions convert timestamps to day index, hour-of-day,
and day-of-week; :class:`SimClock` provides a monotonic clock for components
that need ordered events (the flow monitor, Happy Eyeballs races).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY

#: Day-of-week names, day 0 of the simulation being a Monday.
WEEKDAY_NAMES = (
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
)


def day_index(timestamp: float) -> int:
    """The zero-based day containing ``timestamp``."""
    if timestamp < 0:
        raise ValueError("timestamps before the sim epoch are not allowed")
    return int(timestamp // DAY)


def hour_of_day(timestamp: float) -> float:
    """Hour within the day as a float in [0, 24)."""
    if timestamp < 0:
        raise ValueError("timestamps before the sim epoch are not allowed")
    return (timestamp % DAY) / HOUR


def day_of_week(timestamp: float) -> int:
    """Day of week, 0=Monday .. 6=Sunday."""
    return day_index(timestamp) % 7


def is_weekend(timestamp: float) -> bool:
    return day_of_week(timestamp) >= 5


@dataclass(frozen=True)
class TimeWindow:
    """A half-open observation window [start, end) in sim seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("window end must come after its start")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def num_days(self) -> int:
        """Number of (possibly partial) calendar days the window touches."""
        return day_index(self.end - 1e-9) - day_index(self.start) + 1

    def contains(self, timestamp: float) -> bool:
        return self.start <= timestamp < self.end

    def days(self) -> Iterator[int]:
        """Iterate over zero-based day indices covered by the window."""
        first = day_index(self.start)
        last = day_index(self.end - 1e-9)
        yield from range(first, last + 1)

    @classmethod
    def from_days(cls, start_day: int, num_days: int) -> "TimeWindow":
        """A window spanning ``num_days`` whole days starting at midnight."""
        if num_days <= 0:
            raise ValueError("a window must span at least one day")
        return cls(start=start_day * DAY, end=(start_day + num_days) * DAY)


class SimClock:
    """A monotonic simulated clock.

    Components that need ordering (the conntrack table, Happy Eyeballs
    races) advance this clock explicitly; it refuses to move backwards so
    event logs are always time-sorted.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before the sim epoch")
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("the clock cannot run backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now
