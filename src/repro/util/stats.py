"""Empirical statistics used throughout the analysis core.

Implements the statistical machinery the paper relies on:

* empirical CDFs (Figures 1, 3, 7, 8, 10, 16),
* quantiles and box-plot statistics with 1.5*IQR whiskers (Figures 4, 17),
* the two-sided Wilcoxon signed-rank test with the normal approximation,
  tie and zero corrections, and the rank-biserial effect size ``r``
  (Figure 12),
* Holm-Bonferroni family-wise error control (Figure 12).

The Wilcoxon implementation is written from first principles (Pratt's
zero-handling, mid-ranks for ties, variance tie correction) so the repo does
not silently depend on SciPy behaviour; tests cross-check it against
:func:`scipy.stats.wilcoxon` where the two are comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of ``values`` at ``q`` in [0, 1]."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take the quantile of no values")
    return float(np.quantile(arr, q))


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF: sorted support points and cumulative fractions.

    ``points[i]`` is a sample value and ``fractions[i]`` the fraction of
    samples less than or equal to it, so the curve is right-continuous and
    ends at 1.0.
    """

    points: tuple[float, ...]
    fractions: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.points) != len(self.fractions):
            raise ValueError("points and fractions must be parallel")

    @property
    def n(self) -> int:
        return len(self.points)

    def fraction_at_or_below(self, x: float) -> float:
        """F(x): the fraction of samples <= x."""
        idx = np.searchsorted(np.asarray(self.points), x, side="right")
        if idx == 0:
            return 0.0
        return self.fractions[idx - 1]

    def value_at_fraction(self, q: float) -> float:
        """Smallest sample value v with F(v) >= q (the q-th quantile)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {q}")
        fracs = np.asarray(self.fractions)
        idx = int(np.searchsorted(fracs, q, side="left"))
        idx = min(idx, len(self.points) - 1)
        return self.points[idx]


def empirical_cdf(values: Sequence[float]) -> Cdf:
    """Build the empirical CDF of ``values``.

    Duplicate sample values are merged into a single support point carrying
    the cumulative fraction of everything at or below it.
    """
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("cannot build a CDF from no values")
    points, counts = np.unique(arr, return_counts=True)
    fractions = np.cumsum(counts) / arr.size
    return Cdf(tuple(float(p) for p in points), tuple(float(f) for f in fractions))


@dataclass(frozen=True)
class BoxStats:
    """Box-plot statistics as drawn in the paper's Figures 4 and 17."""

    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]
    n: int

    @property
    def iqr(self) -> float:
        return self.p75 - self.p25


def box_stats(values: Sequence[float]) -> BoxStats:
    """Compute box statistics with whiskers at 1.5*IQR, as in the paper.

    Whiskers extend to the most extreme sample still inside the 1.5*IQR
    fences; samples beyond the fences are reported as outliers.
    """
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("cannot compute box stats of no values")
    p25 = float(np.quantile(arr, 0.25))
    p50 = float(np.quantile(arr, 0.50))
    p75 = float(np.quantile(arr, 0.75))
    iqr = p75 - p25
    low_fence = p25 - 1.5 * iqr
    high_fence = p75 + 1.5 * iqr
    inside = arr[(arr >= low_fence) & (arr <= high_fence)]
    if inside.size:
        whisker_low = float(inside.min())
        whisker_high = float(inside.max())
    else:  # degenerate: every point is an outlier of itself (cannot happen
        # with iqr >= 0, but keep the invariant whiskers-within-data).
        whisker_low, whisker_high = float(arr.min()), float(arr.max())
    outliers = tuple(float(v) for v in arr[(arr < low_fence) | (arr > high_fence)])
    return BoxStats(
        minimum=float(arr.min()),
        p25=p25,
        median=p50,
        p75=p75,
        maximum=float(arr.max()),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
        n=int(arr.size),
    )


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of a two-sided Wilcoxon signed-rank test.

    Attributes:
        statistic: min(W+, W-), the classic test statistic.
        w_plus: sum of ranks of positive differences.
        w_minus: sum of ranks of negative differences.
        n_used: number of pairs contributing ranks (zeros ranked per Pratt).
        n_nonzero: number of pairs with a nonzero difference.
        z: normal-approximation z-score (signed: positive means the first
           series tends to exceed the second).
        p_value: two-sided p-value from the normal approximation.
        effect_size: rank-biserial r = (W+ - W-) / (W+ + W-), in [-1, 1];
           positive when the first series tends to be larger.
    """

    statistic: float
    w_plus: float
    w_minus: float
    n_used: int
    n_nonzero: int
    z: float
    p_value: float
    effect_size: float


def _midranks(values: np.ndarray) -> np.ndarray:
    """Assign mid-ranks (average rank among ties) to ``values``."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < len(sorted_vals):
        j = i
        while j + 1 < len(sorted_vals) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        avg_rank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = avg_rank
        i = j + 1
    return ranks


def wilcoxon_signed_rank(
    first: Sequence[float],
    second: Sequence[float],
    zero_method: str = "pratt",
) -> WilcoxonResult:
    """Two-sided paired Wilcoxon signed-rank test with effect size.

    Args:
        first, second: paired observations (e.g. a tenant's IPv6-full
            fraction on cloud 1 vs. cloud 2).
        zero_method: ``"pratt"`` ranks zero differences then drops them
            from W+/W- (the default, robust with many ties); ``"wilcox"``
            drops zeros before ranking.

    Raises:
        ValueError: if the inputs differ in length, or fewer than one
            nonzero difference remains.
    """
    x = np.asarray(list(first), dtype=float)
    y = np.asarray(list(second), dtype=float)
    if x.shape != y.shape:
        raise ValueError("paired samples must have equal length")
    if zero_method not in ("pratt", "wilcox"):
        raise ValueError(f"unknown zero_method {zero_method!r}")

    diff = x - y
    if zero_method == "wilcox":
        diff = diff[diff != 0.0]
    n_nonzero = int(np.count_nonzero(diff))
    if n_nonzero == 0:
        raise ValueError("all paired differences are zero; test undefined")

    abs_diff = np.abs(diff)
    ranks = _midranks(abs_diff)
    nonzero = diff != 0.0
    w_plus = float(ranks[(diff > 0.0)].sum())
    w_minus = float(ranks[(diff < 0.0)].sum())
    statistic = min(w_plus, w_minus)

    n = len(diff)
    n_zero = int((~nonzero).sum())
    # Normal approximation; mean/variance follow Pratt's treatment where
    # zero differences contribute to ranks but not to W+/W-.
    mean_w = (n * (n + 1) - n_zero * (n_zero + 1)) / 4.0
    var_w = (
        n * (n + 1) * (2 * n + 1) - n_zero * (n_zero + 1) * (2 * n_zero + 1)
    ) / 24.0
    # Tie correction over groups of tied *nonzero* ranks (the zero group is
    # already accounted for by the Pratt adjustment above).
    _, tie_counts = np.unique(ranks[nonzero], return_counts=True)
    var_w -= float(((tie_counts**3 - tie_counts) / 48.0).sum())
    if var_w <= 0:
        raise ValueError("zero variance: too few distinct differences")

    z = (w_plus - mean_w) / math.sqrt(var_w)
    p_value = float(2.0 * _normal_sf(abs(z)))
    p_value = min(1.0, p_value)
    denom = w_plus + w_minus
    effect_size = (w_plus - w_minus) / denom if denom > 0 else 0.0
    return WilcoxonResult(
        statistic=statistic,
        w_plus=w_plus,
        w_minus=w_minus,
        n_used=n,
        n_nonzero=n_nonzero,
        z=float(z),
        p_value=p_value,
        effect_size=float(effect_size),
    )


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal distribution."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@dataclass
class HolmBonferroni:
    """Holm-Bonferroni step-down correction at family-wise level ``alpha``.

    Usage: collect raw p-values, call :meth:`rejections`, and read off which
    hypotheses survive.  This is the correction the paper applies to the 67
    testable cloud pairs in Figure 12.
    """

    alpha: float = 0.05
    p_values: list[float] = field(default_factory=list)

    def add(self, p: float) -> int:
        """Register a raw p-value; returns its index for later lookup."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p-value must be in [0, 1], got {p}")
        self.p_values.append(p)
        return len(self.p_values) - 1


    def rejections(self) -> list[bool]:
        """Return, per registered p-value, whether H0 is rejected."""
        m = len(self.p_values)
        if m == 0:
            return []
        order = sorted(range(m), key=lambda i: self.p_values[i])
        rejected = [False] * m
        for step, idx in enumerate(order):
            threshold = self.alpha / (m - step)
            if self.p_values[idx] <= threshold:
                rejected[idx] = True
            else:
                break  # step-down: once one fails, all larger p fail too
        return rejected

    def adjusted_p_values(self) -> list[float]:
        """Holm step-down adjusted p-values (monotone, capped at 1)."""
        m = len(self.p_values)
        if m == 0:
            return []
        order = sorted(range(m), key=lambda i: self.p_values[i])
        adjusted = [0.0] * m
        running_max = 0.0
        for step, idx in enumerate(order):
            candidate = (m - step) * self.p_values[idx]
            running_max = max(running_max, min(1.0, candidate))
            adjusted[idx] = running_max
        return adjusted


def holm_bonferroni(p_values: Sequence[float], alpha: float = 0.05) -> list[bool]:
    """One-shot Holm-Bonferroni: which of ``p_values`` are significant."""
    corrector = HolmBonferroni(alpha=alpha)
    for p in p_values:
        corrector.add(p)
    return corrector.rejections()
