"""Process-pool fallback reporting shared by the parallel fan-outs.

Both parallel generators (traffic residences, observatory vantage
points) fall back to their sequential path when the host cannot run a
:class:`~concurrent.futures.ProcessPoolExecutor` (sandboxes denying
fork or semaphores, fd/memory exhaustion).  The fallback used to be
silent, so ``parallel=4`` on a sandboxed host *looked* honoured while
quietly running inline; :func:`warn_pool_fallback` makes it a one-time
:class:`RuntimeWarning` per context instead.
"""

from __future__ import annotations

import errno
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

#: OSError errnos that mean "this environment cannot run a process pool"
#: (fork/semaphore denied or resources exhausted) rather than a bug in
#: the parallelized code itself.
POOL_UNAVAILABLE_ERRNOS = frozenset(
    {
        errno.EPERM,
        errno.EACCES,
        errno.ENOSYS,
        errno.EAGAIN,
        errno.ENOMEM,
        errno.EMFILE,
        errno.ENFILE,
    }
)

#: Contexts that have already warned this process.
_WARNED: set[str] = set()


def warn_pool_fallback(context: str, reason: BaseException | str) -> None:
    """Emit a one-time-per-context warning that a pool fell back inline.

    Args:
        context: which fan-out degraded (``"traffic generation"``).
        reason: the triggering exception (or a description).
    """
    if context in _WARNED:
        return
    _WARNED.add(context)
    warnings.warn(
        f"{context}: process pool unavailable ({reason!s} "
        f"[{type(reason).__name__ if isinstance(reason, BaseException) else 'info'}]); "
        "falling back to the sequential path -- results are identical, "
        "but the requested parallelism is not in effect",
        RuntimeWarning,
        stacklevel=3,
    )


def reset_pool_fallback_warnings() -> None:
    """Forget which contexts warned (test isolation hook)."""
    _WARNED.clear()


def resolve_worker_count(parallel: bool | int | None, num_tasks: int) -> int:
    """Worker-process count for a fan-out of ``num_tasks`` independent tasks.

    ``None`` auto-detects (processes only on multi-core machines),
    ``True`` uses every CPU, ``False``/``0``/``1`` force the sequential
    path, and an ``int`` pins the count; never more workers than tasks.
    """
    cpus = os.cpu_count() or 1
    if parallel is None:
        wanted = cpus if cpus > 1 else 1
    elif parallel is True:
        wanted = cpus
    elif parallel is False:
        wanted = 1
    else:
        wanted = int(parallel)
    return max(1, min(wanted, num_tasks))


def map_in_pool(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: int,
    context: str,
    initializer: Callable[..., None] | None = None,
    initargs: Iterable[Any] = (),
) -> list[Any] | None:
    """``pool.map(fn, tasks)`` with the shared degrade-to-inline contract.

    Returns the results in task order, or ``None`` when this environment
    cannot run a process pool (pool creation or dispatch failed) -- after
    emitting the one-time :func:`warn_pool_fallback` warning -- so the
    caller runs its sequential path instead.  An :class:`OSError` whose
    errno is *not* in :data:`POOL_UNAVAILABLE_ERRNOS` is a bug in the
    parallelized code itself and propagates.

    ``initializer``/``initargs`` follow the executor's semantics: use
    them to ship large shared state once per worker instead of once per
    task.
    """
    if workers <= 1 or not tasks:
        return None
    try:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=tuple(initargs)
        ) as pool:
            return list(pool.map(fn, tasks))
    except (BrokenProcessPool, pickle.PicklingError) as exc:
        warn_pool_fallback(context, exc)
        return None
    except OSError as exc:
        if exc.errno not in POOL_UNAVAILABLE_ERRNOS:
            raise
        warn_pool_fallback(context, exc)
        return None
