"""Process-pool fallback reporting shared by the parallel fan-outs.

Both parallel generators (traffic residences, observatory vantage
points) fall back to their sequential path when the host cannot run a
:class:`~concurrent.futures.ProcessPoolExecutor` (sandboxes denying
fork or semaphores, fd/memory exhaustion).  The fallback used to be
silent, so ``parallel=4`` on a sandboxed host *looked* honoured while
quietly running inline; :func:`warn_pool_fallback` makes it a one-time
:class:`RuntimeWarning` instead.

One warning per **process**, not per fan-out: a host that cannot fork
for traffic generation cannot fork for the observatory or a whatif
sweep either, and three copies of the same diagnosis are noise.  The
first fallback names its context and says the degradation applies to
every later fan-out; the rest are recorded (:func:`fallback_contexts`)
but silent.

A pool that *breaks mid-map* (one worker crashed: OOM-killed, killed by
a signal, or an injected :class:`~repro.resilience.faults.
InjectedWorkerCrash`) is different from a pool that never existed --
the surviving shards already computed their results.  ``map_in_pool``
therefore collects per-shard futures and **resubmits only the lost
shards sequentially** in the parent; every task draws from its own
seeded RNG substream, so a resubmitted shard is bit-identical to the
one the crashed worker would have returned, and parallel ≡ sequential
determinism survives the crash.  Resubmissions are recorded in
:func:`resubmitted_shards` and warned about once per process.
"""

from __future__ import annotations

import errno
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

from repro.telemetry import registry as _metrics_registry

_POOL_FALLBACKS = _metrics_registry().counter(
    "pool_fallbacks_total",
    "fan-outs that degraded to the sequential path, per context",
    ("context",),
)
_POOL_RESUBMISSIONS = _metrics_registry().counter(
    "pool_resubmitted_shards_total",
    "shards lost to a mid-map pool crash and re-run in the parent, per context",
    ("context",),
)

#: OSError errnos that mean "this environment cannot run a process pool"
#: (fork/semaphore denied or resources exhausted) rather than a bug in
#: the parallelized code itself.
POOL_UNAVAILABLE_ERRNOS = frozenset(
    {
        errno.EPERM,
        errno.EACCES,
        errno.ENOSYS,
        errno.EAGAIN,
        errno.ENOMEM,
        errno.EMFILE,
        errno.ENFILE,
    }
)

#: Contexts that have fallen back in this process, in order; only the
#: first emitted the warning.
_FELL_BACK: list[str] = []

#: ``(context, shard_count)`` of every mid-map crash recovery, in order;
#: only the first emitted a warning.
_RESUBMITTED: list[tuple[str, int]] = []


def warn_pool_fallback(context: str, reason: BaseException | str) -> None:
    """Emit a one-time-per-process warning that a pool fell back inline.

    Pool unavailability is a property of the *host*, not of one
    fan-out: whichever subsystem (traffic generation, observatory probe
    rounds, a whatif sweep) hits it first warns -- once, for all of
    them -- and later fallbacks only register in
    :func:`fallback_contexts`.

    Args:
        context: which fan-out degraded (``"traffic generation"``).
        reason: the triggering exception (or a description).
    """
    first = not _FELL_BACK
    if context not in _FELL_BACK:
        _FELL_BACK.append(context)
    _POOL_FALLBACKS.inc(context=context)
    if not first:
        return
    warnings.warn(
        f"{context}: process pool unavailable ({reason!s} "
        f"[{type(reason).__name__ if isinstance(reason, BaseException) else 'info'}]); "
        "falling back to the sequential path -- results are identical, "
        "but the requested parallelism is not in effect (this warning is "
        "emitted once per process; every later fan-out degrades the same "
        "way, silently)",
        RuntimeWarning,
        stacklevel=3,
    )


def fallback_contexts() -> tuple[str, ...]:
    """The contexts that degraded to the sequential path, in order."""
    return tuple(_FELL_BACK)


def resubmitted_shards() -> tuple[tuple[str, int], ...]:
    """``(context, lost_shard_count)`` per mid-map crash recovery, in order."""
    return tuple(_RESUBMITTED)


def warn_shard_resubmission(context: str, lost: int) -> None:
    """Record (and once per process, warn about) a mid-map crash recovery."""
    first = not _RESUBMITTED
    _RESUBMITTED.append((context, lost))
    _POOL_RESUBMISSIONS.inc(lost, context=context)
    if not first:
        return
    warnings.warn(
        f"{context}: a pool worker crashed mid-map; re-running {lost} lost "
        "shard(s) sequentially in the parent -- results are bit-identical "
        "(every shard draws from its own seeded substream), but part of the "
        "fan-out ran inline (warned once per process; later recoveries are "
        "recorded in resubmitted_shards() silently)",
        RuntimeWarning,
        stacklevel=3,
    )


def reset_pool_fallback_warnings() -> None:
    """Forget the fallbacks and resubmissions seen so far (test hook)."""
    _FELL_BACK.clear()
    _RESUBMITTED.clear()


def resolve_worker_count(parallel: bool | int | None, num_tasks: int) -> int:
    """Worker-process count for a fan-out of ``num_tasks`` independent tasks.

    ``None`` auto-detects (processes only on multi-core machines),
    ``True`` uses every CPU, ``False``/``0``/``1`` force the sequential
    path, and an ``int`` pins the count; never more workers than tasks.
    """
    cpus = os.cpu_count() or 1
    if parallel is None:
        wanted = cpus if cpus > 1 else 1
    elif parallel is True:
        wanted = cpus
    elif parallel is False:
        wanted = 1
    else:
        wanted = int(parallel)
    return max(1, min(wanted, num_tasks))


def _metered_call(fn: Callable[[Any], Any], task: Any) -> tuple[Any, dict]:
    """Run one shard in a worker, shipping its metric deltas alongside.

    The worker's registry is reset first: a forked child inherits every
    sample the parent had at fork time (and a reused worker still holds
    the previous task's already-shipped delta), so what survives the
    reset and the call is exactly this task's contribution.  The parent
    merges the snapshot out of the map result -- counters that lived
    only in worker processes would otherwise vanish with them.
    """
    worker_registry = _metrics_registry()
    worker_registry.reset()
    result = fn(task)
    return result, worker_registry.snapshot()


def map_in_pool(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: int,
    context: str,
    initializer: Callable[..., None] | None = None,
    initargs: Iterable[Any] = (),
) -> list[Any] | None:
    """Pool-map ``fn`` over ``tasks`` with the shared degradation contract.

    Returns the results in task order, or ``None`` when this environment
    cannot run a process pool at all (pool creation or dispatch failed)
    -- after emitting the one-time :func:`warn_pool_fallback` warning --
    so the caller runs its sequential path instead.  An :class:`OSError`
    whose errno is *not* in :data:`POOL_UNAVAILABLE_ERRNOS` is a bug in
    the parallelized code itself and propagates.

    A pool that breaks *mid-map* does not discard the surviving shards:
    each task is submitted as its own future, and only the shards lost
    to the crash (:class:`BrokenProcessPool` on their result) re-run
    sequentially in the parent -- after re-running ``initializer`` here,
    since the worker state it built died with the pool.  Each task is a
    pure function of its arguments (per-shard RNG substreams), so the
    recovered map is bit-identical to an undisturbed one.

    ``initializer``/``initargs`` follow the executor's semantics: use
    them to ship large shared state once per worker instead of once per
    task.
    """
    if workers <= 1 or not tasks:
        return None
    # Imported here, not at module top: faults sits on top of util.rng,
    # so a module-level import would cycle through the util package init.
    from repro.resilience.faults import fault_hook

    initargs = tuple(initargs)
    try:
        pool = ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        )
    except (BrokenProcessPool, pickle.PicklingError) as exc:
        warn_pool_fallback(context, exc)
        return None
    except OSError as exc:
        if exc.errno not in POOL_UNAVAILABLE_ERRNOS:
            raise
        warn_pool_fallback(context, exc)
        return None
    results: list[Any] = [None] * len(tasks)
    lost: list[int] = []
    try:
        with pool:
            futures: list[Any] = []
            for task in tasks:
                try:
                    futures.append(pool.submit(_metered_call, fn, task))
                except BrokenProcessPool:
                    # The pool died while we were still feeding it; the
                    # unsubmitted tail is lost the same way a crashed
                    # shard is.
                    futures.append(None)
            for index, future in enumerate(futures):
                try:
                    fault_hook("worker-crash", f"{context}: shard {index}")
                    if future is None:
                        raise BrokenProcessPool(
                            f"shard {index} was never submitted (pool broke)"
                        )
                    shard_result, shipped = future.result()
                    _metrics_registry().merge(shipped)
                    results[index] = shard_result
                except BrokenProcessPool:
                    lost.append(index)
    except pickle.PicklingError as exc:
        # Tasks or results this pool cannot ship at all: per-shard
        # recovery cannot help, degrade to the caller's sequential path.
        warn_pool_fallback(context, exc)
        return None
    except OSError as exc:
        if exc.errno not in POOL_UNAVAILABLE_ERRNOS:
            raise
        warn_pool_fallback(context, exc)
        return None
    if lost:
        warn_shard_resubmission(context, len(lost))
        if initializer is not None:
            initializer(*initargs)
        for index in lost:
            results[index] = fn(tasks[index])
    return results
