"""The paper's primary contribution: non-binary IPv6 adoption analyses.

Three measurement perspectives, as in the paper:

* :mod:`repro.core.client` -- how much of a dual-stack household's traffic
  is actually IPv6 (section 3; Table 1, Figures 1, 3, 4, 16, 17).
* :mod:`repro.core.mstl` -- Multi-Seasonal Trend decomposition by LOESS,
  used to show IPv6 traffic is human-driven and diurnal (section 3.3;
  Figures 2, 13, 14, 15).
* :mod:`repro.core.readiness` -- graded website IPv6 readiness:
  IPv4-only / IPv6-partial / IPv6-full / loading-failure (section 4.2;
  Figures 5, 6).
* :mod:`repro.core.deps` -- which resources hold IPv6-partial sites back:
  span, median contribution, categories, what-if adoption (section 4.3;
  Figures 7, 8, 9, 10, 18).
* :mod:`repro.core.cloudstats` -- cloud provider and service adoption,
  multi-cloud tenant comparisons (section 5; Figures 11, 12, Tables 2, 3).
"""

from repro.core.client import (
    AsTrafficEntry,
    DomainTrafficEntry,
    HeavyHitterDay,
    ProtocolMix,
    ResidenceScopeStats,
    ResidenceStats,
    as_traffic_breakdown,
    compute_residence_stats,
    daily_fractions,
    domain_traffic_breakdown,
    heavy_hitter_days,
    hourly_fraction_series,
    protocol_mix,
    shared_as_box_stats,
    shared_domain_box_stats,
)
from repro.core.cloudstats import (
    CloudPairComparison,
    CloudProviderStats,
    DomainCloudView,
    ServiceAdoptionRow,
    attribute_domains,
    cloud_pair_heatmap,
    cloud_provider_breakdown,
    multicloud_tenants,
    overall_domain_counts,
    rank_clouds_by_wins,
    service_adoption_table,
)
from repro.core.deps import (
    DependencyAnalysis,
    DomainImpact,
    analyze_dependencies,
    estimate_version_split_misclassification,
    heavy_hitter_categories,
    resource_type_matrix,
    whatif_adoption_curve,
)
from repro.core.longitudinal import (
    Snapshot,
    adoption_change,
    compare_snapshots,
    run_snapshots,
)
from repro.core.mstl import MstlResult, StlResult, loess_smooth, mstl, stl
from repro.core.readiness import (
    CensusBreakdown,
    SiteClass,
    TopNRow,
    browser_used_ipv4,
    classify_site,
    census_breakdown,
    top_n_breakdown,
)

__all__ = [
    "AsTrafficEntry",
    "DomainTrafficEntry",
    "ResidenceScopeStats",
    "ResidenceStats",
    "as_traffic_breakdown",
    "compute_residence_stats",
    "daily_fractions",
    "domain_traffic_breakdown",
    "hourly_fraction_series",
    "HeavyHitterDay",
    "heavy_hitter_days",
    "ProtocolMix",
    "protocol_mix",
    "shared_as_box_stats",
    "shared_domain_box_stats",
    "CloudPairComparison",
    "CloudProviderStats",
    "DomainCloudView",
    "ServiceAdoptionRow",
    "attribute_domains",
    "cloud_pair_heatmap",
    "cloud_provider_breakdown",
    "multicloud_tenants",
    "service_adoption_table",
    "DependencyAnalysis",
    "DomainImpact",
    "analyze_dependencies",
    "estimate_version_split_misclassification",
    "resource_type_matrix",
    "whatif_adoption_curve",
    "MstlResult",
    "StlResult",
    "loess_smooth",
    "mstl",
    "stl",
    "CensusBreakdown",
    "SiteClass",
    "TopNRow",
    "browser_used_ipv4",
    "classify_site",
    "census_breakdown",
    "top_n_breakdown",
    "overall_domain_counts",
    "rank_clouds_by_wins",
    "heavy_hitter_categories",
    "Snapshot",
    "adoption_change",
    "compare_snapshots",
    "run_snapshots",
]
