"""Longitudinal census comparison (Figure 5's three measurement rounds).

The paper crawls the same list in October 2024, April 2025, and July 2025
and reports the drift per category: IPv4-only shrinking by 0.6 points,
IPv6-full growing by the same -- slow but consistent progress.

:func:`run_snapshots` models the passage of time by nudging the tenant
population's IPv6 inclination upward between rounds (adoption only grows),
holding the universe seed fixed so the same sites are compared;
:func:`compare_snapshots` renders the paper's table with its Change
column and verifies the drift direction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.readiness import CensusBreakdown, census_breakdown
from repro.crawler.crawl import CensusConfig, WebCensus
from repro.util.tables import TextTable, format_count_pct
from repro.web.ecosystem import WebEcosystem, WebEcosystemConfig

#: Per-round increase in the tenant population's IPv6 inclination,
#: calibrated to the paper's ~0.6-point nine-month shift.
DEFAULT_DRIFT_PER_ROUND = 0.02


@dataclass(frozen=True)
class Snapshot:
    """One census round."""

    label: str
    breakdown: CensusBreakdown


def run_snapshots(
    labels: tuple[str, ...] = ("Oct 2024", "Apr 2025", "Jul 2025"),
    num_sites: int = 1500,
    seed: int = 42,
    drift_per_round: float = DEFAULT_DRIFT_PER_ROUND,
    precomputed: dict[int, CensusBreakdown] | None = None,
) -> list[Snapshot]:
    """Crawl the same universe at successive adoption levels.

    Each round rebuilds the universe with the same seed and a higher
    ``inclination_base``: the site population is identical; only the
    propensity to enable IPv6 has moved, as nine months of slow adoption
    would.

    Args:
        precomputed: optional ``round_index -> breakdown`` entries to
            reuse instead of re-crawling that round.  Callers that have
            already crawled an identically-configured universe (round 0
            is the unchanged base population) pass its breakdown here;
            the result is exactly what the crawl would have produced.
    """
    if drift_per_round < 0:
        raise ValueError("adoption drifts forward, not backward")
    snapshots = []
    base_config = WebEcosystemConfig(num_sites=num_sites, seed=seed)
    for round_index, label in enumerate(labels):
        if precomputed is not None and round_index in precomputed:
            snapshots.append(
                Snapshot(label=label, breakdown=precomputed[round_index])
            )
            continue
        config = replace(
            base_config,
            inclination_base=base_config.inclination_base
            + drift_per_round * round_index,
        )
        ecosystem = WebEcosystem(config)
        dataset = WebCensus(ecosystem, CensusConfig(seed=seed)).run()
        snapshots.append(Snapshot(label=label, breakdown=census_breakdown(dataset)))
    return snapshots


def compare_snapshots(snapshots: list[Snapshot]) -> str:
    """Render the Figure 5 table with one column per round and a Change
    column (percentage points, last minus first, over connected sites)."""
    if len(snapshots) < 2:
        raise ValueError("need at least two snapshots to compare")
    table = TextTable(
        ["category"] + [s.label for s in snapshots] + ["Change (pp)"],
        title="Figure 5 (longitudinal): classification per measurement round",
    )

    def row(label: str, selector) -> None:
        cells = [label]
        shares = []
        for snapshot in snapshots:
            b = snapshot.breakdown
            count = selector(b)
            cells.append(format_count_pct(count, b.connection_success))
            shares.append(
                count / b.connection_success if b.connection_success else 0.0
            )
        cells.append(f"{100.0 * (shares[-1] - shares[0]):+.1f}")
        table.add_row(cells)

    row("IPv4-only", lambda b: b.ipv4_only)
    row("AAAA-enabled", lambda b: b.aaaa_enabled)
    row("IPv6-partial", lambda b: b.ipv6_partial)
    row("IPv6-full", lambda b: b.ipv6_full)
    return table.render()


def adoption_change(snapshots: list[Snapshot]) -> float:
    """IPv6-full share change (fraction of connected), last minus first."""
    if len(snapshots) < 2:
        raise ValueError("need at least two snapshots to compare")
    first, last = snapshots[0].breakdown, snapshots[-1].breakdown
    return (
        last.ipv6_full / last.connection_success
        - first.ipv6_full / first.connection_success
    )
