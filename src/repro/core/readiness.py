"""Graded website IPv6 readiness (paper section 4.2).

Classifies each crawled site into the paper's categories:

* **loading-failure** (NXDOMAIN, or DNS/TLS/connection errors): the site
  never loaded; excluded from readiness percentages.
* **IPv4-only**: the main page's domain has no AAAA record.
* **IPv6-partial**: the main page is IPv6-reachable but at least one
  successfully fetched resource is IPv4-only.
* **IPv6-full**: the main page and every fetched resource have AAAA.

Per the paper's methodology, resources that failed to load are excluded
(their failures are orthogonal to IP version), and classification uses
IPv6 *availability*, not which family won the Happy Eyeballs race -- the
race winner is reported separately ("Browser Used IPv4" in Figure 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.crawler.records import CrawlDataset, SiteCrawlResult, SiteFailure
from repro.net.addr import Family


class SiteClass(enum.Enum):
    LOADING_FAILURE_NXDOMAIN = "loading-failure-nxdomain"
    LOADING_FAILURE_OTHER = "loading-failure-other"
    UNKNOWN_PRIMARY = "unknown-primary-domain"
    IPV4_ONLY = "ipv4-only"
    IPV6_PARTIAL = "ipv6-partial"
    IPV6_FULL = "ipv6-full"


def classify_site(result: SiteCrawlResult) -> SiteClass:
    """Classify one crawled site per the paper's scheme."""
    if result.failure is SiteFailure.NXDOMAIN:
        return SiteClass.LOADING_FAILURE_NXDOMAIN
    if result.failure is SiteFailure.UNKNOWN_PRIMARY:
        return SiteClass.UNKNOWN_PRIMARY
    if result.failure is SiteFailure.OTHER:
        return SiteClass.LOADING_FAILURE_OTHER
    main = result.main_page_request()
    if main is None:  # pragma: no cover - connected results always have one
        return SiteClass.LOADING_FAILURE_OTHER
    if not main.has_aaaa:
        return SiteClass.IPV4_ONLY
    fetched = [r for r in result.resource_requests() if r.succeeded]
    if all(r.has_aaaa for r in fetched):
        return SiteClass.IPV6_FULL
    return SiteClass.IPV6_PARTIAL


def browser_used_ipv4(result: SiteCrawlResult) -> bool:
    """True when any successful request of the site went over IPv4."""
    return any(
        r.family_used is Family.V4 for r in result.requests if r.succeeded
    )


@dataclass
class CensusBreakdown:
    """Figure 5's table: counts at each stage of the classification."""

    total: int = 0
    nxdomain: int = 0
    other_failure: int = 0
    connection_success: int = 0
    unknown_primary: int = 0
    ipv4_only: int = 0
    aaaa_enabled: int = 0
    ipv6_partial: int = 0
    ipv6_full: int = 0
    browser_used_ipv4: int = 0
    browser_used_ipv6_only: int = 0
    sites_by_class: dict[SiteClass, list[str]] = field(default_factory=dict)

    def share_of_connected(self, count: int) -> float:
        return count / self.connection_success if self.connection_success else 0.0

    def check_invariants(self) -> None:
        """The partition identities of Figure 5 must hold exactly."""
        if self.total != self.nxdomain + self.other_failure + self.connection_success:
            raise AssertionError("connection-success partition violated")
        classified = self.unknown_primary + self.ipv4_only + self.aaaa_enabled
        if self.connection_success != classified:
            raise AssertionError("classification partition violated")
        if self.aaaa_enabled != self.ipv6_partial + self.ipv6_full:
            raise AssertionError("AAAA-enabled partition violated")
        if self.ipv6_full != self.browser_used_ipv4 + self.browser_used_ipv6_only:
            raise AssertionError("browser-family partition violated")


def census_breakdown(dataset: CrawlDataset) -> CensusBreakdown:
    """Aggregate a census run into Figure 5's table."""
    breakdown = CensusBreakdown(total=len(dataset.results))
    for result in dataset.results:
        site_class = classify_site(result)
        breakdown.sites_by_class.setdefault(site_class, []).append(result.site)
        if site_class is SiteClass.LOADING_FAILURE_NXDOMAIN:
            breakdown.nxdomain += 1
            continue
        if site_class is SiteClass.LOADING_FAILURE_OTHER:
            breakdown.other_failure += 1
            continue
        breakdown.connection_success += 1
        if site_class is SiteClass.UNKNOWN_PRIMARY:
            breakdown.unknown_primary += 1
        elif site_class is SiteClass.IPV4_ONLY:
            breakdown.ipv4_only += 1
        else:
            breakdown.aaaa_enabled += 1
            if site_class is SiteClass.IPV6_PARTIAL:
                breakdown.ipv6_partial += 1
            else:
                breakdown.ipv6_full += 1
                if browser_used_ipv4(result):
                    breakdown.browser_used_ipv4 += 1
                else:
                    breakdown.browser_used_ipv6_only += 1
    breakdown.check_invariants()
    return breakdown


@dataclass(frozen=True)
class TopNRow:
    """One bar of Figure 6."""

    n: int
    classified: int
    ipv4_only: int
    ipv6_partial: int
    ipv6_full: int

    @property
    def ipv6_full_share(self) -> float:
        return self.ipv6_full / self.classified if self.classified else 0.0

    @property
    def ipv4_only_share(self) -> float:
        return self.ipv4_only / self.classified if self.classified else 0.0

    @property
    def ipv6_partial_share(self) -> float:
        return self.ipv6_partial / self.classified if self.classified else 0.0


def top_n_breakdown(
    dataset: CrawlDataset, ns: tuple[int, ...] = (100, 1000, 10000, 100000)
) -> list[TopNRow]:
    """Figure 6: readiness of the top-N slices of the list."""
    classes = {
        result.site: (result.rank, classify_site(result))
        for result in dataset.results
    }
    rows = []
    for n in ns:
        counts = {SiteClass.IPV4_ONLY: 0, SiteClass.IPV6_PARTIAL: 0, SiteClass.IPV6_FULL: 0}
        for rank, site_class in classes.values():
            if rank <= n and site_class in counts:
                counts[site_class] += 1
        classified = sum(counts.values())
        if classified == 0:
            continue
        rows.append(
            TopNRow(
                n=n,
                classified=classified,
                ipv4_only=counts[SiteClass.IPV4_ONLY],
                ipv6_partial=counts[SiteClass.IPV6_PARTIAL],
                ipv6_full=counts[SiteClass.IPV6_FULL],
            )
        )
    return rows
