"""Seasonal-trend decomposition: LOESS, STL, and MSTL.

The paper (section 3.3, after Baltra et al.) applies MSTL -- Multi-Seasonal
Trend decomposition using LOESS (Bandara, Hyndman, Bergmeir 2021) -- to the
IPv6 traffic fraction, separating the long-term trend from daily and weekly
seasonal components plus a residual.  This module implements the full stack
from first principles:

* :func:`loess_smooth` -- locally weighted linear regression with tricube
  weights (Cleveland 1979), supporting evaluation (and extrapolation) at
  arbitrary points;
* :func:`stl` -- the STL inner loop (Cleveland et al. 1990): cycle-
  subseries smoothing, low-pass filtering, deseasonalizing, and trend
  smoothing (the robustness outer loop is omitted; our series have no
  gross outliers by construction);
* :func:`mstl` -- iterated STL over multiple seasonal periods, shortest
  period first.

The decomposition is exactly additive::

    observed == trend + sum(seasonals) + residual
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _tricube(u: np.ndarray) -> np.ndarray:
    """Tricube weight function on |u| <= 1."""
    out = np.clip(1.0 - np.abs(u) ** 3, 0.0, None) ** 3
    return out


def loess_smooth(
    y: np.ndarray,
    window: int,
    x: np.ndarray | None = None,
    x_eval: np.ndarray | None = None,
    degree: int = 1,
) -> np.ndarray:
    """LOESS: locally weighted polynomial regression.

    Args:
        y: observations.
        window: number of nearest observations in each local fit (>= 2
            for degree 1); larger windows smooth harder.
        x: observation positions (default 0..n-1).
        x_eval: positions to evaluate at (default: the observation
            positions).  Points outside the observed range extrapolate
            from the nearest window.
        degree: 0 (local mean) or 1 (local linear).

    Returns:
        Smoothed values at ``x_eval``.
    """
    y = np.asarray(y, dtype=float)
    n = y.size
    if n == 0:
        raise ValueError("cannot smooth an empty series")
    if degree not in (0, 1):
        raise ValueError("degree must be 0 or 1")
    window = int(window)
    if window < degree + 1:
        raise ValueError("window too small for the requested degree")
    window = min(window, n)
    positions = np.arange(n, dtype=float) if x is None else np.asarray(x, dtype=float)
    if positions.size != n:
        raise ValueError("x and y must be parallel")
    targets = positions if x_eval is None else np.asarray(x_eval, dtype=float)

    order = np.argsort(positions, kind="stable")
    xs = positions[order]
    ys = y[order]

    smoothed = np.empty(targets.size, dtype=float)
    half = window
    for i, t in enumerate(targets):
        # Nearest `window` observations to t.
        left = int(np.searchsorted(xs, t))
        lo = max(0, left - half)
        hi = min(n, left + half)
        segment_x = xs[lo:hi]
        segment_y = ys[lo:hi]
        if segment_x.size > window:
            dist = np.abs(segment_x - t)
            keep = np.argpartition(dist, window - 1)[:window]
            keep.sort()
            segment_x = segment_x[keep]
            segment_y = segment_y[keep]
        dist = np.abs(segment_x - t)
        max_dist = dist.max()
        if max_dist <= 0:
            smoothed[i] = float(segment_y.mean())
            continue
        weights = _tricube(dist / (max_dist * 1.0001))
        wsum = weights.sum()
        if wsum <= 0:  # pragma: no cover - tricube>0 inside the window
            smoothed[i] = float(segment_y.mean())
            continue
        if degree == 0:
            smoothed[i] = float((weights * segment_y).sum() / wsum)
            continue
        # Weighted linear fit (closed form).
        wx = (weights * segment_x).sum() / wsum
        wy = (weights * segment_y).sum() / wsum
        cov = (weights * (segment_x - wx) * (segment_y - wy)).sum()
        var = (weights * (segment_x - wx) ** 2).sum()
        slope = cov / var if var > 1e-12 else 0.0
        smoothed[i] = float(wy + slope * (t - wx))
    return smoothed


def _moving_average(values: np.ndarray, length: int) -> np.ndarray:
    """Simple moving average; output is ``len(values) - length + 1`` long."""
    if length < 1:
        raise ValueError("moving-average length must be >= 1")
    if values.size < length:
        raise ValueError("series shorter than the moving-average length")
    kernel = np.ones(length) / length
    return np.convolve(values, kernel, mode="valid")


def _odd(value: int) -> int:
    value = max(3, int(value))
    return value if value % 2 == 1 else value + 1


@dataclass(frozen=True)
class StlResult:
    """One STL decomposition: observed = trend + seasonal + residual."""

    observed: np.ndarray
    trend: np.ndarray
    seasonal: np.ndarray
    residual: np.ndarray
    period: int

    def components(self) -> dict[str, np.ndarray]:
        return {
            "observed": self.observed,
            "trend": self.trend,
            "seasonal": self.seasonal,
            "residual": self.residual,
        }


def stl(
    y: np.ndarray,
    period: int,
    seasonal_window: int | str = "periodic",
    trend_window: int | None = None,
    inner_iterations: int = 2,
) -> StlResult:
    """Seasonal-trend decomposition by LOESS for one seasonal period.

    Args:
        y: the series; must cover at least two full periods.
        period: samples per seasonal cycle (e.g. 24 for daily seasonality
            of hourly data).
        seasonal_window: ``"periodic"`` constrains each cycle-subseries to
            its mean (a stable seasonal profile); an odd integer gives the
            LOESS window used to let the seasonal evolve.
        trend_window: LOESS window of the trend smoother; defaults to the
            smallest odd integer >= 1.5 * period.
        inner_iterations: STL inner-loop count (2 suffices without the
            robustness outer loop).
    """
    y = np.asarray(y, dtype=float)
    n = y.size
    if period < 2:
        raise ValueError("period must be >= 2")
    if n < 2 * period:
        raise ValueError(f"need >= {2 * period} samples for period {period}")
    if inner_iterations < 1:
        raise ValueError("inner_iterations must be >= 1")
    if trend_window is None:
        trend_window = _odd(int(np.ceil(1.5 * period)))
    if isinstance(seasonal_window, str):
        if seasonal_window != "periodic":
            raise ValueError(f"unknown seasonal_window {seasonal_window!r}")
    elif seasonal_window < 3:
        raise ValueError("integer seasonal_window must be >= 3")

    trend = np.zeros(n)
    seasonal = np.zeros(n)
    for _ in range(inner_iterations):
        detrended = y - trend
        extended = np.empty(n + 2 * period)
        # Smooth each cycle-subseries, extended one period both ways.
        for phase in range(period):
            sub = detrended[phase::period]
            if seasonal_window == "periodic":
                values = np.full(sub.size + 2, float(sub.mean()))
            else:
                eval_positions = np.arange(-1, sub.size + 1, dtype=float)
                values = loess_smooth(
                    sub, int(seasonal_window), x_eval=eval_positions
                )
            # values[0] is the pre-extension, values[-1] the post-extension.
            extended[phase::period] = _place_subseries(values, n, period, phase)
        # Low-pass filter the extended cycle field.
        low_pass = _moving_average(extended, period)
        low_pass = _moving_average(low_pass, period)
        low_pass = _moving_average(low_pass, 3)
        low_pass = loess_smooth(low_pass, _odd(period))
        seasonal = extended[period : period + n] - low_pass
        deseasonalized = y - seasonal
        trend = loess_smooth(deseasonalized, trend_window)
    residual = y - trend - seasonal
    return StlResult(
        observed=y, trend=trend, seasonal=seasonal, residual=residual, period=period
    )


def _place_subseries(values: np.ndarray, n: int, period: int, phase: int) -> np.ndarray:
    """Arrange an extended subseries into its slots of the extended field.

    The extended field has length ``n + 2 * period``; subseries ``phase``
    occupies positions ``phase, phase + period, ...`` of it.  ``values``
    holds the subseries' smoothed values including one pre- and one
    post-extension sample.
    """
    slots = np.arange(phase, n + 2 * period, period)
    if slots.size != values.size:
        # The extension always yields sub.size + 2 values; slot count can
        # exceed that by one when n is not a multiple of period.
        if slots.size == values.size + 1:
            values = np.append(values, values[-1])
        else:  # pragma: no cover - defensive
            raise AssertionError("subseries extension mismatch")
    return values


@dataclass(frozen=True)
class MstlResult:
    """Multi-seasonal decomposition:
    observed = trend + sum(seasonals) + residual."""

    observed: np.ndarray
    trend: np.ndarray
    seasonals: dict[int, np.ndarray]
    residual: np.ndarray

    def seasonal(self, period: int) -> np.ndarray:
        return self.seasonals[period]

    def reconstruction(self) -> np.ndarray:
        total = self.trend + self.residual
        for component in self.seasonals.values():
            total = total + component
        return total


def mstl(
    y: np.ndarray,
    periods: list[int] | tuple[int, ...],
    seasonal_window: int | str = "periodic",
    trend_window: int | None = None,
    iterations: int = 2,
) -> MstlResult:
    """MSTL: iterated STL over multiple seasonal periods.

    Periods are processed shortest first (daily before weekly); on each of
    ``iterations`` rounds, each period's seasonal component is re-estimated
    on the series with all *other* seasonal components removed, as in
    Bandara et al. 2021.
    """
    y = np.asarray(y, dtype=float)
    unique_periods = sorted(set(int(p) for p in periods))
    if not unique_periods:
        raise ValueError("at least one seasonal period is required")
    if y.size < 2 * max(unique_periods):
        raise ValueError("series too short for the longest period")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")

    seasonals: dict[int, np.ndarray] = {p: np.zeros(y.size) for p in unique_periods}
    last: StlResult | None = None
    for _ in range(iterations):
        for period in unique_periods:
            others = sum(
                (component for p, component in seasonals.items() if p != period),
                start=np.zeros(y.size),
            )
            last = stl(
                y - others,
                period,
                seasonal_window=seasonal_window,
                trend_window=trend_window,
            )
            seasonals[period] = last.seasonal
    assert last is not None
    trend = last.trend
    residual = y - trend - sum(seasonals.values())
    return MstlResult(observed=y, trend=trend, seasonals=seasonals, residual=residual)
