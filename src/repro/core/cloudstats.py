"""Cloud-provider IPv6 adoption analysis (paper section 5).

Works from crawl records plus the attribution substrates:

* :func:`attribute_domains` resolves every crawled FQDN's A/AAAA
  addresses to owning organizations via BGP origin + AS-to-Org -- and so
  inherits the paper's attribution artifacts: a domain whose A and AAAA
  originate from different organizations (bunny.net/Datacamp, the two
  Akamai entities) appears as *IPv6-only* under one org and *IPv4-only*
  under the other.
* :func:`cloud_provider_breakdown` -- Figure 11 / Table 3.
* :func:`multicloud_tenants` + :func:`cloud_pair_heatmap` -- Figure 12:
  pairwise two-sided Wilcoxon signed-rank tests over tenants shared by
  two clouds, effect size r, Holm-Bonferroni corrected.
* :func:`service_adoption_table` -- Table 2: per-service adoption via
  CNAME-chain service fingerprinting (after He et al.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cloud.providers import CloudProvider, CloudService
from repro.crawler.records import CrawlDataset
from repro.net.addr import IpAddress
from repro.net.asn import AsRegistry, Organization
from repro.net.bgp import RoutingTable
from repro.net.psl import PublicSuffixList, default_psl
from repro.util.stats import HolmBonferroni, wilcoxon_signed_rank


@dataclass(frozen=True)
class DomainCloudView:
    """One FQDN's cloud attribution."""

    fqdn: str
    has_a: bool
    has_aaaa: bool
    v4_org: Organization | None
    v6_org: Organization | None
    cname_chain: tuple[str, ...]

    @property
    def split_origin(self) -> bool:
        """A and AAAA served from different organizations."""
        return (
            self.v4_org is not None
            and self.v6_org is not None
            and self.v4_org != self.v6_org
        )


def attribute_domains(
    dataset: CrawlDataset,
    routing: RoutingTable,
    registry: AsRegistry,
) -> dict[str, DomainCloudView]:
    """Attribute every crawled FQDN to organizations, as the paper does:
    "by the AS that originates the BGP prefix containing the domain's IP
    address", mapped to organizations via the AS-to-Org dataset."""

    # The crawl resolves the same provider addresses for thousands of
    # FQDNs; memoize the trie walk + org lookup per unique address.
    org_cache: dict[IpAddress, Organization | None] = {}

    def org_of(addresses: tuple[IpAddress, ...]) -> Organization | None:
        if not addresses:
            return None
        address = addresses[0]
        if address in org_cache:
            return org_cache[address]
        asn = routing.origin_of(address)
        org = registry.organization_of(asn) if asn is not None else None
        org_cache[address] = org
        return org

    views: dict[str, DomainCloudView] = {}
    for record in dataset.all_requests():
        if record.fqdn in views:
            continue
        views[record.fqdn] = DomainCloudView(
            fqdn=record.fqdn,
            has_a=record.has_a,
            has_aaaa=record.has_aaaa,
            v4_org=org_of(record.v4_addresses),
            v6_org=org_of(record.v6_addresses),
            cname_chain=record.cname_chain,
        )
    return views


@dataclass
class CloudProviderStats:
    """One row of Table 3 / one bar of Figure 11."""

    org: Organization
    ipv4_only: int = 0
    ipv6_full: int = 0
    ipv6_only: int = 0

    @property
    def total(self) -> int:
        return self.ipv4_only + self.ipv6_full + self.ipv6_only

    def share(self, count: int) -> float:
        return count / self.total if self.total else 0.0


def cloud_provider_breakdown(
    views: dict[str, DomainCloudView],
) -> list[CloudProviderStats]:
    """Figure 11 / Table 3: per-organization domain counts by IPv6 status.

    A domain counts under the organization hosting each of its address
    families: dual-stack domains served by one org count there as
    IPv6-full; a split-origin domain counts as IPv6-only at the AAAA org
    and IPv4-only at the A org (the paper's Bunnyway/Akamai artifact).
    """
    stats: dict[str, CloudProviderStats] = {}

    def bucket(org: Organization) -> CloudProviderStats:
        entry = stats.get(org.org_id)
        if entry is None:
            entry = stats[org.org_id] = CloudProviderStats(org=org)
        return entry

    for view in views.values():
        if view.v4_org is not None and view.v6_org is not None:
            if view.v4_org == view.v6_org:
                bucket(view.v4_org).ipv6_full += 1
            else:
                bucket(view.v4_org).ipv4_only += 1
                bucket(view.v6_org).ipv6_only += 1
        elif view.v4_org is not None:
            bucket(view.v4_org).ipv4_only += 1
        elif view.v6_org is not None:
            bucket(view.v6_org).ipv6_only += 1
    return sorted(stats.values(), key=lambda s: (-s.total, s.org.org_id))


def overall_domain_counts(views: dict[str, DomainCloudView]) -> tuple[int, int, int, int]:
    """Table 3's Overall row: (total, ipv4_only, ipv6_full, ipv6_only),
    counting each domain once by its DNS state."""
    total = ipv4_only = full = v6_only = 0
    for view in views.values():
        if not view.has_a and not view.has_aaaa:
            continue
        total += 1
        if view.has_a and view.has_aaaa:
            full += 1
        elif view.has_a:
            ipv4_only += 1
        else:
            v6_only += 1
    return total, ipv4_only, full, v6_only


# -- Figure 12: multi-cloud tenant comparisons --------------------------------


def multicloud_tenants(
    views: dict[str, DomainCloudView],
    psl: PublicSuffixList | None = None,
) -> dict[str, dict[str, list[bool]]]:
    """Group crawled FQDNs into tenants (eTLD+1) and their per-org
    subdomain IPv6 outcomes; keep tenants spanning >= 2 organizations.

    Returns tenant -> org name -> list of per-subdomain IPv6-full flags.
    """
    psl = psl or default_psl()
    tenants: dict[str, dict[str, list[bool]]] = {}
    for view in views.values():
        if view.v4_org is None:
            continue
        etld1 = psl.etld_plus_one(view.fqdn)
        if etld1 is None:
            continue
        org_name = view.v4_org.name
        tenants.setdefault(etld1, {}).setdefault(org_name, []).append(
            view.has_aaaa
        )
    return {
        tenant: by_org
        for tenant, by_org in tenants.items()
        if len(by_org) >= 2
    }


@dataclass(frozen=True)
class CloudPairComparison:
    """One cell of Figure 12's heatmap."""

    org_a: str
    org_b: str
    n_shared: int
    n_differing: int
    effect_size: float  # r > 0: org_a more IPv6-full for shared tenants
    p_value: float
    significant: bool

    @property
    def comparable(self) -> bool:
        return self.n_differing >= 2


def cloud_pair_heatmap(
    tenants: dict[str, dict[str, list[bool]]],
    alpha: float = 0.05,
    min_differing: int = 2,
) -> list[CloudPairComparison]:
    """Figure 12: pairwise Wilcoxon signed-rank comparisons of clouds.

    For each ordered-once pair of organizations, collect tenants hosted on
    both; each tenant contributes its per-cloud fraction of IPv6-full
    subdomains.  Pairs with fewer than ``min_differing`` differing tenants
    are reported as not comparable; the rest are tested two-sided with
    effect size r, then Holm-Bonferroni corrected at ``alpha``.
    """
    org_names = sorted({org for by_org in tenants.values() for org in by_org})
    # Each tenant's per-org IPv6-full fraction is pair-independent;
    # compute it once instead of once per org pair.
    tenant_fractions: list[dict[str, float]] = [
        {org: sum(flags) / len(flags) for org, flags in by_org.items()}
        for by_org in tenants.values()
    ]
    raw: list[CloudPairComparison] = []
    corrector = HolmBonferroni(alpha=alpha)
    testable_indices: list[int] = []
    for i, org_a in enumerate(org_names):
        for org_b in org_names[i + 1 :]:
            first: list[float] = []
            second: list[float] = []
            for by_org in tenant_fractions:
                if org_a in by_org and org_b in by_org:
                    first.append(by_org[org_a])
                    second.append(by_org[org_b])
            differing = sum(1 for x, y in zip(first, second) if x != y)
            if differing < min_differing:
                raw.append(
                    CloudPairComparison(
                        org_a=org_a, org_b=org_b, n_shared=len(first),
                        n_differing=differing, effect_size=0.0, p_value=1.0,
                        significant=False,
                    )
                )
                continue
            result = wilcoxon_signed_rank(first, second, zero_method="pratt")
            testable_indices.append(len(raw))
            corrector.add(result.p_value)
            raw.append(
                CloudPairComparison(
                    org_a=org_a, org_b=org_b, n_shared=len(first),
                    n_differing=differing, effect_size=result.effect_size,
                    p_value=result.p_value, significant=False,
                )
            )
    rejections = corrector.rejections()
    for index, rejected in zip(testable_indices, rejections):
        cell = raw[index]
        raw[index] = CloudPairComparison(
            org_a=cell.org_a, org_b=cell.org_b, n_shared=cell.n_shared,
            n_differing=cell.n_differing, effect_size=cell.effect_size,
            p_value=cell.p_value, significant=rejected,
        )
    return raw


def rank_clouds_by_wins(comparisons: list[CloudPairComparison]) -> list[str]:
    """Order organizations by how often they significantly beat others
    (the row/column order of Figure 12)."""
    scores: dict[str, float] = {}
    for cell in comparisons:
        scores.setdefault(cell.org_a, 0.0)
        scores.setdefault(cell.org_b, 0.0)
        if not cell.significant:
            continue
        scores[cell.org_a] += cell.effect_size
        scores[cell.org_b] -= cell.effect_size
    return sorted(scores, key=lambda org: -scores[org])


# -- Table 2: per-service adoption --------------------------------------------


@dataclass
class ServiceAdoptionRow:
    """One row of Table 2."""

    provider: CloudProvider
    service: CloudService
    total: int = 0
    ipv6_ready: int = 0

    @property
    def share(self) -> float:
        return self.ipv6_ready / self.total if self.total else 0.0


def service_adoption_table(
    views: dict[str, DomainCloudView],
    service_of_cname: Callable[[str], tuple[CloudProvider, CloudService] | None],
    min_domains: int = 1,
) -> list[ServiceAdoptionRow]:
    """Table 2: identify each FQDN's cloud service from its CNAME chain
    and count IPv6-ready domains per service.

    ``service_of_cname`` maps a canonical name to (provider, service); in
    the paper this role is played by manually mapping CNAME suffixes to
    services using provider documentation.
    """
    rows: dict[str, ServiceAdoptionRow] = {}
    for view in views.values():
        if len(view.cname_chain) < 2:
            continue  # no CNAME: not identifiable as a managed service
        identified = service_of_cname(view.cname_chain[-1])
        if identified is None:
            continue
        provider, service = identified
        row = rows.get(service.cname_suffix)
        if row is None:
            row = rows[service.cname_suffix] = ServiceAdoptionRow(
                provider=provider, service=service
            )
        row.total += 1
        if view.has_aaaa:
            row.ipv6_ready += 1
    table = [row for row in rows.values() if row.total >= min_domains]
    table.sort(key=lambda row: (row.provider.name, -row.share, row.service.name))
    return table
