"""Which resources hold IPv6-partial websites back (paper section 4.3).

Implements the paper's dependency metrics over a census run:

* per-partial-site counts and fractions of IPv4-only resources (Figure 7);
* per-domain **span** (how many partial sites depend on an IPv4-only
  eTLD+1) and **median contribution** (the median, over dependent sites,
  of the share of a site's IPv4-only resources the domain supplies) --
  both from Bajpai & Schoenwaelder, extended here to full-depth crawls
  (Figure 8);
* first- vs. third-party attribution of IPv4-only domains (the paper's
  565-site first-party-only population);
* the what-if simulation: enable IPv6 on IPv4-only domains in descending
  span order and count partial sites turning full (Figure 10);
* heavy-hitter categorization (Figure 9) and the domain-by-resource-type
  matrix (Figure 18);
* the version-split misclassification estimate of section 4.4.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.readiness import SiteClass, classify_site
from repro.crawler.records import CrawlDataset, RequestRecord, SiteCrawlResult
from repro.net.psl import PublicSuffixList, default_psl
from repro.web.resources import ResourceCategory, ResourceType

#: Substrings marking deliberately protocol-specific hostnames (section 4.4).
VERSION_MARKERS = ("v4", "ipv4", "px4")


@dataclass
class DomainImpact:
    """One IPv4-only eTLD+1 domain's impact on partial sites."""

    domain: str
    dependent_sites: list[str] = field(default_factory=list)
    contributions: list[float] = field(default_factory=list)
    is_third_party_anywhere: bool = False
    resource_type_sites: Counter = field(default_factory=Counter)

    @property
    def span(self) -> int:
        return len(self.dependent_sites)

    @property
    def median_contribution(self) -> float:
        return float(np.median(self.contributions)) if self.contributions else 0.0


@dataclass
class DependencyAnalysis:
    """Everything section 4.3 computes from one census run."""

    partial_sites: list[str]
    v4only_resource_counts: list[int]
    v4only_resource_fractions: list[float]
    domain_impacts: dict[str, DomainImpact]
    first_party_only_sites: list[str]
    site_pending_domains: dict[str, set[str]]

    @property
    def num_partial(self) -> int:
        return len(self.partial_sites)

    def impacts_by_span(self) -> list[DomainImpact]:
        return sorted(
            self.domain_impacts.values(),
            key=lambda impact: (-impact.span, impact.domain),
        )

    def heavy_hitters(self, min_span: int) -> list[DomainImpact]:
        return [i for i in self.impacts_by_span() if i.span >= min_span]


def _partial_site_v4only(
    result: SiteCrawlResult,
) -> tuple[list[RequestRecord], list[RequestRecord]]:
    """(successful resources, the IPv4-only subset) for one site."""
    fetched = [r for r in result.resource_requests() if r.succeeded]
    v4only = [r for r in fetched if not r.has_aaaa]
    return fetched, v4only


def analyze_dependencies(
    dataset: CrawlDataset, psl: PublicSuffixList | None = None
) -> DependencyAnalysis:
    """Run the full section 4.3 analysis over a census."""
    psl = psl or default_psl()
    partial_sites: list[str] = []
    counts: list[int] = []
    fractions: list[float] = []
    impacts: dict[str, DomainImpact] = {}
    first_party_only: list[str] = []
    pending: dict[str, set[str]] = {}

    for result in dataset.connected_results():
        if classify_site(result) is not SiteClass.IPV6_PARTIAL:
            continue
        fetched, v4only = _partial_site_v4only(result)
        partial_sites.append(result.site)
        counts.append(len(v4only))
        fractions.append(len(v4only) / len(fetched) if fetched else 0.0)

        by_domain: dict[str, list[RequestRecord]] = {}
        for record in v4only:
            domain = psl.etld_plus_one(record.fqdn) or record.fqdn
            by_domain.setdefault(domain, []).append(record)
        pending[result.site] = set(by_domain)
        if all(domain == result.site for domain in by_domain):
            first_party_only.append(result.site)
        for domain, records in by_domain.items():
            impact = impacts.setdefault(domain, DomainImpact(domain=domain))
            impact.dependent_sites.append(result.site)
            impact.contributions.append(len(records) / len(v4only))
            if domain != result.site:
                impact.is_third_party_anywhere = True
            for rtype in sorted(
                {r.resource_type for r in records}, key=lambda t: t.value
            ):
                impact.resource_type_sites[rtype] += 1

    return DependencyAnalysis(
        partial_sites=partial_sites,
        v4only_resource_counts=counts,
        v4only_resource_fractions=fractions,
        domain_impacts=impacts,
        first_party_only_sites=first_party_only,
        site_pending_domains=pending,
    )


def whatif_adoption_curve(analysis: DependencyAnalysis) -> list[tuple[int, int]]:
    """Figure 10: IPv4-only domains adopt IPv6 in descending span order;
    after each adoption, how many partial sites have become IPv6-full?

    Returns a list of (domains adopted so far, cumulative sites full).
    """
    pending = {site: set(domains) for site, domains in analysis.site_pending_domains.items()}
    remaining = {site for site, domains in pending.items() if domains}
    curve: list[tuple[int, int]] = []
    full = len(pending) - len(remaining)
    for adopted, impact in enumerate(analysis.impacts_by_span(), start=1):
        newly_full = []
        for site in impact.dependent_sites:
            domains = pending.get(site)
            if domains is None:
                continue
            domains.discard(impact.domain)
            if not domains and site in remaining:
                newly_full.append(site)
        for site in newly_full:
            remaining.discard(site)
        full = len(pending) - len(remaining)
        curve.append((adopted, full))
    return curve


def heavy_hitter_categories(
    analysis: DependencyAnalysis,
    category_of: Callable[[str], ResourceCategory | None],
    min_span: int,
) -> Counter:
    """Figure 9: categories of high-span IPv4-only domains.

    ``category_of`` plays the role of VirusTotal's domain categorization;
    domains it cannot categorize are counted under ``None``.
    """
    histogram: Counter = Counter()
    for impact in analysis.heavy_hitters(min_span):
        histogram[category_of(impact.domain)] += 1
    return histogram


def resource_type_matrix(
    analysis: DependencyAnalysis, top_k: int = 20
) -> tuple[list[str], list[ResourceType], np.ndarray]:
    """Figure 18: top IPv4-only domains (by span) x resource types.

    Cell (i, j) counts the IPv6-partial sites where domain i served
    resource type j.  Returns (domains, types, matrix).
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    top = analysis.impacts_by_span()[:top_k]
    types = sorted(
        {rtype for impact in top for rtype in impact.resource_type_sites},
        key=lambda t: t.value,
    )
    matrix = np.zeros((len(top), len(types)), dtype=int)
    for i, impact in enumerate(top):
        for j, rtype in enumerate(types):
            matrix[i, j] = impact.resource_type_sites.get(rtype, 0)
    return [impact.domain for impact in top], types, matrix


def estimate_version_split_misclassification(
    dataset: CrawlDataset, psl: PublicSuffixList | None = None
) -> tuple[int, int]:
    """Section 4.4: partial sites whose IPv4-only resources *all* carry
    protocol-specific name markers (v4/ipv4/px4) -- likely deliberate
    dual-stack splits misclassified as partial.

    Returns (suspected misclassifications, total partial sites).
    """
    suspected = 0
    total = 0
    for result in dataset.connected_results():
        if classify_site(result) is not SiteClass.IPV6_PARTIAL:
            continue
        total += 1
        _, v4only = _partial_site_v4only(result)
        if v4only and all(
            any(marker in record.fqdn for marker in VERSION_MARKERS)
            for record in v4only
        ):
            suspected += 1
    return suspected, total
