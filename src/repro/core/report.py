"""Paper-style report rendering (compatibility shims).

The renderers now live in the artifact registry (:mod:`repro.api`);
each function here wraps prebuilt scenario objects in a
:class:`~repro.api.session.Study` session and runs the corresponding
registered artifact, so text output stays identical while the analysis
wiring exists exactly once.

New code should call ``Study.artifact(name)`` directly -- it returns
structured rows that also render to JSON.
"""

from __future__ import annotations

from repro.datasets.scenarios import CensusStudy, ResidenceStudy


def _study(traffic: ResidenceStudy | None = None, census: CensusStudy | None = None):
    from repro.api import Study

    return Study.from_prebuilt(traffic=traffic, census=census)


def render_table1(study: ResidenceStudy) -> str:
    """Table 1: per-residence traffic and IPv6 fractions."""
    return _study(traffic=study).artifact("table1").to_text()


def render_fig5(census: CensusStudy) -> str:
    """Figure 5: the census classification table."""
    return _study(census=census).artifact("fig5").to_text()


def render_fig6(census: CensusStudy) -> str:
    """Figure 6: readiness by top-N slice."""
    return _study(census=census).artifact("fig6").to_text()


def render_dependencies(census: CensusStudy) -> str:
    """Figures 7, 8 and 10 in one summary block."""
    return _study(census=census).artifact("deps").to_text()


def render_table3(census: CensusStudy, top: int = 15) -> str:
    """Figure 11 / Table 3: per-cloud breakdown."""
    return _study(census=census).artifact("table3", top=top).to_text()


def render_table2(census: CensusStudy, min_domains: int = 10) -> str:
    """Table 2: per-service adoption versus policy."""
    return _study(census=census).artifact("table2", min_domains=min_domains).to_text()


def full_report(study: ResidenceStudy, census: CensusStudy) -> str:
    """The complete paper-style report over prebuilt scenarios."""
    session = _study(traffic=study, census=census)
    sections = [
        session.artifact(name).to_text()
        for name in ("table1", "fig5", "fig6", "deps", "table3", "table2")
    ]
    rule = "\n" + "=" * 72 + "\n"
    return rule.join(sections)
