"""Paper-style report rendering.

One function per headline artifact, each taking analysis outputs and
returning the rendered text table -- the same formats the benchmark
harness emits.  ``full_report`` strings them together for the CLI
(``python -m repro``).
"""

from __future__ import annotations

import numpy as np

from repro.core.client import compute_residence_stats
from repro.core.cloudstats import (
    attribute_domains,
    cloud_provider_breakdown,
    overall_domain_counts,
    service_adoption_table,
)
from repro.core.deps import analyze_dependencies, whatif_adoption_curve
from repro.core.readiness import census_breakdown, top_n_breakdown
from repro.datasets.scenarios import CensusStudy, ResidenceStudy
from repro.util.tables import TextTable, format_count_pct


def render_table1(study: ResidenceStudy) -> str:
    """Table 1: per-residence traffic and IPv6 fractions."""
    table = TextTable(
        ["res", "scope", "GB", "frac v6 bytes", "daily mean (s.d.)",
         "flows", "frac v6 flows"],
        title=f"Table 1 — {study.num_days} days, residences {', '.join(sorted(study.datasets))}",
    )
    for name in sorted(study.datasets):
        stats = compute_residence_stats(study.dataset(name))
        for scope in (stats.external, stats.internal):
            table.add_row([
                name, scope.scope.value, f"{scope.total_gb:.2f}",
                f"{scope.byte_fraction_overall:.3f}",
                f"{scope.byte_fraction_daily_mean:.3f} ({scope.byte_fraction_daily_std:.3f})",
                scope.total_flows,
                f"{scope.flow_fraction_overall:.3f}",
            ])
    return table.render()


def render_fig5(census: CensusStudy) -> str:
    """Figure 5: the census classification table."""
    b = census_breakdown(census.dataset)
    conn = b.connection_success
    table = TextTable(["category", "count (%)"], title="Figure 5 — site classification")
    table.add_row(["Total", b.total])
    table.add_row(["Loading-Failure (NXDOMAIN)", b.nxdomain])
    table.add_row(["Loading-Failure (Others)", b.other_failure])
    table.add_row(["Connection Success", format_count_pct(conn, conn)])
    table.add_row(["Unknown Primary Domain", format_count_pct(b.unknown_primary, conn)])
    table.add_row(["IPv4-only (A-only domain)", format_count_pct(b.ipv4_only, conn)])
    table.add_row(["AAAA-enabled Domain", format_count_pct(b.aaaa_enabled, conn)])
    table.add_row(["IPv6-partial", format_count_pct(b.ipv6_partial, conn)])
    table.add_row(["IPv6-full", format_count_pct(b.ipv6_full, conn)])
    table.add_row(["Browser Used IPv4", format_count_pct(b.browser_used_ipv4, conn)])
    table.add_row(["Browser Used IPv6 Only", format_count_pct(b.browser_used_ipv6_only, conn)])
    return table.render()


def render_fig6(census: CensusStudy) -> str:
    """Figure 6: readiness by top-N slice."""
    n = len(census.dataset.results)
    rows = top_n_breakdown(census.dataset, ns=(100, n // 10, n))
    table = TextTable(
        ["top N", "IPv4-only", "IPv6-partial", "IPv6-full"],
        title="Figure 6 — readiness by popularity",
    )
    for row in rows:
        table.add_row([
            row.n, f"{row.ipv4_only_share:.1%}",
            f"{row.ipv6_partial_share:.1%}", f"{row.ipv6_full_share:.1%}",
        ])
    return table.render()


def render_dependencies(census: CensusStudy) -> str:
    """Figures 7, 8 and 10 in one summary block."""
    analysis = analyze_dependencies(census.dataset)
    if not analysis.num_partial:
        return "no IPv6-partial sites in this universe"
    counts = np.array(analysis.v4only_resource_counts)
    fractions = np.array(analysis.v4only_resource_fractions)
    spans = np.array([i.span for i in analysis.domain_impacts.values()])
    curve = whatif_adoption_curve(analysis)
    k = max(1, round(0.033 * len(curve)))
    lines = [
        f"IPv6-partial sites: {analysis.num_partial}",
        f"IPv4-only resources per site (Fig 7): "
        f"p25={np.percentile(counts, 25):.0f} p50={np.percentile(counts, 50):.0f} "
        f"p75={np.percentile(counts, 75):.0f}",
        f"fraction IPv4-only (Fig 7): "
        f"p25={np.percentile(fractions, 25):.2f} p50={np.percentile(fractions, 50):.2f} "
        f"p75={np.percentile(fractions, 75):.2f}",
        f"IPv4-only domains (Fig 8): {len(spans)}; span p75={np.percentile(spans, 75):.0f} "
        f"p95={np.percentile(spans, 95):.0f} max={spans.max()}",
        f"what-if (Fig 10): top 3.3% of domains ({curve[k - 1][0]}) unlock "
        f"{curve[k - 1][1] / analysis.num_partial:.1%} of partial sites",
    ]
    return "\n".join(lines)


def render_table3(census: CensusStudy, top: int = 15) -> str:
    """Figure 11 / Table 3: per-cloud breakdown."""
    eco = census.ecosystem
    views = attribute_domains(census.dataset, eco.routing, eco.registry)
    total, ipv4_only, full, v6_only = overall_domain_counts(views)
    table = TextTable(
        ["organization", "# domains", "IPv4-only", "IPv6-full", "IPv6-only"],
        title="Table 3 — domains per cloud organization",
    )
    table.add_row(["Overall", total, format_count_pct(ipv4_only, total),
                   format_count_pct(full, total), format_count_pct(v6_only, total)])
    for s in cloud_provider_breakdown(views)[:top]:
        table.add_row([
            s.org.name, s.total,
            format_count_pct(s.ipv4_only, s.total),
            format_count_pct(s.ipv6_full, s.total),
            format_count_pct(s.ipv6_only, s.total),
        ])
    return table.render()


def render_table2(census: CensusStudy, min_domains: int = 10) -> str:
    """Table 2: per-service adoption versus policy."""
    eco = census.ecosystem
    views = attribute_domains(census.dataset, eco.routing, eco.registry)
    rows = service_adoption_table(views, eco.service_of_cname, min_domains=min_domains)
    table = TextTable(
        ["provider", "service", "policy", "# ready", "# total", "%"],
        title="Table 2 — IPv6 adoption across cloud services",
    )
    for row in rows:
        table.add_row([
            row.provider.name, row.service.name, row.service.policy.value,
            row.ipv6_ready, row.total, f"{row.share:.1%}",
        ])
    return table.render()


def full_report(study: ResidenceStudy, census: CensusStudy) -> str:
    """The complete paper-style report over prebuilt scenarios."""
    sections = [
        render_table1(study),
        render_fig5(census),
        render_fig6(census),
        render_dependencies(census),
        render_table3(census),
        render_table2(census),
    ]
    rule = "\n" + "=" * 72 + "\n"
    return rule.join(sections)
