"""Client-side non-binary IPv6 analysis (paper section 3).

Consumes a :class:`~repro.traffic.generate.ResidenceDataset` and produces
the paper's client-side results:

* :func:`compute_residence_stats` -- Table 1: traffic volume, flow counts,
  IPv6 fractions (overall and daily mean +- s.d.), external vs. internal;
* :func:`daily_fractions` -- the per-day series behind Figures 1 and 16;
* :func:`hourly_fraction_series` -- the hourly series MSTL decomposes
  (Figures 2, 13, 14, 15);
* :func:`as_traffic_breakdown` / :func:`shared_as_box_stats` -- the
  AS-level view (Figures 3 and 4), mapping each external peer address to
  its origin AS via the BGP table;
* :func:`domain_traffic_breakdown` / :func:`shared_domain_box_stats` --
  the reverse-DNS domain view (Figure 17).

Every analysis runs on the residence's columnar
:class:`~repro.flowmon.frame.FlowFrame` (``dataset.frame()``, built once
and cached): group-bys are ``np.bincount``/``np.add.at`` reductions over
integer codes, with unique keys kept in first-appearance order so the
results -- including dict insertion order and stable-sort tie behaviour
-- are bit-identical to the original per-record loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flowmon.conntrack import Protocol
from repro.flowmon.frame import FlowFrame, day_sums, group_sums
from repro.flowmon.monitor import FlowScope
from repro.net.asn import AsCategory, AsInfo
from repro.traffic.generate import ResidenceDataset
from repro.util.stats import BoxStats, box_stats
from repro.util.timeutil import HOUR

GB = 1e9

#: Key packing for (day, asn) group-bys; ASNs fit in 32 bits.
_ASN_BITS = 32


def _fraction(v6: float, total: float) -> float:
    return v6 / total if total > 0 else 0.0


@dataclass(frozen=True)
class ResidenceScopeStats:
    """One scope's row of Table 1 (external or internal)."""

    residence: str
    scope: FlowScope
    total_bytes: int
    v4_bytes: int
    v6_bytes: int
    total_flows: int
    v4_flows: int
    v6_flows: int
    byte_fraction_overall: float
    byte_fraction_daily_mean: float
    byte_fraction_daily_std: float
    flow_fraction_overall: float
    flow_fraction_daily_mean: float
    flow_fraction_daily_std: float

    @property
    def total_gb(self) -> float:
        return self.total_bytes / GB


@dataclass(frozen=True)
class ResidenceStats:
    """Table 1: one residence, both scopes."""

    residence: str
    external: ResidenceScopeStats
    internal: ResidenceScopeStats


def _scope_stats(
    residence: str, scope: FlowScope, frame: FlowFrame
) -> ResidenceScopeStats:
    volume = frame.total_bytes
    v6_mask = frame.is_v6
    v6_volume = volume * v6_mask
    total_bytes = int(volume.sum())
    v6_bytes = int(v6_volume.sum())
    total_flows = len(frame)
    v6_flows = int(np.count_nonzero(v6_mask))

    day = frame.day
    day_bytes, day_v6_bytes = day_sums(day, [volume, v6_volume])
    day_flows = np.bincount(day, minlength=day_bytes.size).astype(np.int64)
    day_v6_flows = np.bincount(
        day[v6_mask], minlength=day_bytes.size
    ).astype(np.int64)
    present = np.nonzero(day_flows)[0]  # days with >= 1 record, ascending
    daily_byte_fracs = [
        int(day_v6_bytes[d]) / int(day_bytes[d]) for d in present if day_bytes[d] > 0
    ]
    daily_flow_fracs = [
        int(day_v6_flows[d]) / int(day_flows[d]) for d in present
    ]
    return ResidenceScopeStats(
        residence=residence,
        scope=scope,
        total_bytes=total_bytes,
        v4_bytes=total_bytes - v6_bytes,
        v6_bytes=v6_bytes,
        total_flows=total_flows,
        v4_flows=total_flows - v6_flows,
        v6_flows=v6_flows,
        byte_fraction_overall=_fraction(v6_bytes, total_bytes),
        byte_fraction_daily_mean=float(np.mean(daily_byte_fracs)) if daily_byte_fracs else 0.0,
        byte_fraction_daily_std=float(np.std(daily_byte_fracs)) if daily_byte_fracs else 0.0,
        flow_fraction_overall=_fraction(v6_flows, total_flows),
        flow_fraction_daily_mean=float(np.mean(daily_flow_fracs)) if daily_flow_fracs else 0.0,
        flow_fraction_daily_std=float(np.std(daily_flow_fracs)) if daily_flow_fracs else 0.0,
    )


def compute_residence_stats(dataset: ResidenceDataset) -> ResidenceStats:
    """Table 1's row pair for one residence."""
    name = dataset.profile.name
    frame = dataset.frame()
    return ResidenceStats(
        residence=name,
        external=_scope_stats(
            name, FlowScope.EXTERNAL, frame.select(scope=FlowScope.EXTERNAL)
        ),
        internal=_scope_stats(
            name, FlowScope.INTERNAL, frame.select(scope=FlowScope.INTERNAL)
        ),
    )


def daily_fractions(
    dataset: ResidenceDataset,
    scope: FlowScope = FlowScope.EXTERNAL,
    metric: str = "bytes",
) -> list[float]:
    """Per-day IPv6 fraction series (days with traffic only), for the
    daily-fraction CDFs of Figures 1 and 16."""
    if metric not in ("bytes", "flows"):
        raise ValueError(f"metric must be 'bytes' or 'flows', got {metric!r}")
    frame = dataset.frame().select(scope=scope)
    day = frame.day
    if metric == "bytes":
        amount = frame.total_bytes
    else:
        amount = np.ones(len(frame), dtype=np.int64)
    totals, v6 = day_sums(day, [amount, amount * frame.is_v6])
    return [
        int(v6[d]) / int(totals[d])
        for d in np.nonzero(np.bincount(day, minlength=totals.size))[0]
        if totals[d] > 0
    ]


def hourly_fraction_series(
    dataset: ResidenceDataset,
    scope: FlowScope = FlowScope.EXTERNAL,
    metric: str = "bytes",
    start_day: int = 0,
    num_days: int | None = None,
) -> np.ndarray:
    """Hourly IPv6 fraction series for MSTL (Figures 2 and 13-15).

    Hours with no traffic are filled by linear interpolation (the paper's
    decomposition needs a regular series).
    """
    if metric not in ("bytes", "flows"):
        raise ValueError(f"metric must be 'bytes' or 'flows', got {metric!r}")
    if num_days is None:
        num_days = dataset.num_days - start_day
    if num_days <= 0:
        raise ValueError("window must cover at least one day")
    hours = num_days * 24
    frame = dataset.frame().select(scope=scope)
    start_time = start_day * 24 * HOUR
    offset = frame.start_time - start_time
    hour = np.floor_divide(offset, HOUR)
    keep = (offset >= 0) & (hour < hours)
    hour_index = hour[keep].astype(np.int64)
    if metric == "bytes":
        amount = frame.total_bytes[keep]
    else:
        amount = np.ones(hour_index.size, dtype=np.int64)
    totals_int = np.zeros(hours, dtype=np.int64)
    v6_int = np.zeros(hours, dtype=np.int64)
    np.add.at(totals_int, hour_index, amount)
    np.add.at(v6_int, hour_index, amount * frame.is_v6[keep])
    totals = totals_int.astype(float)
    v6 = v6_int.astype(float)
    with np.errstate(invalid="ignore", divide="ignore"):
        fractions = np.where(totals > 0, v6 / np.maximum(totals, 1e-12), np.nan)
    observed = ~np.isnan(fractions)
    if not observed.any():
        raise ValueError("no traffic in the requested window")
    indices = np.arange(hours)
    fractions[~observed] = np.interp(
        indices[~observed], indices[observed], fractions[observed]
    )
    return fractions


@dataclass(frozen=True)
class HeavyHitterDay:
    """One extreme day and the ASes that dominated its traffic.

    Section 3.2 investigates days at the tails of the daily-fraction
    distribution: "days with IPv6 fractions above the 90th percentile"
    are dominated by IPv6-heavy bulk services (Valve, Netflix, Apple),
    days below the 10th by IPv4-only ones (Twitch, Zoom).
    """

    day: int
    fraction_v6: float
    total_bytes: int
    dominant_ases: tuple[tuple[int, int], ...]  # (asn, bytes), descending


def heavy_hitter_days(
    dataset: ResidenceDataset,
    low_quantile: float = 0.10,
    high_quantile: float = 0.90,
    top_ases: int = 3,
) -> tuple[list[HeavyHitterDay], list[HeavyHitterDay]]:
    """Identify the extreme IPv6-fraction days and who drove them.

    Returns (low_days, high_days): the days whose external IPv6 byte
    fraction falls below ``low_quantile`` / above ``high_quantile`` of the
    daily distribution, each with its ``top_ases`` traffic contributors.
    """
    if not 0.0 <= low_quantile < high_quantile <= 1.0:
        raise ValueError("quantiles must satisfy 0 <= low < high <= 1")
    frame = dataset.frame().select(scope=FlowScope.EXTERNAL)
    day = frame.day
    volume = frame.total_bytes
    day_total, day_v6 = day_sums(day, [volume, volume * frame.is_v6])

    # Per-(day, AS) byte totals for the attributed external flows, with
    # groups in first-appearance order (= dict insertion order of the
    # original record loop, which breaks byte-count ties).
    asn = frame.flow_asn
    attributed = asn >= 0
    packed = (
        day[attributed].astype(np.int64) << _ASN_BITS
    ) | asn[attributed]
    keys, _, (asn_bytes,) = group_sums(packed, [volume[attributed]])
    by_asn: dict[int, list[tuple[int, int]]] = {}
    for key, total in zip(keys, asn_bytes):
        by_asn.setdefault(int(key) >> _ASN_BITS, []).append(
            (int(key) & ((1 << _ASN_BITS) - 1), int(total))
        )

    present = [int(d) for d in np.nonzero(day_total > 0)[0]]
    if not present:
        return [], []
    fractions = {d: int(day_v6[d]) / int(day_total[d]) for d in present}
    values = np.asarray(list(fractions.values()))
    low_cut = float(np.quantile(values, low_quantile))
    high_cut = float(np.quantile(values, high_quantile))

    def build(d: int) -> HeavyHitterDay:
        ranked = sorted(by_asn.get(d, []), key=lambda kv: -kv[1])[:top_ases]
        return HeavyHitterDay(
            day=d,
            fraction_v6=fractions[d],
            total_bytes=int(day_total[d]),
            dominant_ases=tuple(ranked),
        )

    low_days = [build(d) for d in present if fractions[d] <= low_cut]
    high_days = [build(d) for d in present if fractions[d] >= high_cut]
    return low_days, high_days


@dataclass(frozen=True)
class ProtocolMix:
    """Per-family traffic composition by transport protocol.

    Early IPv6 measurements (Karpilovsky et al., discussed in the paper's
    related work) found IPv6 to be mostly control traffic (DNS, ICMP).
    This view checks the modern picture: mature IPv6 should carry data --
    TCP/UDP bytes dwarfing ICMP -- just as IPv4 does.
    """

    family: str
    bytes_by_protocol: dict[str, int]
    flows_by_protocol: dict[str, int]

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_protocol.values())

    def byte_share(self, protocol: str) -> float:
        return _fraction(self.bytes_by_protocol.get(protocol, 0), self.total_bytes)


def protocol_mix(
    dataset: ResidenceDataset, scope: FlowScope = FlowScope.EXTERNAL
) -> dict[str, ProtocolMix]:
    """Traffic composition per family ("IPv4"/"IPv6") and protocol."""
    frame = dataset.frame().select(scope=scope)
    proto_names = {p.value: p.name for p in Protocol}
    keys = frame.family.astype(np.int64) * 256 + frame.protocol
    uniq, counts, (volumes,) = group_sums(keys, [frame.total_bytes])
    bytes_by: dict[str, dict[str, int]] = {"IPv4": {}, "IPv6": {}}
    flows_by: dict[str, dict[str, int]] = {"IPv4": {}, "IPv6": {}}
    for key, count, volume in zip(uniq, counts, volumes):
        family = "IPv6" if (int(key) >> 8) == 6 else "IPv4"
        protocol = proto_names[int(key) & 0xFF]
        bytes_by[family][protocol] = int(volume)
        flows_by[family][protocol] = int(count)
    return {
        family: ProtocolMix(
            family=family,
            bytes_by_protocol=bytes_by[family],
            flows_by_protocol=flows_by[family],
        )
        for family in ("IPv4", "IPv6")
    }


# -- AS-level view (Figures 3 and 4) ----------------------------------------


@dataclass(frozen=True)
class AsTrafficEntry:
    """One AS's traffic at one residence."""

    info: AsInfo
    total_bytes: int
    v6_bytes: int

    @property
    def fraction_v6(self) -> float:
        return _fraction(self.v6_bytes, self.total_bytes)


def as_traffic_breakdown(
    dataset: ResidenceDataset,
    min_volume_share: float = 0.0001,
) -> list[AsTrafficEntry]:
    """Per-AS external traffic, dropping ASes below ``min_volume_share``
    of the residence's bytes (the paper's 0.01% cut)."""
    registry = dataset.universe.registry
    frame = dataset.frame().select(scope=FlowScope.EXTERNAL)
    asn = frame.flow_asn
    attributed = asn >= 0
    volume = frame.total_bytes[attributed]
    v6_volume = volume * frame.is_v6[attributed]
    uniq, _, (totals, v6_totals) = group_sums(asn[attributed], [volume, v6_volume])
    grand_total = int(totals.sum())
    threshold = grand_total * min_volume_share
    entries = []
    for asn_value, total, v6 in zip(uniq, totals, v6_totals):
        if total < threshold:
            continue
        info = registry.lookup(int(asn_value))
        if info is None:
            continue
        entries.append(
            AsTrafficEntry(info=info, total_bytes=int(total), v6_bytes=int(v6))
        )
    entries.sort(key=lambda e: e.total_bytes, reverse=True)
    return entries


def shared_as_box_stats(
    datasets: dict[str, ResidenceDataset],
    min_residences: int = 3,
    min_volume_share: float = 0.0001,
) -> dict[AsCategory, list[tuple[AsInfo, BoxStats]]]:
    """Figure 4: per-AS IPv6 byte-fraction box stats across residences.

    Only ASes observed at ``min_residences`` or more residences are kept;
    within each category ASes are sorted by median fraction, descending.
    """
    per_as_fractions: dict[int, list[float]] = {}
    infos: dict[int, AsInfo] = {}
    for dataset in datasets.values():
        for entry in as_traffic_breakdown(dataset, min_volume_share):
            per_as_fractions.setdefault(entry.info.asn, []).append(entry.fraction_v6)
            infos[entry.info.asn] = entry.info
    grouped: dict[AsCategory, list[tuple[AsInfo, BoxStats]]] = {}
    for asn, fractions in per_as_fractions.items():
        if len(fractions) < min_residences:
            continue
        stats = box_stats(fractions)
        grouped.setdefault(infos[asn].category, []).append((infos[asn], stats))
    for entries in grouped.values():
        entries.sort(key=lambda pair: pair[1].median, reverse=True)
    return grouped


# -- Domain-level view (Figure 17) -------------------------------------------


@dataclass(frozen=True)
class DomainTrafficEntry:
    """One reverse-DNS domain's traffic at one residence."""

    domain: str
    total_bytes: int
    v6_bytes: int

    @property
    def fraction_v6(self) -> float:
        return _fraction(self.v6_bytes, self.total_bytes)


def domain_traffic_breakdown(dataset: ResidenceDataset) -> list[DomainTrafficEntry]:
    """Per-domain (rDNS eTLD+1) external traffic at one residence."""
    frame = dataset.frame().select(scope=FlowScope.EXTERNAL)
    domain_id = frame.flow_domain
    resolved = domain_id >= 0
    volume = frame.total_bytes[resolved]
    v6_volume = volume * frame.is_v6[resolved]
    uniq, _, (totals, v6_totals) = group_sums(
        domain_id[resolved], [volume, v6_volume]
    )
    entries = [
        DomainTrafficEntry(
            domain=frame.domains[int(index)],
            total_bytes=int(total),
            v6_bytes=int(v6),
        )
        for index, total, v6 in zip(uniq, totals, v6_totals)
    ]
    entries.sort(key=lambda e: e.total_bytes, reverse=True)
    return entries


def shared_domain_box_stats(
    datasets: dict[str, ResidenceDataset],
    min_residences: int = 3,
    min_bytes: int = 100_000_000,
) -> list[tuple[str, BoxStats]]:
    """Figure 17: per-domain fraction box stats for domains seen at
    ``min_residences``+ residences with at least ``min_bytes`` total."""
    fractions: dict[str, list[float]] = {}
    volumes: dict[str, int] = {}
    for dataset in datasets.values():
        for entry in domain_traffic_breakdown(dataset):
            fractions.setdefault(entry.domain, []).append(entry.fraction_v6)
            volumes[entry.domain] = volumes.get(entry.domain, 0) + entry.total_bytes
    rows = [
        (domain, box_stats(values))
        for domain, values in fractions.items()
        if len(values) >= min_residences and volumes[domain] >= min_bytes
    ]
    rows.sort(key=lambda pair: pair[1].median, reverse=True)
    return rows
