"""Client-side non-binary IPv6 analysis (paper section 3).

Consumes a :class:`~repro.traffic.generate.ResidenceDataset` and produces
the paper's client-side results:

* :func:`compute_residence_stats` -- Table 1: traffic volume, flow counts,
  IPv6 fractions (overall and daily mean +- s.d.), external vs. internal;
* :func:`daily_fractions` -- the per-day series behind Figures 1 and 16;
* :func:`hourly_fraction_series` -- the hourly series MSTL decomposes
  (Figures 2, 13, 14, 15);
* :func:`as_traffic_breakdown` / :func:`shared_as_box_stats` -- the
  AS-level view (Figures 3 and 4), mapping each external peer address to
  its origin AS via the BGP table;
* :func:`domain_traffic_breakdown` / :func:`shared_domain_box_stats` --
  the reverse-DNS domain view (Figure 17).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flowmon.conntrack import FlowRecord
from repro.flowmon.monitor import FlowScope
from repro.net.asn import AsCategory, AsInfo
from repro.net.psl import default_psl
from repro.traffic.generate import ResidenceDataset
from repro.util.stats import BoxStats, box_stats
from repro.util.timeutil import HOUR, day_index

GB = 1e9


def _fraction(v6: float, total: float) -> float:
    return v6 / total if total > 0 else 0.0


@dataclass(frozen=True)
class ResidenceScopeStats:
    """One scope's row of Table 1 (external or internal)."""

    residence: str
    scope: FlowScope
    total_bytes: int
    v4_bytes: int
    v6_bytes: int
    total_flows: int
    v4_flows: int
    v6_flows: int
    byte_fraction_overall: float
    byte_fraction_daily_mean: float
    byte_fraction_daily_std: float
    flow_fraction_overall: float
    flow_fraction_daily_mean: float
    flow_fraction_daily_std: float

    @property
    def total_gb(self) -> float:
        return self.total_bytes / GB


@dataclass(frozen=True)
class ResidenceStats:
    """Table 1: one residence, both scopes."""

    residence: str
    external: ResidenceScopeStats
    internal: ResidenceScopeStats


def _scope_stats(
    residence: str, scope: FlowScope, records: list[FlowRecord]
) -> ResidenceScopeStats:
    total_bytes = v6_bytes = 0
    total_flows = v6_flows = 0
    per_day: dict[int, list[int]] = {}
    for record in records:
        volume = record.total_bytes
        total_bytes += volume
        total_flows += 1
        day = day_index(record.start_time)
        bucket = per_day.setdefault(day, [0, 0, 0, 0])  # bytes, v6b, flows, v6f
        bucket[0] += volume
        bucket[2] += 1
        if record.key.is_v6:
            v6_bytes += volume
            v6_flows += 1
            bucket[1] += volume
            bucket[3] += 1
    daily_byte_fracs = [
        _fraction(b[1], b[0]) for b in per_day.values() if b[0] > 0
    ]
    daily_flow_fracs = [
        _fraction(b[3], b[2]) for b in per_day.values() if b[2] > 0
    ]
    return ResidenceScopeStats(
        residence=residence,
        scope=scope,
        total_bytes=total_bytes,
        v4_bytes=total_bytes - v6_bytes,
        v6_bytes=v6_bytes,
        total_flows=total_flows,
        v4_flows=total_flows - v6_flows,
        v6_flows=v6_flows,
        byte_fraction_overall=_fraction(v6_bytes, total_bytes),
        byte_fraction_daily_mean=float(np.mean(daily_byte_fracs)) if daily_byte_fracs else 0.0,
        byte_fraction_daily_std=float(np.std(daily_byte_fracs)) if daily_byte_fracs else 0.0,
        flow_fraction_overall=_fraction(v6_flows, total_flows),
        flow_fraction_daily_mean=float(np.mean(daily_flow_fracs)) if daily_flow_fracs else 0.0,
        flow_fraction_daily_std=float(np.std(daily_flow_fracs)) if daily_flow_fracs else 0.0,
    )


def compute_residence_stats(dataset: ResidenceDataset) -> ResidenceStats:
    """Table 1's row pair for one residence."""
    name = dataset.profile.name
    return ResidenceStats(
        residence=name,
        external=_scope_stats(name, FlowScope.EXTERNAL, dataset.external_records()),
        internal=_scope_stats(name, FlowScope.INTERNAL, dataset.internal_records()),
    )


def daily_fractions(
    dataset: ResidenceDataset,
    scope: FlowScope = FlowScope.EXTERNAL,
    metric: str = "bytes",
) -> list[float]:
    """Per-day IPv6 fraction series (days with traffic only), for the
    daily-fraction CDFs of Figures 1 and 16."""
    if metric not in ("bytes", "flows"):
        raise ValueError(f"metric must be 'bytes' or 'flows', got {metric!r}")
    per_day: dict[int, list[float]] = {}
    for record in dataset.monitor.records(scope=scope):
        day = day_index(record.start_time)
        bucket = per_day.setdefault(day, [0.0, 0.0])
        amount = float(record.total_bytes) if metric == "bytes" else 1.0
        bucket[0] += amount
        if record.key.is_v6:
            bucket[1] += amount
    return [
        bucket[1] / bucket[0]
        for _, bucket in sorted(per_day.items())
        if bucket[0] > 0
    ]


def hourly_fraction_series(
    dataset: ResidenceDataset,
    scope: FlowScope = FlowScope.EXTERNAL,
    metric: str = "bytes",
    start_day: int = 0,
    num_days: int | None = None,
) -> np.ndarray:
    """Hourly IPv6 fraction series for MSTL (Figures 2 and 13-15).

    Hours with no traffic are filled by linear interpolation (the paper's
    decomposition needs a regular series).
    """
    if metric not in ("bytes", "flows"):
        raise ValueError(f"metric must be 'bytes' or 'flows', got {metric!r}")
    if num_days is None:
        num_days = dataset.num_days - start_day
    if num_days <= 0:
        raise ValueError("window must cover at least one day")
    hours = num_days * 24
    totals = np.zeros(hours)
    v6 = np.zeros(hours)
    start_time = start_day * 24 * HOUR
    for record in dataset.monitor.records(scope=scope):
        offset = record.start_time - start_time
        if offset < 0:
            continue
        hour = int(offset // HOUR)
        if hour >= hours:
            continue
        amount = float(record.total_bytes) if metric == "bytes" else 1.0
        totals[hour] += amount
        if record.key.is_v6:
            v6[hour] += amount
    with np.errstate(invalid="ignore", divide="ignore"):
        fractions = np.where(totals > 0, v6 / np.maximum(totals, 1e-12), np.nan)
    observed = ~np.isnan(fractions)
    if not observed.any():
        raise ValueError("no traffic in the requested window")
    indices = np.arange(hours)
    fractions[~observed] = np.interp(
        indices[~observed], indices[observed], fractions[observed]
    )
    return fractions


@dataclass(frozen=True)
class HeavyHitterDay:
    """One extreme day and the ASes that dominated its traffic.

    Section 3.2 investigates days at the tails of the daily-fraction
    distribution: "days with IPv6 fractions above the 90th percentile"
    are dominated by IPv6-heavy bulk services (Valve, Netflix, Apple),
    days below the 10th by IPv4-only ones (Twitch, Zoom).
    """

    day: int
    fraction_v6: float
    total_bytes: int
    dominant_ases: tuple[tuple[int, int], ...]  # (asn, bytes), descending


def heavy_hitter_days(
    dataset: ResidenceDataset,
    low_quantile: float = 0.10,
    high_quantile: float = 0.90,
    top_ases: int = 3,
) -> tuple[list[HeavyHitterDay], list[HeavyHitterDay]]:
    """Identify the extreme IPv6-fraction days and who drove them.

    Returns (low_days, high_days): the days whose external IPv6 byte
    fraction falls below ``low_quantile`` / above ``high_quantile`` of the
    daily distribution, each with its ``top_ases`` traffic contributors.
    """
    if not 0.0 <= low_quantile < high_quantile <= 1.0:
        raise ValueError("quantiles must satisfy 0 <= low < high <= 1")
    routing = dataset.universe.routing
    monitor = dataset.monitor
    per_day: dict[int, dict] = {}
    for record in dataset.external_records():
        day = day_index(record.start_time)
        bucket = per_day.setdefault(day, {"total": 0, "v6": 0, "by_asn": {}})
        volume = record.total_bytes
        bucket["total"] += volume
        if record.key.is_v6:
            bucket["v6"] += volume
        peer = monitor.external_peer(record)
        if peer is not None:
            asn = routing.origin_of(peer)
            if asn is not None:
                bucket["by_asn"][asn] = bucket["by_asn"].get(asn, 0) + volume
    days = {
        day: bucket for day, bucket in per_day.items() if bucket["total"] > 0
    }
    if not days:
        return [], []
    fractions = {day: b["v6"] / b["total"] for day, b in days.items()}
    values = np.asarray(list(fractions.values()))
    low_cut = float(np.quantile(values, low_quantile))
    high_cut = float(np.quantile(values, high_quantile))

    def build(day: int) -> HeavyHitterDay:
        bucket = days[day]
        ranked = sorted(bucket["by_asn"].items(), key=lambda kv: -kv[1])[:top_ases]
        return HeavyHitterDay(
            day=day,
            fraction_v6=fractions[day],
            total_bytes=bucket["total"],
            dominant_ases=tuple(ranked),
        )

    low_days = [build(d) for d in sorted(days) if fractions[d] <= low_cut]
    high_days = [build(d) for d in sorted(days) if fractions[d] >= high_cut]
    return low_days, high_days


@dataclass(frozen=True)
class ProtocolMix:
    """Per-family traffic composition by transport protocol.

    Early IPv6 measurements (Karpilovsky et al., discussed in the paper's
    related work) found IPv6 to be mostly control traffic (DNS, ICMP).
    This view checks the modern picture: mature IPv6 should carry data --
    TCP/UDP bytes dwarfing ICMP -- just as IPv4 does.
    """

    family: str
    bytes_by_protocol: dict[str, int]
    flows_by_protocol: dict[str, int]

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_protocol.values())

    def byte_share(self, protocol: str) -> float:
        return _fraction(self.bytes_by_protocol.get(protocol, 0), self.total_bytes)


def protocol_mix(
    dataset: ResidenceDataset, scope: FlowScope = FlowScope.EXTERNAL
) -> dict[str, ProtocolMix]:
    """Traffic composition per family ("IPv4"/"IPv6") and protocol."""
    bytes_by: dict[str, dict[str, int]] = {"IPv4": {}, "IPv6": {}}
    flows_by: dict[str, dict[str, int]] = {"IPv4": {}, "IPv6": {}}
    for record in dataset.monitor.records(scope=scope):
        family = "IPv6" if record.key.is_v6 else "IPv4"
        protocol = record.key.protocol.name
        bytes_by[family][protocol] = (
            bytes_by[family].get(protocol, 0) + record.total_bytes
        )
        flows_by[family][protocol] = flows_by[family].get(protocol, 0) + 1
    return {
        family: ProtocolMix(
            family=family,
            bytes_by_protocol=bytes_by[family],
            flows_by_protocol=flows_by[family],
        )
        for family in ("IPv4", "IPv6")
    }


# -- AS-level view (Figures 3 and 4) ----------------------------------------


@dataclass(frozen=True)
class AsTrafficEntry:
    """One AS's traffic at one residence."""

    info: AsInfo
    total_bytes: int
    v6_bytes: int

    @property
    def fraction_v6(self) -> float:
        return _fraction(self.v6_bytes, self.total_bytes)


def as_traffic_breakdown(
    dataset: ResidenceDataset,
    min_volume_share: float = 0.0001,
) -> list[AsTrafficEntry]:
    """Per-AS external traffic, dropping ASes below ``min_volume_share``
    of the residence's bytes (the paper's 0.01% cut)."""
    routing = dataset.universe.routing
    registry = dataset.universe.registry
    monitor = dataset.monitor
    per_asn: dict[int, list[int]] = {}
    grand_total = 0
    for record in dataset.external_records():
        peer = monitor.external_peer(record)
        if peer is None:
            continue
        asn = routing.origin_of(peer)
        if asn is None:
            continue
        bucket = per_asn.setdefault(asn, [0, 0])
        volume = record.total_bytes
        bucket[0] += volume
        grand_total += volume
        if record.key.is_v6:
            bucket[1] += volume
    threshold = grand_total * min_volume_share
    entries = []
    for asn, (total, v6) in per_asn.items():
        if total < threshold:
            continue
        info = registry.lookup(asn)
        if info is None:
            continue
        entries.append(AsTrafficEntry(info=info, total_bytes=total, v6_bytes=v6))
    entries.sort(key=lambda e: e.total_bytes, reverse=True)
    return entries


def shared_as_box_stats(
    datasets: dict[str, ResidenceDataset],
    min_residences: int = 3,
    min_volume_share: float = 0.0001,
) -> dict[AsCategory, list[tuple[AsInfo, BoxStats]]]:
    """Figure 4: per-AS IPv6 byte-fraction box stats across residences.

    Only ASes observed at ``min_residences`` or more residences are kept;
    within each category ASes are sorted by median fraction, descending.
    """
    per_as_fractions: dict[int, list[float]] = {}
    infos: dict[int, AsInfo] = {}
    for dataset in datasets.values():
        for entry in as_traffic_breakdown(dataset, min_volume_share):
            per_as_fractions.setdefault(entry.info.asn, []).append(entry.fraction_v6)
            infos[entry.info.asn] = entry.info
    grouped: dict[AsCategory, list[tuple[AsInfo, BoxStats]]] = {}
    for asn, fractions in per_as_fractions.items():
        if len(fractions) < min_residences:
            continue
        stats = box_stats(fractions)
        grouped.setdefault(infos[asn].category, []).append((infos[asn], stats))
    for entries in grouped.values():
        entries.sort(key=lambda pair: pair[1].median, reverse=True)
    return grouped


# -- Domain-level view (Figure 17) -------------------------------------------


@dataclass(frozen=True)
class DomainTrafficEntry:
    """One reverse-DNS domain's traffic at one residence."""

    domain: str
    total_bytes: int
    v6_bytes: int

    @property
    def fraction_v6(self) -> float:
        return _fraction(self.v6_bytes, self.total_bytes)


def domain_traffic_breakdown(dataset: ResidenceDataset) -> list[DomainTrafficEntry]:
    """Per-domain (rDNS eTLD+1) external traffic at one residence."""
    rdns = dataset.universe.rdns
    monitor = dataset.monitor
    psl = default_psl()
    per_domain: dict[str, list[int]] = {}
    for record in dataset.external_records():
        peer = monitor.external_peer(record)
        if peer is None:
            continue
        domain = rdns.lookup_etld1(peer, psl)
        if domain is None:
            continue
        bucket = per_domain.setdefault(domain, [0, 0])
        bucket[0] += record.total_bytes
        if record.key.is_v6:
            bucket[1] += record.total_bytes
    entries = [
        DomainTrafficEntry(domain=domain, total_bytes=total, v6_bytes=v6)
        for domain, (total, v6) in per_domain.items()
    ]
    entries.sort(key=lambda e: e.total_bytes, reverse=True)
    return entries


def shared_domain_box_stats(
    datasets: dict[str, ResidenceDataset],
    min_residences: int = 3,
    min_bytes: int = 100_000_000,
) -> list[tuple[str, BoxStats]]:
    """Figure 17: per-domain fraction box stats for domains seen at
    ``min_residences``+ residences with at least ``min_bytes`` total."""
    fractions: dict[str, list[float]] = {}
    volumes: dict[str, int] = {}
    for dataset in datasets.values():
        for entry in domain_traffic_breakdown(dataset):
            fractions.setdefault(entry.domain, []).append(entry.fraction_v6)
            volumes[entry.domain] = volumes.get(entry.domain, 0) + entry.total_bytes
    rows = [
        (domain, box_stats(values))
        for domain, values in fractions.items()
        if len(values) >= min_residences and volumes[domain] >= min_bytes
    ]
    rows.sort(key=lambda pair: pair[1].median, reverse=True)
    return rows
