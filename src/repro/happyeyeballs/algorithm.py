"""The Happy Eyeballs v2 connection algorithm (RFC 8305).

The implementation follows the RFC's structure:

* **Resolution delay** (section 3): the client queries AAAA and A in
  parallel; if the A answer arrives first it waits up to
  ``resolution_delay`` (default 50 ms) for the AAAA answer before starting
  connections, to give IPv6 its head start.
* **Address sorting** (section 4): candidate addresses are interleaved by
  family, starting with ``first_address_family_count`` addresses of the
  preferred family (IPv6 by default).
* **Staggered connection attempts** (section 5): one attempt starts every
  ``attempt_delay`` (default 250 ms) until some attempt completes the
  handshake.  The first completed handshake wins; attempts still in flight
  are cancelled.

Because attempts are cancelled *after* their SYN left the host, a
cancelled IPv4 attempt still shows up as a flow at the router -- exactly
the effect the paper blames for flow counts overstating IPv4 use
(section 3.2: "Happy Eyeballs may result in both IPv4 and IPv6 flows being
recorded, even when nearly all bytes are sent over just one").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.net.addr import Family, IpAddress

#: RFC 8305 recommended timer values, in seconds.
DEFAULT_RESOLUTION_DELAY = 0.050
DEFAULT_ATTEMPT_DELAY = 0.250
DEFAULT_FIRST_FAMILY_COUNT = 1

#: Give up entirely after this long without any successful handshake.
DEFAULT_OVERALL_TIMEOUT = 10.0


class Connectivity(Protocol):
    """Answers "how long does a handshake to this address take?".

    Implementations return the handshake latency in seconds, or ``None``
    when the address is unreachable (SYN lost / RST / filtered).
    """

    def connect_latency(self, address: IpAddress) -> float | None:
        """Latency of a successful handshake, or None if unreachable."""
        ...  # pragma: no cover - protocol


@dataclass
class StaticConnectivity:
    """Table-driven connectivity: address -> latency or unreachable.

    ``default_latency`` applies to addresses not listed; ``None`` makes
    unlisted addresses unreachable.
    """

    latencies: dict[IpAddress, float | None] = field(default_factory=dict)
    default_latency: float | None = 0.030

    def connect_latency(self, address: IpAddress) -> float | None:
        if address in self.latencies:
            return self.latencies[address]
        return self.default_latency


@dataclass(frozen=True)
class HappyEyeballsConfig:
    """Tunable RFC 8305 knobs.

    The ablation bench sweeps these to show how the timers shape the
    "Browser Used IPv4" population in Figure 5.
    """

    resolution_delay: float = DEFAULT_RESOLUTION_DELAY
    attempt_delay: float = DEFAULT_ATTEMPT_DELAY
    first_address_family_count: int = DEFAULT_FIRST_FAMILY_COUNT
    preferred_family: Family = Family.V6
    overall_timeout: float = DEFAULT_OVERALL_TIMEOUT

    def __post_init__(self) -> None:
        if self.resolution_delay < 0 or self.attempt_delay <= 0:
            raise ValueError("delays must be non-negative (attempt delay positive)")
        if self.first_address_family_count < 1:
            raise ValueError("first_address_family_count must be >= 1")
        if self.overall_timeout <= 0:
            raise ValueError("overall_timeout must be positive")


class AttemptOutcome(enum.Enum):
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class ConnectionAttempt:
    """One staggered connection attempt and its fate."""

    address: IpAddress
    start_time: float
    end_time: float
    outcome: AttemptOutcome

    @property
    def family(self) -> Family:
        return self.address.family


@dataclass(frozen=True)
class HappyEyeballsResult:
    """Outcome of one Happy Eyeballs connection establishment.

    Attributes:
        winner: the attempt that completed first, or ``None`` if all failed.
        attempts: every attempt that sent a SYN, in start order.  Cancelled
            and failed attempts still produced observable flows.
        connect_time: seconds from the *start of resolution* to the winning
            handshake (None if no winner).
    """

    winner: ConnectionAttempt | None
    attempts: tuple[ConnectionAttempt, ...]
    connect_time: float | None

    @property
    def connected(self) -> bool:
        return self.winner is not None

    @property
    def used_family(self) -> Family | None:
        return self.winner.family if self.winner else None

    def attempted_families(self) -> set[Family]:
        return {attempt.family for attempt in self.attempts}


def interleave_addresses(
    v4_addresses: Sequence[IpAddress],
    v6_addresses: Sequence[IpAddress],
    preferred_family: Family = Family.V6,
    first_address_family_count: int = DEFAULT_FIRST_FAMILY_COUNT,
) -> list[IpAddress]:
    """RFC 8305 section 4 address ordering.

    Starts with ``first_address_family_count`` addresses of the preferred
    family, then alternates families, draining whichever list remains.
    """
    preferred = list(v6_addresses if preferred_family is Family.V6 else v4_addresses)
    other = list(v4_addresses if preferred_family is Family.V6 else v6_addresses)
    ordered: list[IpAddress] = []
    ordered.extend(preferred[:first_address_family_count])
    preferred = preferred[first_address_family_count:]
    take_other = True
    while preferred or other:
        source = other if (take_other and other) else preferred
        if not source:
            source = other
        ordered.append(source.pop(0))
        take_other = not take_other
    return ordered


class HappyEyeballs:
    """The connection racing engine."""

    def __init__(self, config: HappyEyeballsConfig | None = None) -> None:
        self.config = config or HappyEyeballsConfig()

    def connect(
        self,
        v4_addresses: Sequence[IpAddress],
        v6_addresses: Sequence[IpAddress],
        connectivity: Connectivity,
        v4_resolution_time: float = 0.010,
        v6_resolution_time: float = 0.010,
    ) -> HappyEyeballsResult:
        """Race connections to the resolved addresses.

        Args:
            v4_addresses / v6_addresses: resolver answers per family
                (either may be empty).
            connectivity: handshake latency oracle.
            v4_resolution_time / v6_resolution_time: when each DNS answer
                arrived, relative to query start.  Models the RFC's
                resolution-delay behaviour: a late AAAA can forfeit IPv6's
                head start even on a dual-stack site.

        Returns:
            A :class:`HappyEyeballsResult`; time 0 is the moment both
            queries were sent.
        """
        cfg = self.config
        if not v4_addresses and not v6_addresses:
            return HappyEyeballsResult(winner=None, attempts=(), connect_time=None)

        start_time = self._connection_start_time(
            bool(v4_addresses), bool(v6_addresses), v4_resolution_time, v6_resolution_time
        )
        ordered = self._order_addresses(
            v4_addresses, v6_addresses, v4_resolution_time, v6_resolution_time, start_time
        )

        # Schedule staggered attempts; attempt i starts at
        # start_time + i * attempt_delay unless an earlier attempt has
        # already completed by then.  An attempt can never start before its
        # family's DNS answer arrived.
        planned: list[tuple[float, IpAddress]] = []
        for i, address in enumerate(ordered):
            resolved_at = (
                v6_resolution_time if address.family is Family.V6 else v4_resolution_time
            )
            planned.append((max(start_time + i * cfg.attempt_delay, resolved_at), address))

        winner_end: float | None = None
        winner_index: int | None = None
        completions: list[tuple[float, AttemptOutcome]] = []
        for index, (attempt_start, address) in enumerate(planned):
            latency = connectivity.connect_latency(address)
            if latency is None:
                # A failed attempt "ends" when the stack gives up on it; we
                # model that as one attempt_delay of silence.
                completions.append((attempt_start + cfg.attempt_delay, AttemptOutcome.FAILED))
                continue
            end = attempt_start + latency
            completions.append((end, AttemptOutcome.SUCCEEDED))
            if end <= start_time + cfg.overall_timeout and (
                winner_end is None or end < winner_end
            ):
                winner_end = end
                winner_index = index

        attempts: list[ConnectionAttempt] = []
        for index, ((attempt_start, address), (end, outcome)) in enumerate(
            zip(planned, completions)
        ):
            if winner_end is not None and attempt_start >= winner_end:
                continue  # never started: the race was already over
            if winner_end is not None and index != winner_index:
                if outcome is AttemptOutcome.SUCCEEDED and end > winner_end:
                    outcome = AttemptOutcome.CANCELLED
                    end = winner_end
                elif outcome is AttemptOutcome.FAILED and end > winner_end:
                    outcome = AttemptOutcome.CANCELLED
                    end = winner_end
            attempts.append(
                ConnectionAttempt(
                    address=address, start_time=attempt_start, end_time=end, outcome=outcome
                )
            )

        winner = attempts[winner_index] if winner_index is not None else None
        # Keep only attempts that actually started (list already filtered),
        # preserving start order.
        attempts.sort(key=lambda a: a.start_time)
        if winner is not None and winner not in attempts:  # pragma: no cover
            raise AssertionError("winner must be among started attempts")
        return HappyEyeballsResult(
            winner=winner,
            attempts=tuple(attempts),
            connect_time=None if winner_end is None else winner_end,
        )

    def _connection_start_time(
        self,
        have_v4: bool,
        have_v6: bool,
        v4_resolution_time: float,
        v6_resolution_time: float,
    ) -> float:
        """When the first connection attempt may start (RFC 8305 section 3)."""
        if have_v6 and not have_v4:
            return v6_resolution_time
        if have_v4 and not have_v6:
            return v4_resolution_time
        if v6_resolution_time <= v4_resolution_time:
            # Preferred answer in hand first: start immediately.
            return v6_resolution_time
        # A first: wait for AAAA up to the resolution delay.
        return min(v6_resolution_time, v4_resolution_time + self.config.resolution_delay)

    def _order_addresses(
        self,
        v4_addresses: Sequence[IpAddress],
        v6_addresses: Sequence[IpAddress],
        v4_resolution_time: float,
        v6_resolution_time: float,
        start_time: float,
    ) -> list[IpAddress]:
        """Sorted candidate list, accounting for late-arriving answers.

        If the AAAA answer had not arrived by the time attempts start (the
        resolution delay expired), the v6 addresses are not yet known and
        IPv4 leads despite the preference.
        """
        cfg = self.config
        v6_known = v6_resolution_time <= start_time
        v4_known = v4_resolution_time <= start_time
        if v6_known and v4_known:
            return interleave_addresses(
                v4_addresses, v6_addresses, cfg.preferred_family,
                cfg.first_address_family_count,
            )
        if v6_known:
            return interleave_addresses(
                [], v6_addresses, cfg.preferred_family, cfg.first_address_family_count
            ) + list(v4_addresses)
        return interleave_addresses(
            v4_addresses, [], Family.V4, cfg.first_address_family_count
        ) + list(v6_addresses)
