"""Happy Eyeballs Version 2 (RFC 8305) over a simulated network.

Dual-stack hosts pick between IPv4 and IPv6 with the Happy Eyeballs
algorithm, which the paper leans on throughout: it explains why dual-stack
clients mostly use IPv6 when a service offers it (section 3.2), why flow
counts overstate IPv4 (both families get SYNs even when one carries the
bytes), and why ~1 in 10 fully IPv6-capable page loads still ride IPv4
("Browser Used IPv4" in Figure 5).
"""

from repro.happyeyeballs.algorithm import (
    AttemptOutcome,
    ConnectionAttempt,
    Connectivity,
    HappyEyeballs,
    HappyEyeballsConfig,
    HappyEyeballsResult,
    StaticConnectivity,
    interleave_addresses,
)

__all__ = [
    "AttemptOutcome",
    "ConnectionAttempt",
    "Connectivity",
    "HappyEyeballs",
    "HappyEyeballsConfig",
    "HappyEyeballsResult",
    "StaticConnectivity",
    "interleave_addresses",
]
