"""Cloud/CDN provider catalog with IPv6 enablement policies.

The paper's central cloud finding (section 5.3, Table 2): *how* a provider
exposes IPv6 decides how many tenants use it.

* ``ALWAYS_ON``: tenants cannot disable it (Azure Front Door) -> 100%.
* ``DEFAULT_ON``: enabled unless the tenant opts out (Cloudflare since
  2014, Akamai since 2016, CloudFront) -> 48-71% in practice.
* ``OPT_IN``: a console/control toggle (many compute products) -> <10%.
* ``OPT_IN_CODE_CHANGE``: requires changing embedded URLs or CNAMEs
  (Amazon S3's dual-stack endpoints) -> ~0.4%.
* ``NONE``: no IPv6 support at all.

Each :class:`CloudService` resolves a tenant's IPv6 outcome from its policy
and the tenant's latent interest; each :class:`CloudProvider` groups
services under one or more *organizations* and origin ASes, reproducing the
multi-AS and split-brand attribution artifacts of section 5.1 (the A and
AAAA of one domain originating from different organizations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.rng import RngStream


class Ipv6Policy(enum.Enum):
    ALWAYS_ON = "always-on"
    DEFAULT_ON = "default-on"
    OPT_IN = "opt-in"
    OPT_IN_CODE_CHANGE = "opt-in-code-change"
    NONE = "none"


#: Probability scale a tenant enables IPv6 under each policy, before the
#: tenant's own inclination is applied.  Calibrated to Table 2's adoption
#: column: always-on 100%, default-on 50-70% (opt-outs), opt-in <10%,
#: code-change ~0.4%.
POLICY_BASE_RATE: dict[Ipv6Policy, float] = {
    Ipv6Policy.ALWAYS_ON: 1.0,
    Ipv6Policy.DEFAULT_ON: 1.0,
    Ipv6Policy.OPT_IN: 0.18,
    Ipv6Policy.OPT_IN_CODE_CHANGE: 0.012,
    Ipv6Policy.NONE: 0.0,
}

#: Under DEFAULT_ON, the probability a *disinterested* tenant opts out.
DEFAULT_ON_OPT_OUT = 0.75


@dataclass(frozen=True)
class CloudService:
    """One product of a provider (CDN, storage, LB, compute...).

    Attributes:
        name: product name (Table 2's Service column).
        cname_suffix: tenants' DNS names CNAME onto this suffix; the
            He-et-al-style service fingerprint used by the analysis.
        policy: IPv6 enablement policy.
        weight: share of the provider's tenants on this service.
        v4_org_id / v6_org_id: organization whose AS originates each
            family's addresses.  They differ only for split-brand setups
            (bunny.net AAAA vs. Datacamp A; Akamai International AAAA vs.
            Akamai Technologies A).
        ease: how easy opting in actually is, as a multiplier on the
            opt-in/code-change base rates -- the paper's Table 2 shows
            a 20x adoption spread between opt-in services (a console
            toggle on Fastly vs. a CNAME change on ELB vs. an embedded-
            URL change on S3).
    """

    name: str
    cname_suffix: str
    policy: Ipv6Policy
    weight: float
    v4_org_id: str
    v6_org_id: str
    ease: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("service weight must be positive")
        if self.ease <= 0:
            raise ValueError("ease must be positive")

    @property
    def can_serve_ipv6(self) -> bool:
        return self.policy is not Ipv6Policy.NONE

    @property
    def ipv6_effortless(self) -> bool:
        """IPv6 without tenant action (what CDN-first providers offer)."""
        return self.policy in (Ipv6Policy.ALWAYS_ON, Ipv6Policy.DEFAULT_ON)

    def tenant_enables_ipv6(self, inclination: float, rng: RngStream) -> bool:
        """Does a tenant with the given IPv6 ``inclination`` end up with AAAA?

        ``inclination`` in [0, 1] is the tenant's latent interest in IPv6;
        the policy decides how much interest it takes.
        """
        if not 0.0 <= inclination <= 1.0:
            raise ValueError("inclination must be in [0, 1]")
        if self.policy is Ipv6Policy.ALWAYS_ON:
            return True
        if self.policy is Ipv6Policy.NONE:
            return False
        if self.policy is Ipv6Policy.DEFAULT_ON:
            # Enabled unless the tenant actively opts out; disinterested
            # tenants opt out at DEFAULT_ON_OPT_OUT.
            opt_out_prob = DEFAULT_ON_OPT_OUT * (1.0 - inclination)
            return not rng.bernoulli(opt_out_prob)
        base = POLICY_BASE_RATE[self.policy] * self.ease
        return rng.bernoulli(min(1.0, base * (0.25 + 1.5 * inclination)))


@dataclass(frozen=True)
class CloudProvider:
    """A cloud/CDN operator: organizations, ASes, and services."""

    name: str
    org_ids: tuple[str, ...]  # primary org first
    org_names: tuple[str, ...]
    asns: tuple[int, ...]  # parallel to org_ids
    services: tuple[CloudService, ...]
    market_weight: float  # share of hosted FQDNs (Table 3's Count column)
    edge_pool_size: int = 48  # shared edge addresses per service

    def __post_init__(self) -> None:
        if not self.services:
            raise ValueError("a provider needs at least one service")
        if len(self.org_ids) != len(self.org_names) or len(self.org_ids) != len(self.asns):
            raise ValueError("org_ids, org_names, asns must be parallel")
        if self.market_weight <= 0:
            raise ValueError("market_weight must be positive")
        known = set(self.org_ids)
        for service in self.services:
            for org in (service.v4_org_id, service.v6_org_id):
                if org not in known:
                    raise ValueError(
                        f"service {service.name} references unknown org {org!r}"
                    )

    @property
    def primary_org_id(self) -> str:
        return self.org_ids[0]

    def asn_of_org(self, org_id: str) -> int:
        return self.asns[self.org_ids.index(org_id)]

    def pick_service(self, rng: RngStream, prefer_v6: bool = False) -> CloudService:
        """Pick a service by weight.

        With ``prefer_v6``, restrict to effortless-IPv6 services when the
        provider has any (an IPv6-committed operator fronts with the CDN
        product, not the raw compute one).
        """
        services = self.services
        if prefer_v6:
            effortless = tuple(s for s in services if s.ipv6_effortless)
            if effortless:
                services = effortless
        return rng.weighted_choice(services, [s.weight for s in services])


def _svc(
    name: str,
    suffix: str,
    policy: Ipv6Policy,
    weight: float,
    org: str,
    v6_org: str | None = None,
    ease: float = 1.0,
) -> CloudService:
    return CloudService(
        name=name,
        cname_suffix=suffix,
        policy=policy,
        weight=weight,
        v4_org_id=org,
        v6_org_id=v6_org if v6_org is not None else org,
        ease=ease,
    )


def build_provider_catalog() -> list[CloudProvider]:
    """The paper's top-15 providers plus a self-hosted remainder.

    Market weights follow Table 3's domain counts; service mixes and
    policies follow Table 2.  The Bunnyway/Datacamp partnership and the
    dual-Akamai organization split are encoded so the analyses reproduce
    the paper's attribution artifacts.
    """
    p = Ipv6Policy
    return [
        CloudProvider(
            name="Cloudflare",
            org_ids=("cloudflare", "cloudflare-london"),
            org_names=("Cloudflare, Inc.", "Cloudflare London, LLC"),
            asns=(13335, 209242),
            services=(
                _svc("Cloudflare CDN", "cdn.cloudflare-repro.example", p.DEFAULT_ON, 8.0, "cloudflare"),
                _svc("Cloudflare Spectrum", "spectrum.cloudflare-repro.example", p.OPT_IN, 1.0, "cloudflare-london"),
            ),
            market_weight=22.9,  # Cloudflare Inc + London rows of Table 3
        ),
        CloudProvider(
            name="Amazon",
            org_ids=("amazon",),
            org_names=("Amazon.com, Inc.",),
            asns=(16509,),
            services=(
                _svc("Amazon CloudFront CDN", "cloudfront.aws-repro.example", p.DEFAULT_ON, 3.0, "amazon"),
                # A CNAME change is needed for ELB IPv6 (paper: 7.4%).
                _svc("Amazon Elastic Load Balancer", "elb.aws-repro.example", p.OPT_IN, 2.0, "amazon", ease=0.5),
                _svc("Amazon Global Accelerator", "awsglobalaccelerator.aws-repro.example", p.OPT_IN, 0.3, "amazon", ease=0.25),
                # S3 dual-stack means changing embedded URLs (paper: 0.4%).
                _svc("Amazon S3", "s3.aws-repro.example", p.OPT_IN_CODE_CHANGE, 2.0, "amazon", ease=0.4),
                _svc("Amazon API Gateway", "execute-api.aws-repro.example", p.NONE, 0.6, "amazon"),
                _svc("Amazon Web App. Firewall", "waf.aws-repro.example", p.NONE, 0.3, "amazon"),
                _svc("Amazon EC2", "compute.aws-repro.example", p.OPT_IN, 13.0, "amazon", ease=0.55),
            ),
            market_weight=21.2,
        ),
        CloudProvider(
            name="Google",
            org_ids=("google",),
            org_names=("Google LLC",),
            asns=(396982,),
            services=(
                _svc("Google Cloud Run", "run.gcp-repro.example", p.ALWAYS_ON, 1.0, "google"),
                _svc("Google App Engine", "appspot.gcp-repro.example", p.DEFAULT_ON, 1.2, "google"),
                _svc("Google Cloud LB", "glb.gcp-repro.example", p.DEFAULT_ON, 6.0, "google"),
                _svc("Google Compute", "gce.gcp-repro.example", p.OPT_IN, 2.8, "google"),
            ),
            market_weight=14.9,
        ),
        CloudProvider(
            name="Akamai",
            org_ids=("akamai-intl", "akamai-tech"),
            org_names=("Akamai International B.V.", "Akamai Technologies, Inc."),
            asns=(20940, 16625),
            services=(
                # Modern platform: dual-stack out of Akamai International.
                _svc("Akamai CDN", "edgekey.akamai-repro.example", p.DEFAULT_ON, 3.0, "akamai-intl"),
                _svc("Akamai NetStorage", "netstorage.akamai-repro.example", p.DEFAULT_ON, 0.8, "akamai-intl"),
                # Legacy platform: A records from Akamai Technologies; a
                # tenant that enables IPv6 gets AAAA from International --
                # the split that creates the paper's IPv6-only artifact.
                _svc("Akamai Legacy CDN", "edgesuite.akamai-repro.example", p.OPT_IN, 2.1, "akamai-tech", v6_org="akamai-intl"),
            ),
            market_weight=5.9,
        ),
        CloudProvider(
            name="Fastly",
            org_ids=("fastly",),
            org_names=("Fastly, Inc.",),
            asns=(54113,),
            services=(
                # Opt-in, but a single console toggle (Figure 11: 34.3%).
                _svc("Fastly CDN", "fastly.fastly-repro.example", p.OPT_IN, 3.0, "fastly", ease=2.0),
            ),
            market_weight=2.8,
        ),
        CloudProvider(
            name="Microsoft",
            org_ids=("microsoft",),
            org_names=("Microsoft Corporation",),
            asns=(8075,),
            services=(
                _svc("Azure Front Door CDN", "azurefd.azure-repro.example", p.ALWAYS_ON, 0.35, "microsoft"),
                _svc("Azure Stack/IoT Edge", "azureiot.azure-repro.example", p.ALWAYS_ON, 0.4, "microsoft"),
                # Dual-stack VNets require substantial redeployment (0.3%).
                _svc("Azure Cloud Services / VMs", "cloudapp.azure-repro.example", p.OPT_IN, 0.6, "microsoft", ease=0.05),
                _svc("Azure Websites", "azurewebsites.azure-repro.example", p.NONE, 0.55, "microsoft"),
                _svc("Azure Blob Storage", "blob.azure-repro.example", p.NONE, 0.35, "microsoft"),
            ),
            market_weight=2.0,
        ),
        CloudProvider(
            name="Hetzner",
            org_ids=("hetzner",),
            org_names=("Hetzner Online GmbH",),
            asns=(24940,),
            services=(
                _svc("Hetzner Cloud", "hcloud.hetzner-repro.example", p.OPT_IN, 1.0, "hetzner"),
            ),
            market_weight=1.2,
        ),
        CloudProvider(
            name="OVH",
            org_ids=("ovh",),
            org_names=("OVH SAS",),
            asns=(16276,),
            services=(
                _svc("OVH Hosting", "ovh.ovh-repro.example", p.OPT_IN, 1.0, "ovh", ease=0.8),
            ),
            market_weight=1.1,
        ),
        CloudProvider(
            name="Alibaba",
            org_ids=("alibaba",),
            org_names=("Hangzhou Alibaba Advertising Co.,Ltd.",),
            asns=(37963,),
            services=(
                _svc("Alibaba Cloud", "alicloud.alibaba-repro.example", p.OPT_IN, 1.0, "alibaba", ease=1.2),
            ),
            market_weight=1.1,
        ),
        CloudProvider(
            name="Datacamp",
            org_ids=("datacamp",),
            org_names=("Datacamp Limited",),
            asns=(60068,),
            services=(
                _svc("CDN77", "cdn77.datacamp-repro.example", p.DEFAULT_ON, 1.0, "datacamp"),
            ),
            market_weight=1.1,
        ),
        CloudProvider(
            name="DigitalOcean",
            org_ids=("digitalocean",),
            org_names=("DigitalOcean, LLC",),
            asns=(14061,),
            services=(
                _svc("DigitalOcean Droplets", "droplet.do-repro.example", p.OPT_IN, 1.0, "digitalocean", ease=0.55),
            ),
            market_weight=0.7,
        ),
        CloudProvider(
            name="Incapsula",
            org_ids=("incapsula",),
            org_names=("Incapsula Inc",),
            asns=(19551,),
            services=(
                _svc("Incapsula WAF", "incap.incapsula-repro.example", p.OPT_IN_CODE_CHANGE, 1.0, "incapsula", ease=3.0),
            ),
            market_weight=0.5,
        ),
        CloudProvider(
            name="Bunnyway",
            # The partnership of section 5.1: bunny.net serves AAAA from
            # its own AS, while the A records sit on Datacamp servers --
            # the *same* Datacamp organization that runs CDN77, which is
            # what confuses AS-to-Org attribution in Table 3.
            org_ids=("bunnyway", "datacamp"),
            org_names=("BUNNYWAY, informacijske storitve d.o.o.", "Datacamp Limited"),
            asns=(200325, 60068),
            services=(
                _svc("bunny.net CDN", "b-cdn.bunny-repro.example", p.DEFAULT_ON, 1.0, "datacamp", v6_org="bunnyway"),
            ),
            market_weight=0.5,
        ),
        CloudProvider(
            name="Self-hosted",
            org_ids=("selfhosted",),
            org_names=("(self-hosted / other)",),
            asns=(65000,),
            services=(
                _svc("Self-hosted", "origin.selfhosted-repro.example", p.OPT_IN, 1.0, "selfhosted"),
            ),
            market_weight=24.0,
            edge_pool_size=4096,
        ),
    ]


def providers_by_name(
    catalog: list[CloudProvider] | None = None,
) -> dict[str, CloudProvider]:
    providers = catalog if catalog is not None else build_provider_catalog()
    return {provider.name: provider for provider in providers}
