"""Cloud and CDN providers, their services, and tenant placement.

Implements the paper's section 5 subject matter: a catalog of cloud/CDN
providers with per-service IPv6 enablement policies (always-on, default-on
with opt-out, opt-in, opt-in-by-code-change), multi-AS organizations and
split-brand partnerships (the Bunnyway/Datacamp and dual-Akamai attribution
artifacts), and a tenant model in which a site's subdomains are placed
across one or more providers -- the basis of the multi-cloud comparison in
Figure 12.
"""

from repro.cloud.providers import (
    CloudProvider,
    CloudService,
    Ipv6Policy,
    build_provider_catalog,
)
from repro.cloud.tenancy import SubdomainPlacement, Tenant, TenantPlanner

__all__ = [
    "CloudProvider",
    "CloudService",
    "Ipv6Policy",
    "build_provider_catalog",
    "SubdomainPlacement",
    "Tenant",
    "TenantPlanner",
]
