"""Tenants and their placement across clouds.

A *tenant* is an eTLD+1 whose subdomains (www, api, static, blog, ...) are
hosted on one or more cloud services.  The paper's Figure 12 rests on
*multi-cloud tenants*: when one tenant's subdomains sit on two providers,
differences in IPv6-fullness between those subdomains isolate the
providers' contribution from the tenant's interest.

The generative model mirrors that identification strategy: each tenant has
one latent ``inclination`` toward IPv6 shared by all its subdomains, and
each subdomain's AAAA outcome is drawn from its *service's* policy given
that inclination.  Providers therefore differ in outcome for the same
tenant exactly when their policies differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.providers import CloudProvider, CloudService, Ipv6Policy
from repro.util.rng import RngStream

#: Subdomain labels tenants deploy, most common first.
SUBDOMAIN_LABELS = (
    "www", "api", "static", "cdn", "img", "blog", "login", "info",
    "assets", "media", "shop", "mail",
)

#: Probability a subsequent subdomain stays on the tenant's primary cloud.
PRIMARY_STICKINESS = 0.85


@dataclass(frozen=True)
class SubdomainPlacement:
    """One subdomain hosted on one cloud service."""

    fqdn: str
    tenant: str
    provider_name: str
    service: CloudService
    has_aaaa: bool


@dataclass
class Tenant:
    """A site operator: an eTLD+1 plus its hosted subdomains."""

    etld1: str
    inclination: float
    placements: list[SubdomainPlacement] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.inclination <= 1.0:
            raise ValueError("inclination must be in [0, 1]")

    @property
    def provider_names(self) -> set[str]:
        return {p.provider_name for p in self.placements}

    @property
    def is_multicloud(self) -> bool:
        return len(self.provider_names) >= 2

    def placements_on(self, provider_name: str) -> list[SubdomainPlacement]:
        return [p for p in self.placements if p.provider_name == provider_name]

    def ipv6_full_fraction_on(self, provider_name: str) -> float:
        """Fraction of this tenant's subdomains on ``provider_name`` that
        are IPv6-enabled (the per-cloud score fed to Figure 12's test)."""
        mine = self.placements_on(provider_name)
        if not mine:
            raise ValueError(f"tenant {self.etld1} has no subdomains on {provider_name}")
        return sum(1 for p in mine if p.has_aaaa) / len(mine)

    @property
    def main_placement(self) -> SubdomainPlacement:
        """The placement serving the site's main page (www)."""
        for placement in self.placements:
            if placement.fqdn.startswith("www."):
                return placement
        return self.placements[0]


class TenantPlanner:
    """Places tenants' subdomains onto cloud services."""

    def __init__(self, providers: list[CloudProvider], rng: RngStream) -> None:
        if not providers:
            raise ValueError("need at least one provider")
        self.providers = providers
        self._rng = rng
        self._weights = [p.market_weight for p in providers]

    def pick_primary(self, cdn_bias: float = 0.0) -> CloudProvider:
        """Pick a tenant's primary provider.

        ``cdn_bias`` in [0, 1] shifts weight toward providers whose top
        service is a default-on/always-on CDN -- popular sites dispropor-
        tionately front with CDNs, which drives Figure 6's rank gradient.
        """
        if not 0.0 <= cdn_bias <= 1.0:
            raise ValueError("cdn_bias must be in [0, 1]")
        weights = []
        for provider, base in zip(self.providers, self._weights):
            top = max(provider.services, key=lambda s: s.weight)
            is_cdn_first = top.policy in (Ipv6Policy.ALWAYS_ON, Ipv6Policy.DEFAULT_ON)
            weights.append(base * (1.0 + 2.0 * cdn_bias) if is_cdn_first else base)
        return self._rng.weighted_choice(self.providers, weights)

    def pick_primary_effortless(self) -> CloudProvider:
        """Pick among providers offering effortless IPv6 (always-on or
        default-on products).  Used for operators that have already
        committed to IPv6 (e.g. dual-stack third parties).

        The market weight is scaled by the share of the provider's
        portfolio that is effortless: a CDN-first provider attracts far
        more IPv6-committed operators than a compute-first provider that
        happens to also sell a CDN.
        """
        eligible: list[tuple[CloudProvider, float]] = []
        for provider, weight in zip(self.providers, self._weights):
            total = sum(s.weight for s in provider.services)
            effortless = sum(s.weight for s in provider.services if s.ipv6_effortless)
            if effortless > 0:
                eligible.append((provider, weight * effortless / total))
        if not eligible:
            return self.pick_primary()
        providers, weights = zip(*eligible)
        return self._rng.weighted_choice(list(providers), list(weights))

    def place_tenant(
        self,
        etld1: str,
        num_subdomains: int,
        inclination: float,
        primary: CloudProvider | None = None,
        forced_aaaa: bool | None = None,
        prefer_v6_services: bool = False,
    ) -> Tenant:
        """Create a tenant and place ``num_subdomains`` of its subdomains.

        The first subdomain is always ``www`` (the main page).  Subsequent
        subdomains stay on the primary provider with PRIMARY_STICKINESS --
        *reusing the www service* (one CDN configuration fronts the whole
        site, so first-party assets share the main page's IPv6 fate, which
        keeps first-party-only IPv6-partial sites rare, as in the paper's
        2.3%) -- otherwise they land on another market-weighted provider,
        creating the multi-cloud tenant population.

        The tenant enables IPv6 *once per service*: all subdomains on the
        same service share one enablement decision.  ``forced_aaaa``
        overrides the policy outcome for every placement (used for
        third-party services whose IPv6 status is set by category), but a
        service whose policy is NONE still cannot serve AAAA.
        ``prefer_v6_services`` makes the tenant pick effortless-IPv6
        products within each provider (how committed operators deploy).
        """
        if num_subdomains < 1:
            raise ValueError("a tenant needs at least one subdomain")
        if num_subdomains > len(SUBDOMAIN_LABELS):
            num_subdomains = len(SUBDOMAIN_LABELS)
        tenant = Tenant(etld1=etld1, inclination=inclination)
        primary = primary or self.pick_primary()
        www_service: CloudService | None = None
        decisions: dict[str, bool] = {}  # service suffix -> enabled
        for label in SUBDOMAIN_LABELS[:num_subdomains]:
            if label == "www" or self._rng.bernoulli(PRIMARY_STICKINESS):
                provider = primary
                service = (
                    www_service
                    if www_service is not None
                    else provider.pick_service(self._rng, prefer_v6=prefer_v6_services)
                )
            else:
                provider = self._rng.weighted_choice(self.providers, self._weights)
                service = provider.pick_service(self._rng, prefer_v6=prefer_v6_services)
            if label == "www":
                www_service = service
            if forced_aaaa is not None:
                # Forced status still bows to the platform: a NONE-policy
                # service cannot serve AAAA, and an always-on service
                # cannot be disabled.
                has_aaaa = (forced_aaaa and service.can_serve_ipv6) or (
                    service.policy is Ipv6Policy.ALWAYS_ON
                )
            else:
                key = service.cname_suffix
                if key not in decisions:
                    decisions[key] = service.tenant_enables_ipv6(inclination, self._rng)
                has_aaaa = decisions[key]
            tenant.placements.append(
                SubdomainPlacement(
                    fqdn=f"{label}.{etld1}",
                    tenant=etld1,
                    provider_name=provider.name,
                    service=service,
                    has_aaaa=has_aaaa,
                )
            )
        return tenant
