"""Canonical calibrated scenarios shared by examples, tests, and benches."""

from repro.datasets.scenarios import (
    BENCH_CENSUS_SITES,
    BENCH_TRAFFIC_DAYS,
    CLI_CENSUS_SITES,
    CLI_TRAFFIC_DAYS,
    PAPER_CENSUS_SITES,
    PAPER_OBSERVATION_DAYS,
    SCALE_PRESETS,
    ScalePreset,
    build_census,
    build_residence_study,
    census_scenario,
    residence_scenario,
)

__all__ = [
    "BENCH_CENSUS_SITES",
    "BENCH_TRAFFIC_DAYS",
    "CLI_CENSUS_SITES",
    "CLI_TRAFFIC_DAYS",
    "PAPER_CENSUS_SITES",
    "PAPER_OBSERVATION_DAYS",
    "SCALE_PRESETS",
    "ScalePreset",
    "build_census",
    "build_residence_study",
    "census_scenario",
    "residence_scenario",
]
