"""Scenario builders: one place where examples, tests, and every benchmark
get their universes, so results across the repository stay comparable.

The paper's actual scale (nine months of traffic, a 100k-site crawl) is
reachable with these builders but slow in CI, so two calibrated sizes are
provided:

* the *bench* scale (the default below) reproduces every table and figure
  shape in minutes;
* the paper scale can be requested explicitly (``num_days=273``,
  ``num_sites=100_000``) when time permits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crawler.crawl import CensusConfig, WebCensus
from repro.crawler.records import CrawlDataset
from repro.traffic.apps import build_service_catalog
from repro.traffic.generate import ResidenceDataset, TrafficGenerator
from repro.traffic.residences import build_paper_residences
from repro.traffic.universe import ServiceUniverse
from repro.web.ecosystem import WebEcosystem, WebEcosystemConfig

#: The paper observes November 2024 through August 2025.
PAPER_OBSERVATION_DAYS = 273

#: The paper crawls the Tranco top-100k.
PAPER_CENSUS_SITES = 100_000

#: Bench scale: long enough for MSTL's weekly component and spring break.
BENCH_TRAFFIC_DAYS = 154  # 22 weeks, covering the day-135 vacation

#: Bench scale for the census (the paper crawls 100k sites).
BENCH_CENSUS_SITES = 4000

#: CLI default scale: seconds-fast sanity runs.
CLI_TRAFFIC_DAYS = 28
CLI_CENSUS_SITES = 1500


@dataclass(frozen=True)
class ScalePreset:
    """One named (days, sites) scale from the README's calibration table."""

    name: str
    days: int
    sites: int
    purpose: str


#: The calibrated scales, addressable by name (``--scale`` on the CLI).
SCALE_PRESETS: dict[str, ScalePreset] = {
    preset.name: preset
    for preset in (
        ScalePreset("cli", CLI_TRAFFIC_DAYS, CLI_CENSUS_SITES,
                    "seconds-fast sanity runs"),
        ScalePreset("bench", BENCH_TRAFFIC_DAYS, BENCH_CENSUS_SITES,
                    "reproduces every table/figure shape in minutes"),
        ScalePreset("paper", PAPER_OBSERVATION_DAYS, PAPER_CENSUS_SITES,
                    "the paper's nine-month window and 100k-site crawl"),
    )
}


@dataclass
class ResidenceStudy:
    """The five-residence client-side study, generated."""

    universe: ServiceUniverse
    datasets: dict[str, ResidenceDataset]
    num_days: int

    def dataset(self, name: str) -> ResidenceDataset:
        return self.datasets[name]


@dataclass
class CensusStudy:
    """The server-side census plus its universe."""

    ecosystem: WebEcosystem
    dataset: CrawlDataset
    config: WebEcosystemConfig = field(init=False)

    def __post_init__(self) -> None:
        self.config = self.ecosystem.config


def build_residence_study(
    num_days: int = BENCH_TRAFFIC_DAYS,
    seed: int = 42,
    residences: tuple[str, ...] | None = None,
    parallel: bool | int | None = None,
    catalog: list | None = None,
    profiles: list | None = None,
    he_config=None,
) -> ResidenceStudy:
    """Generate the five-residence traffic study (paper section 3).

    Args:
        num_days: observation length; 273 reproduces the paper window.
        seed: scenario seed (whole study is deterministic in it).
        residences: restrict to a subset of "A".."E" (all by default).
        parallel: fan residences out over worker processes (``None``
            auto-detects; results are identical to the sequential path).
        catalog: replacement service catalog (what-if overlays hand in a
            transformed copy; default :func:`build_service_catalog`).
        profiles: replacement residence profiles (what-if overlays;
            default :func:`build_paper_residences`), filtered by
            ``residences`` either way.
        he_config: Happy Eyeballs timer overrides for the client stacks
            (``None`` keeps the RFC 8305 defaults).
    """
    universe = ServiceUniverse(catalog if catalog is not None else build_service_catalog())
    generator = TrafficGenerator(universe, seed=seed, he_config=he_config)
    profiles = list(profiles) if profiles is not None else build_paper_residences()
    if residences is not None:
        wanted = set(residences)
        profiles = [p for p in profiles if p.name in wanted]
        if not profiles:
            raise ValueError(f"no residences match {residences!r}")
    datasets = generator.generate_all(profiles, num_days=num_days, parallel=parallel)
    return ResidenceStudy(universe=universe, datasets=datasets, num_days=num_days)


def build_census(
    num_sites: int = BENCH_CENSUS_SITES,
    seed: int = 42,
    link_clicks: int = 5,
    mutate=None,
) -> CensusStudy:
    """Build a web universe and crawl it (paper section 4.1).

    Args:
        num_sites: top-list size; 100_000 reproduces the paper's scale.
        seed: scenario seed.
        link_clicks: same-site link clicks per site (paper uses 5;
            0 reproduces the paper's main-page-only comparison).
        mutate: optional hook called with the built :class:`WebEcosystem`
            *before* the crawl -- the what-if overlays' entry point for
            counterfactual universes (e.g. a provider dual-stacking).
    """
    ecosystem = WebEcosystem(WebEcosystemConfig(num_sites=num_sites, seed=seed))
    if mutate is not None:
        mutate(ecosystem)
    census = WebCensus(ecosystem, CensusConfig(link_clicks=link_clicks, seed=seed))
    return CensusStudy(ecosystem=ecosystem, dataset=census.run())


# Cached accessors, kept for callers predating repro.api: both delegate to
# the Study session cache so a process never builds the same universe twice
# no matter which surface asked for it.


def residence_scenario(
    num_days: int = BENCH_TRAFFIC_DAYS, seed: int = 42
) -> ResidenceStudy:
    """Cached :func:`build_residence_study` (one build per process)."""
    from repro.api.session import Study

    return Study(days=num_days, seed=seed).traffic


def census_scenario(
    num_sites: int = BENCH_CENSUS_SITES, seed: int = 42, link_clicks: int = 5
) -> CensusStudy:
    """Cached :func:`build_census` (one build per process)."""
    from repro.api.session import Study

    return Study(sites=num_sites, seed=seed, link_clicks=link_clicks).census
