"""The router flow monitor: conntrack events, daily logs, anonymized export.

This is the measurement apparatus of the paper's section 3.1: a lightweight
monitor on the home router that records flow beginnings and ends from
connection-tracking events (conntrack NEW and DESTROY), with per-direction
byte accounting (``nf_conntrack_acct``), identifies flows by their 5-tuple
(plus ICMP type/code/id), logs them daily, and uploads CryptoPAN-anonymized
records to the collection server.

Two representations of the same log coexist: the record-oriented daily
lists the monitor appends to (the measurement path), and the columnar
:class:`~repro.flowmon.frame.FlowFrame` -- a NumPy structured array (day,
scope, family, protocol, bytes in/out, packets, duration, interned peer /
AS / domain ids) built once per monitor via :meth:`FlowMonitor.frame` and
consumed by the vectorized analysis layer.  The frame's rows follow the
canonical ``records()`` order, so record-loop and columnar analyses agree
bit-for-bit.
"""

from repro.flowmon.conntrack import (
    ConntrackEvent,
    ConntrackEventType,
    ConntrackTable,
    FlowKey,
    FlowRecord,
    IcmpInfo,
    Protocol,
)
from repro.flowmon.export import AnonymizedRecord, FlowExporter
from repro.flowmon.frame import FLOW_DTYPE, FlowFrame
from repro.flowmon.monitor import FlowMonitor, FlowScope, RouterConfig

__all__ = [
    "ConntrackEvent",
    "ConntrackEventType",
    "ConntrackTable",
    "FLOW_DTYPE",
    "FlowFrame",
    "FlowKey",
    "FlowRecord",
    "IcmpInfo",
    "Protocol",
    "AnonymizedRecord",
    "FlowExporter",
    "FlowMonitor",
    "FlowScope",
    "RouterConfig",
]
