"""FlowFrame: a columnar (NumPy structured-array) view of a flow log.

The record-oriented :class:`~repro.flowmon.monitor.FlowMonitor` mirrors
what the paper's router monitor uploads: per-day lists of
:class:`~repro.flowmon.conntrack.FlowRecord` objects.  That shape is
right for the measurement path but wrong for the analysis path, where
every table and figure re-aggregates the same nine months of flows.
``FlowFrame`` converts the log once into parallel NumPy columns (day,
scope, family, protocol, bytes in/out, packets, duration, start time,
interned external-peer id) so every downstream group-by is a
``np.bincount``/``np.add.at`` over integer codes instead of a Python
loop over dataclasses.

Attribution (``peer -> origin AS``, ``peer -> rDNS eTLD+1 domain``) is
computed once per *unique* external peer rather than once per record --
the dominant cost of the AS and domain breakdowns at paper scale -- and
stored as per-peer lookup arrays (:attr:`FlowFrame.peer_asn`,
:attr:`FlowFrame.peer_domain`), so the per-flow AS/domain columns are a
single fancy-indexing expression.

Rows are ordered exactly like ``FlowMonitor.records()`` (days ascending,
scopes in :class:`FlowScope` declaration order, appends within) so
positional and first-appearance semantics of the original record loops
are preserved bit-for-bit by the vectorized analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.flowmon.monitor import FlowScope
from repro.net.addr import IpAddress
from repro.net.psl import PublicSuffixList, default_psl

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flowmon.monitor import FlowMonitor
    from repro.net.bgp import RoutingTable
    from repro.net.rdns import ReverseDns

#: Integer codes for :class:`FlowScope`, in declaration order.
SCOPE_CODES: dict[FlowScope, int] = {s: i for i, s in enumerate(FlowScope)}
SCOPES_BY_CODE: tuple[FlowScope, ...] = tuple(FlowScope)

#: The columnar layout.  ``bytes`` is the precomputed in+out total since
#: every analysis consumes it; ``peer`` indexes :attr:`FlowFrame.peers`
#: (-1 for flows with no external endpoint).
FLOW_DTYPE = np.dtype(
    [
        ("day", np.int32),
        ("hour", np.int64),  # absolute hour-of-study index
        ("scope", np.int8),
        ("family", np.int8),  # 4 or 6
        ("protocol", np.uint8),  # Protocol.value (TCP=6, UDP=17, ICMP=1)
        ("bytes", np.int64),
        ("bytes_in", np.int64),
        ("bytes_out", np.int64),
        ("packets", np.int64),
        ("duration", np.float64),
        ("start_time", np.float64),
        ("peer", np.int32),
    ]
)

_HOUR = 3600.0
_DAY = 86400.0


@dataclass
class FlowFrame:
    """One residence's flow log as parallel NumPy columns.

    Attributes:
        data: the structured array (:data:`FLOW_DTYPE`), one row per
            finished flow, in canonical ``records()`` order.
        peers: interned external peer addresses, in first-appearance
            order; row ``peer`` values index into this tuple.
        peer_asn: per-peer BGP origin AS (-1 unknown); filled by
            :meth:`with_attribution`.
        peer_domain: per-peer rDNS eTLD+1 id into :attr:`domains`
            (-1 unknown); filled by :meth:`with_attribution`.
        domains: interned eTLD+1 strings, in first-appearance order.
    """

    data: np.ndarray
    peers: tuple[IpAddress, ...] = ()
    peer_asn: np.ndarray | None = None
    peer_domain: np.ndarray | None = None
    domains: tuple[str, ...] = ()
    _flow_asn: np.ndarray | None = field(default=None, repr=False)
    _flow_domain: np.ndarray | None = field(default=None, repr=False)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_monitor(cls, monitor: "FlowMonitor") -> "FlowFrame":
        """Build the core columns from a monitor's daily logs (one pass).

        Prefer :meth:`FlowMonitor.frame`, which caches the result and
        invalidates it when new flows are observed.
        """
        config = monitor.config
        n = sum(
            len(records)
            for per_scope in monitor.daily_logs.values()
            for records in per_scope.values()
        )
        data = np.empty(n, dtype=FLOW_DTYPE)
        peer_ids: dict[IpAddress, int] = {}
        peers: list[IpAddress] = []

        day_col = data["day"]
        hour_col = data["hour"]
        scope_col = data["scope"]
        family_col = data["family"]
        proto_col = data["protocol"]
        bytes_col = data["bytes"]
        bin_col = data["bytes_in"]
        bout_col = data["bytes_out"]
        pkts_col = data["packets"]
        dur_col = data["duration"]
        start_col = data["start_time"]
        peer_col = data["peer"]

        external = SCOPE_CODES[FlowScope.EXTERNAL]
        is_local = config.is_local
        i = 0
        for day in sorted(monitor.daily_logs):
            per_scope = monitor.daily_logs[day]
            for scope in FlowScope:
                scope_code = SCOPE_CODES[scope]
                for record in per_scope.get(scope, ()):
                    key = record.key
                    start = record.start_time
                    bytes_in = record.bytes_in
                    bytes_out = record.bytes_out
                    day_col[i] = int(start // _DAY)
                    hour_col[i] = int(start // _HOUR)
                    scope_col[i] = scope_code
                    family_col[i] = key.src.family.value
                    proto_col[i] = key.protocol.value
                    bytes_col[i] = bytes_in + bytes_out
                    bin_col[i] = bytes_in
                    bout_col[i] = bytes_out
                    pkts_col[i] = record.packets_in + record.packets_out
                    dur_col[i] = record.end_time - start
                    start_col[i] = start
                    if scope_code == external:
                        peer = key.dst if is_local(key.src) else key.src
                        peer_id = peer_ids.get(peer)
                        if peer_id is None:
                            peer_id = peer_ids[peer] = len(peers)
                            peers.append(peer)
                        peer_col[i] = peer_id
                    else:
                        peer_col[i] = -1
                    i += 1
        assert i == n, "daily logs changed during frame construction"
        return cls(data=data, peers=tuple(peers))

    def with_attribution(
        self,
        routing: "RoutingTable",
        rdns: "ReverseDns",
        psl: PublicSuffixList | None = None,
    ) -> "FlowFrame":
        """Fill the per-peer AS and domain lookup arrays (idempotent).

        Each *unique* peer is resolved once through the BGP table and the
        reverse-DNS map; domain strings are interned in first-appearance
        order, which (because peers are interned in first-record order)
        matches the insertion order of the original per-record dict loops.
        """
        if self.peer_asn is not None and self.peer_domain is not None:
            return self
        psl = psl or default_psl()
        n_peers = len(self.peers)
        peer_asn = np.full(n_peers, -1, dtype=np.int64)
        peer_domain = np.full(n_peers, -1, dtype=np.int32)
        domain_ids: dict[str, int] = {}
        domains: list[str] = []
        for index, peer in enumerate(self.peers):
            asn = routing.origin_of(peer)
            if asn is not None:
                peer_asn[index] = asn
            domain = rdns.lookup_etld1(peer, psl)
            if domain is not None:
                domain_id = domain_ids.get(domain)
                if domain_id is None:
                    domain_id = domain_ids[domain] = len(domains)
                    domains.append(domain)
                peer_domain[index] = domain_id
        self.peer_asn = peer_asn
        self.peer_domain = peer_domain
        self.domains = tuple(domains)
        self._flow_asn = None
        self._flow_domain = None
        return self

    # -- basic shape -------------------------------------------------------

    def __len__(self) -> int:
        return int(self.data.size)

    @property
    def day(self) -> np.ndarray:
        return self.data["day"]

    @property
    def hour(self) -> np.ndarray:
        return self.data["hour"]

    @property
    def scope(self) -> np.ndarray:
        return self.data["scope"]

    @property
    def family(self) -> np.ndarray:
        return self.data["family"]

    @property
    def protocol(self) -> np.ndarray:
        return self.data["protocol"]

    @property
    def total_bytes(self) -> np.ndarray:
        return self.data["bytes"]

    @property
    def bytes_in(self) -> np.ndarray:
        return self.data["bytes_in"]

    @property
    def bytes_out(self) -> np.ndarray:
        return self.data["bytes_out"]

    @property
    def packets(self) -> np.ndarray:
        return self.data["packets"]

    @property
    def duration(self) -> np.ndarray:
        return self.data["duration"]

    @property
    def start_time(self) -> np.ndarray:
        return self.data["start_time"]

    @property
    def peer(self) -> np.ndarray:
        return self.data["peer"]

    @property
    def is_v6(self) -> np.ndarray:
        return self.data["family"] == 6

    @property
    def flow_asn(self) -> np.ndarray:
        """Per-flow BGP origin AS (-1 for unattributed flows).

        Requires :meth:`with_attribution`.
        """
        if self.peer_asn is None:
            raise ValueError("frame is not attributed; call with_attribution()")
        if self._flow_asn is None:
            peer = self.data["peer"]
            if self.peer_asn.size == 0:  # no external peers at all
                self._flow_asn = np.full(peer.size, -1, dtype=np.int64)
            else:
                self._flow_asn = np.where(
                    peer >= 0, self.peer_asn[np.maximum(peer, 0)], np.int64(-1)
                )
        return self._flow_asn

    @property
    def flow_domain(self) -> np.ndarray:
        """Per-flow rDNS eTLD+1 id into :attr:`domains` (-1 unknown)."""
        if self.peer_domain is None:
            raise ValueError("frame is not attributed; call with_attribution()")
        if self._flow_domain is None:
            peer = self.data["peer"]
            if self.peer_domain.size == 0:  # no external peers at all
                self._flow_domain = np.full(peer.size, -1, dtype=np.int32)
            else:
                self._flow_domain = np.where(
                    peer >= 0, self.peer_domain[np.maximum(peer, 0)], np.int32(-1)
                )
        return self._flow_domain

    # -- selection ---------------------------------------------------------

    def select(
        self, scope: FlowScope | None = None, day: int | None = None
    ) -> "FlowFrame":
        """A filtered view sharing this frame's interning tables.

        Mirrors ``FlowMonitor.records(scope=..., day=...)``: rows keep
        their canonical order, so first-appearance semantics survive.
        """
        mask = None
        if scope is not None:
            mask = self.data["scope"] == SCOPE_CODES[scope]
        if day is not None:
            day_mask = self.data["day"] == day
            mask = day_mask if mask is None else (mask & day_mask)
        if mask is None:
            return self
        sub = FlowFrame(
            data=self.data[mask],
            peers=self.peers,
            peer_asn=self.peer_asn,
            peer_domain=self.peer_domain,
            domains=self.domains,
        )
        return sub

    def mask(self, mask: np.ndarray) -> "FlowFrame":
        """A boolean-mask view sharing this frame's interning tables."""
        return FlowFrame(
            data=self.data[mask],
            peers=self.peers,
            peer_asn=self.peer_asn,
            peer_domain=self.peer_domain,
            domains=self.domains,
        )


def group_sums(
    keys: np.ndarray, values: Iterable[np.ndarray] = ()
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """Group-by with keys in *first-appearance* order.

    Args:
        keys: 1-D integer key per row.
        values: per-row integer columns to sum within each group.

    Returns:
        ``(unique_keys, counts, sums)`` where ``unique_keys`` preserves
        the order each key first appears in (matching the insertion order
        of a ``dict``-based accumulation loop), ``counts`` is the group
        sizes, and ``sums`` holds one exact ``int64`` sum array per value
        column.  All sums use ``np.add.at`` so no float rounding occurs.
    """
    if keys.size == 0:
        return (
            keys[:0],
            np.zeros(0, dtype=np.int64),
            [np.zeros(0, dtype=np.int64) for _ in values],
        )
    uniq, first_index, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    order = np.argsort(first_index, kind="stable")
    rank = np.empty(order.size, dtype=np.int64)
    rank[order] = np.arange(order.size)
    inverse = rank[inverse]
    counts = np.bincount(inverse, minlength=order.size).astype(np.int64)
    sums: list[np.ndarray] = []
    for column in values:
        out = np.zeros(order.size, dtype=np.int64)
        np.add.at(out, inverse, column.astype(np.int64, copy=False))
        sums.append(out)
    return uniq[order], counts, sums


def day_sums(
    day: np.ndarray, values: Sequence[np.ndarray], minlength: int = 0
) -> list[np.ndarray]:
    """Per-day exact integer sums via ``np.add.at`` (index = day)."""
    length = max(minlength, int(day.max()) + 1 if day.size else 0)
    out: list[np.ndarray] = []
    for column in values:
        sums = np.zeros(length, dtype=np.int64)
        if day.size:
            np.add.at(sums, day, column.astype(np.int64, copy=False))
        out.append(sums)
    return out
