"""The router-resident flow monitor.

Subscribes to conntrack DESTROY events, classifies each finished flow by
scope (external LAN<->WAN vs. internal LAN<->LAN, the split of the paper's
Table 1) and address family, and appends it to a per-day log, mirroring the
daily upload cadence of section 3.1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.flowmon.conntrack import (
    ConntrackEvent,
    ConntrackEventType,
    ConntrackTable,
    FlowRecord,
)
from repro.net.addr import Family, IpAddress, Prefix
from repro.util.timeutil import day_index


class FlowScope(enum.Enum):
    """Where a flow's endpoints sit relative to the home network."""

    EXTERNAL = "external"  # LAN <-> WAN
    INTERNAL = "internal"  # LAN <-> LAN
    TRANSIT = "transit"  # neither endpoint local (should not occur at a
    # home router; kept so misconfigurations surface in tests)


@dataclass(frozen=True)
class RouterConfig:
    """Addressing of one residence's router.

    Attributes:
        lan_v4: the RFC1918-style IPv4 LAN prefix.
        lan_v6: the delegated IPv6 prefix (or None for an IPv4-only ISP
            without a tunnel).
    """

    name: str
    lan_v4: Prefix
    lan_v6: Prefix | None

    def __post_init__(self) -> None:
        if self.lan_v4.family is not Family.V4:
            raise ValueError("lan_v4 must be an IPv4 prefix")
        if self.lan_v6 is not None and self.lan_v6.family is not Family.V6:
            raise ValueError("lan_v6 must be an IPv6 prefix")

    def is_local(self, address: IpAddress) -> bool:
        if address.family is Family.V4:
            return self.lan_v4.contains(address)
        return self.lan_v6 is not None and self.lan_v6.contains(address)


@dataclass
class FlowMonitor:
    """Collects finished flows into per-day logs, split by scope.

    Wire it to a :class:`ConntrackTable` with :meth:`attach`; every DESTROY
    event lands in ``daily_logs[day][scope]``.

    Reads are cached: :meth:`records` memoizes each ``(scope, day)``
    concatenation (the analysis layer's 26 artifacts used to pay a full
    O(total flows) list rebuild per call) and :meth:`frame` memoizes the
    columnar :class:`~repro.flowmon.frame.FlowFrame` view.  Both caches
    are invalidated whenever :meth:`observe` logs a new flow.
    """

    config: RouterConfig
    daily_logs: dict[int, dict[FlowScope, list[FlowRecord]]] = field(default_factory=dict)
    records_seen: int = 0
    #: Bumped on every :meth:`observe`; cheap staleness stamp for callers
    #: (e.g. ``ResidenceDataset``) holding derived views of this log.
    version: int = 0
    _records_cache: dict[tuple, list[FlowRecord]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _frame_cache: object = field(default=None, repr=False, compare=False)

    def attach(self, table: ConntrackTable) -> None:
        table.subscribe(self._on_event)

    def _on_event(self, event: ConntrackEvent) -> None:
        if event.event_type is not ConntrackEventType.DESTROY:
            return
        assert event.record is not None
        self.observe(event.record)

    def observe(self, record: FlowRecord) -> FlowScope:
        """Classify and log one finished flow; returns its scope."""
        scope = self.classify(record)
        day = day_index(record.start_time)
        self.daily_logs.setdefault(day, {}).setdefault(scope, []).append(record)
        self.records_seen += 1
        self.version += 1
        if self._records_cache:
            self._records_cache.clear()
        self._frame_cache = None
        return scope

    def classify(self, record: FlowRecord) -> FlowScope:
        src_local = self.config.is_local(record.key.src)
        dst_local = self.config.is_local(record.key.dst)
        if src_local and dst_local:
            return FlowScope.INTERNAL
        if src_local or dst_local:
            return FlowScope.EXTERNAL
        return FlowScope.TRANSIT

    def records(
        self, scope: FlowScope | None = None, day: int | None = None
    ) -> list[FlowRecord]:
        """All logged records, optionally filtered by scope and/or day.

        The returned list is a cached view -- treat it as read-only.  It
        is rebuilt automatically after the next :meth:`observe`.
        """
        key = (scope, day)
        cached = self._records_cache.get(key)
        if cached is not None:
            return cached
        days = [day] if day is not None else sorted(self.daily_logs)
        found: list[FlowRecord] = []
        for d in days:
            per_scope = self.daily_logs.get(d, {})
            scopes = [scope] if scope is not None else list(FlowScope)
            for s in scopes:
                found.extend(per_scope.get(s, []))
        self._records_cache[key] = found
        return found

    def frame(self):
        """The columnar :class:`~repro.flowmon.frame.FlowFrame` view of
        this log (core columns only, no attribution), built once and
        invalidated on :meth:`observe`."""
        if self._frame_cache is None:
            from repro.flowmon.frame import FlowFrame

            self._frame_cache = FlowFrame.from_monitor(self)
        return self._frame_cache

    def observed_days(self) -> list[int]:
        return sorted(self.daily_logs)

    def external_peer(self, record: FlowRecord) -> IpAddress | None:
        """The non-local endpoint of an external flow (the "service" side)."""
        src_local = self.config.is_local(record.key.src)
        dst_local = self.config.is_local(record.key.dst)
        if src_local and not dst_local:
            return record.key.dst
        if dst_local and not src_local:
            return record.key.src
        return None
