"""Anonymized export of flow logs (the daily upload of section 3.1/appendix A).

Before records leave the router, client addresses are pseudonymized with
CryptoPAN: the low 8 bits of IPv4 and the low /64 of IPv6 are scrambled
prefix-preservingly, so analyses can still aggregate by network while
individual hosts stay unidentifiable.  Server (non-local) addresses pass
through unchanged -- the analyses need them for AS and reverse-DNS
attribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flowmon.conntrack import FlowRecord, Protocol
from repro.flowmon.monitor import FlowMonitor, FlowScope
from repro.net.addr import IpAddress
from repro.net.cryptopan import CryptoPan


@dataclass(frozen=True)
class AnonymizedRecord:
    """One uploaded flow record, client side pseudonymized.

    ``peer`` is the external endpoint (cleartext, for service attribution);
    for internal flows both endpoints are anonymized and ``peer`` is None.
    """

    residence: str
    scope: FlowScope
    protocol: Protocol
    is_v6: bool
    start_time: float
    end_time: float
    bytes_total: int
    anonymized_src: IpAddress
    anonymized_dst: IpAddress
    peer: IpAddress | None


class FlowExporter:
    """Turns a monitor's daily logs into anonymized upload batches."""

    def __init__(self, monitor: FlowMonitor, key: bytes) -> None:
        self._monitor = monitor
        self._pan = CryptoPan(key)

    def _maybe_anonymize(self, address: IpAddress) -> IpAddress:
        if self._monitor.config.is_local(address):
            return self._pan.anonymize_client(address)
        return address

    def export_record(self, record: FlowRecord) -> AnonymizedRecord:
        scope = self._monitor.classify(record)
        peer = self._monitor.external_peer(record) if scope is FlowScope.EXTERNAL else None
        return AnonymizedRecord(
            residence=self._monitor.config.name,
            scope=scope,
            protocol=record.key.protocol,
            is_v6=record.key.is_v6,
            start_time=record.start_time,
            end_time=record.end_time,
            bytes_total=record.total_bytes,
            anonymized_src=self._maybe_anonymize(record.key.src),
            anonymized_dst=self._maybe_anonymize(record.key.dst),
            peer=peer,
        )

    def export_day(self, day: int) -> list[AnonymizedRecord]:
        """The daily upload batch for ``day`` (all scopes)."""
        return [self.export_record(r) for r in self._monitor.records(day=day)]

    def export_all(self) -> list[AnonymizedRecord]:
        return [self.export_record(r) for r in self._monitor.records()]
