"""Connection tracking: flow table, NEW/DESTROY events, byte accounting.

Mirrors the Linux conntrack semantics the paper's monitor consumes:

* a flow is identified by its 5-tuple (protocol, source/destination address
  and port); ICMP flows carry type, code, and id instead of ports;
* a NEW event fires when the first packet of a flow is seen;
* byte and packet counters accumulate per direction while the flow lives
  (``nf_conntrack_acct``);
* a DESTROY event fires when the flow ends (FIN/RST or idle timeout) and
  carries the final counters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.net.addr import Family, IpAddress


class Protocol(enum.Enum):
    TCP = 6
    UDP = 17
    ICMP = 1


@dataclass(frozen=True)
class IcmpInfo:
    """ICMP flow identity: type, code, and echo id (paper section 3.1)."""

    icmp_type: int
    icmp_code: int
    icmp_id: int

    def __post_init__(self) -> None:
        if not 0 <= self.icmp_type <= 255 or not 0 <= self.icmp_code <= 255:
            raise ValueError("ICMP type and code must fit in one byte")
        if not 0 <= self.icmp_id <= 0xFFFF:
            raise ValueError("ICMP id must fit in two bytes")


@dataclass(frozen=True)
class FlowKey:
    """A flow's identity: the 5-tuple, or protocol+addresses+ICMP info."""

    protocol: Protocol
    src: IpAddress
    dst: IpAddress
    sport: int = 0
    dport: int = 0
    icmp: IcmpInfo | None = None

    def __post_init__(self) -> None:
        if self.src.family is not self.dst.family:
            raise ValueError("flow endpoints must share an address family")
        if self.protocol is Protocol.ICMP:
            if self.icmp is None:
                raise ValueError("ICMP flows must carry IcmpInfo")
            if self.sport or self.dport:
                raise ValueError("ICMP flows have no ports")
        else:
            if self.icmp is not None:
                raise ValueError("only ICMP flows carry IcmpInfo")
            for port in (self.sport, self.dport):
                if not 0 <= port <= 0xFFFF:
                    raise ValueError(f"port {port} out of range")
        # Keys are hashed on every conntrack table operation (new /
        # account / destroy); precompute once instead of recursively
        # hashing the nested dataclasses per lookup.
        object.__setattr__(
            self,
            "_hash",
            hash((self.protocol.value, self.src, self.dst, self.sport, self.dport, self.icmp)),
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def family(self) -> Family:
        return self.src.family

    @property
    def is_v6(self) -> bool:
        return self.family is Family.V6


class ConntrackEventType(enum.Enum):
    NEW = "NEW"
    DESTROY = "DESTROY"


@dataclass(frozen=True)
class FlowRecord:
    """The final accounting for one finished flow (DESTROY payload)."""

    key: FlowKey
    start_time: float
    end_time: float
    bytes_out: int
    bytes_in: int
    packets_out: int
    packets_in: int

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError("flow cannot end before it starts")
        for count in (self.bytes_out, self.bytes_in, self.packets_out, self.packets_in):
            if count < 0:
                raise ValueError("counters cannot be negative")

    @property
    def total_bytes(self) -> int:
        return self.bytes_out + self.bytes_in

    @property
    def total_packets(self) -> int:
        return self.packets_out + self.packets_in

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


@dataclass(frozen=True)
class ConntrackEvent:
    """A conntrack event as delivered to listeners."""

    event_type: ConntrackEventType
    key: FlowKey
    timestamp: float
    record: FlowRecord | None = None  # populated for DESTROY


@dataclass
class _LiveFlow:
    key: FlowKey
    start_time: float
    bytes_out: int = 0
    bytes_in: int = 0
    packets_out: int = 0
    packets_in: int = 0


EventListener = Callable[[ConntrackEvent], None]


@dataclass
class ConntrackTable:
    """The kernel flow table: tracks live flows, emits NEW/DESTROY events."""

    _live: dict[FlowKey, _LiveFlow] = field(default_factory=dict)
    _listeners: list[EventListener] = field(default_factory=list)
    flows_created: int = 0
    flows_destroyed: int = 0

    def subscribe(self, listener: EventListener) -> None:
        """Register a listener for NEW and DESTROY events."""
        self._listeners.append(listener)

    def _emit(self, event: ConntrackEvent) -> None:
        for listener in self._listeners:
            listener(event)

    def new(self, key: FlowKey, timestamp: float) -> None:
        """Track a new flow; fires a NEW event.

        Raises:
            KeyError: if the flow is already being tracked (the kernel
                would treat further packets as updates, not a new flow).
        """
        if key in self._live:
            raise KeyError(f"flow already tracked: {key}")
        self._live[key] = _LiveFlow(key=key, start_time=timestamp)
        self.flows_created += 1
        self._emit(ConntrackEvent(ConntrackEventType.NEW, key, timestamp))

    def account(
        self,
        key: FlowKey,
        bytes_out: int = 0,
        bytes_in: int = 0,
        packets_out: int = 0,
        packets_in: int = 0,
    ) -> None:
        """Accumulate per-direction counters on a live flow."""
        flow = self._live.get(key)
        if flow is None:
            raise KeyError(f"flow not tracked: {key}")
        if min(bytes_out, bytes_in, packets_out, packets_in) < 0:
            raise ValueError("counters cannot decrease")
        flow.bytes_out += bytes_out
        flow.bytes_in += bytes_in
        flow.packets_out += packets_out
        flow.packets_in += packets_in

    def destroy(self, key: FlowKey, timestamp: float) -> FlowRecord:
        """End a flow; fires a DESTROY event carrying the final record."""
        flow = self._live.pop(key, None)
        if flow is None:
            raise KeyError(f"flow not tracked: {key}")
        if timestamp < flow.start_time:
            raise ValueError("flow cannot be destroyed before it started")
        record = FlowRecord(
            key=key,
            start_time=flow.start_time,
            end_time=timestamp,
            bytes_out=flow.bytes_out,
            bytes_in=flow.bytes_in,
            packets_out=flow.packets_out,
            packets_in=flow.packets_in,
        )
        self.flows_destroyed += 1
        self._emit(
            ConntrackEvent(ConntrackEventType.DESTROY, key, timestamp, record=record)
        )
        return record

    def observe_flow(
        self,
        key: FlowKey,
        start_time: float,
        end_time: float,
        bytes_out: int,
        bytes_in: int,
        packets_out: int | None = None,
        packets_in: int | None = None,
    ) -> FlowRecord:
        """Convenience: run a whole flow through NEW/account/DESTROY.

        Packet counts default to a rough bytes/1400 estimate with a minimum
        of one packet per direction that carried bytes.
        """
        if packets_out is None:
            packets_out = max(1, bytes_out // 1400) if bytes_out else 0
        if packets_in is None:
            packets_in = max(1, bytes_in // 1400) if bytes_in else 0
        self.new(key, start_time)
        self.account(
            key,
            bytes_out=bytes_out,
            bytes_in=bytes_in,
            packets_out=packets_out,
            packets_in=packets_in,
        )
        return self.destroy(key, end_time)

    @property
    def live_count(self) -> int:
        return len(self._live)

    def live_flows(self) -> list[FlowKey]:
        return list(self._live)
