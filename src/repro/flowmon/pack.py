"""Columnar packing of the record-oriented flow log, for the warehouse.

A :class:`~repro.flowmon.monitor.FlowMonitor` at paper scale holds
millions of :class:`~repro.flowmon.conntrack.FlowRecord` dataclasses;
rebuilding that object graph is the dominant cost of warm-starting the
traffic layer from disk, even though the analysis layer (post-PR 2)
reads the columnar :class:`~repro.flowmon.frame.FlowFrame`, not the
records.  This module makes the record log pay its reconstruction cost
only when someone actually asks for records:

* :func:`pack_daily_logs` lowers ``monitor.daily_logs`` into flat NumPy
  columns (one row per record, plus a segment table preserving the
  exact ``{day: {scope: [records]}}`` insertion structure) -- arrays
  the store codec externalizes into the ``.npz`` payload;
* :func:`unpack_daily_logs` reverses it losslessly, interning repeated
  addresses so the rebuilt graph shares objects like the original;
* :class:`LazyDailyLogs` is a dict that *carries* the packed columns
  and only runs the unpack on first real access, so a warm-started
  session whose artifacts read frames never rebuilds a single record.

Round-trip fidelity is exact: same days in the same order, same scopes
per day in the same order, same records per scope in the same order,
equal field-for-field -- pinned by ``tests/flowmon/test_pack.py``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.flowmon.conntrack import FlowKey, FlowRecord, IcmpInfo, Protocol
from repro.flowmon.monitor import FlowMonitor, FlowScope
from repro.net.addr import Family, IpAddress

#: Scope <-> code, in declaration order (same codes as the FlowFrame).
_SCOPES: tuple[FlowScope, ...] = tuple(FlowScope)
_SCOPE_CODE = {scope: code for code, scope in enumerate(_SCOPES)}

_U64 = (1 << 64) - 1


def pack_daily_logs(
    daily_logs: dict[int, dict[FlowScope, list[FlowRecord]]],
) -> dict[str, np.ndarray]:
    """Lower a daily log into flat columns plus a segment table."""
    seg_day: list[int] = []
    seg_scope: list[int] = []
    seg_count: list[int] = []
    records: list[FlowRecord] = []
    for day, per_scope in daily_logs.items():
        for scope, day_records in per_scope.items():
            seg_day.append(day)
            seg_scope.append(_SCOPE_CODE[scope])
            seg_count.append(len(day_records))
            records.extend(day_records)

    n = len(records)
    protocol = np.empty(n, dtype=np.uint8)
    family = np.empty(n, dtype=np.uint8)
    src_hi = np.empty(n, dtype=np.uint64)
    src_lo = np.empty(n, dtype=np.uint64)
    dst_hi = np.empty(n, dtype=np.uint64)
    dst_lo = np.empty(n, dtype=np.uint64)
    sport = np.empty(n, dtype=np.uint16)
    dport = np.empty(n, dtype=np.uint16)
    icmp_type = np.full(n, -1, dtype=np.int16)  # -1: no IcmpInfo
    icmp_code = np.empty(n, dtype=np.uint8)
    icmp_id = np.empty(n, dtype=np.uint16)
    start = np.empty(n, dtype=np.float64)
    end = np.empty(n, dtype=np.float64)
    bytes_out = np.empty(n, dtype=np.int64)
    bytes_in = np.empty(n, dtype=np.int64)
    packets_out = np.empty(n, dtype=np.int64)
    packets_in = np.empty(n, dtype=np.int64)

    for i, record in enumerate(records):
        key = record.key
        protocol[i] = key.protocol.value
        family[i] = key.src.family.value
        src = key.src.value
        dst = key.dst.value
        src_hi[i] = src >> 64
        src_lo[i] = src & _U64
        dst_hi[i] = dst >> 64
        dst_lo[i] = dst & _U64
        sport[i] = key.sport
        dport[i] = key.dport
        if key.icmp is not None:
            icmp_type[i] = key.icmp.icmp_type
            icmp_code[i] = key.icmp.icmp_code
            icmp_id[i] = key.icmp.icmp_id
        else:
            icmp_code[i] = 0
            icmp_id[i] = 0
        start[i] = record.start_time
        end[i] = record.end_time
        bytes_out[i] = record.bytes_out
        bytes_in[i] = record.bytes_in
        packets_out[i] = record.packets_out
        packets_in[i] = record.packets_in

    return {
        "seg_day": np.asarray(seg_day, dtype=np.int64),
        "seg_scope": np.asarray(seg_scope, dtype=np.int8),
        "seg_count": np.asarray(seg_count, dtype=np.int64),
        "protocol": protocol,
        "family": family,
        "src_hi": src_hi,
        "src_lo": src_lo,
        "dst_hi": dst_hi,
        "dst_lo": dst_lo,
        "sport": sport,
        "dport": dport,
        "icmp_type": icmp_type,
        "icmp_code": icmp_code,
        "icmp_id": icmp_id,
        "start": start,
        "end": end,
        "bytes_out": bytes_out,
        "bytes_in": bytes_in,
        "packets_out": packets_out,
        "packets_in": packets_in,
    }


def unpack_daily_logs(
    packed: dict[str, np.ndarray],
) -> dict[int, dict[FlowScope, list[FlowRecord]]]:
    """Rebuild the exact ``{day: {scope: [records]}}`` structure."""
    by_protocol = {p.value: p for p in Protocol}
    by_family = {f.value: f for f in Family}
    addresses: dict[tuple[int, int], IpAddress] = {}

    def address(family_code: int, hi: int, lo: int) -> IpAddress:
        value = (hi << 64) | lo
        cache_key = (family_code, value)
        cached = addresses.get(cache_key)
        if cached is None:
            cached = addresses[cache_key] = IpAddress(by_family[family_code], value)
        return cached

    protocol = packed["protocol"].tolist()
    family = packed["family"].tolist()
    src_hi = packed["src_hi"].tolist()
    src_lo = packed["src_lo"].tolist()
    dst_hi = packed["dst_hi"].tolist()
    dst_lo = packed["dst_lo"].tolist()
    sport = packed["sport"].tolist()
    dport = packed["dport"].tolist()
    icmp_type = packed["icmp_type"].tolist()
    icmp_code = packed["icmp_code"].tolist()
    icmp_id = packed["icmp_id"].tolist()
    start = packed["start"].tolist()
    end = packed["end"].tolist()
    bytes_out = packed["bytes_out"].tolist()
    bytes_in = packed["bytes_in"].tolist()
    packets_out = packed["packets_out"].tolist()
    packets_in = packed["packets_in"].tolist()

    daily_logs: dict[int, dict[FlowScope, list[FlowRecord]]] = {}
    i = 0
    for day, scope_code, count in zip(
        packed["seg_day"].tolist(),
        packed["seg_scope"].tolist(),
        packed["seg_count"].tolist(),
    ):
        segment: list[FlowRecord] = []
        for _ in range(count):
            icmp = (
                IcmpInfo(icmp_type[i], icmp_code[i], icmp_id[i])
                if icmp_type[i] >= 0
                else None
            )
            key = FlowKey(
                protocol=by_protocol[protocol[i]],
                src=address(family[i], src_hi[i], src_lo[i]),
                dst=address(family[i], dst_hi[i], dst_lo[i]),
                sport=sport[i],
                dport=dport[i],
                icmp=icmp,
            )
            segment.append(
                FlowRecord(
                    key=key,
                    start_time=start[i],
                    end_time=end[i],
                    bytes_out=bytes_out[i],
                    bytes_in=bytes_in[i],
                    packets_out=packets_out[i],
                    packets_in=packets_in[i],
                )
            )
            i += 1
        daily_logs.setdefault(day, {})[_SCOPES[scope_code]] = segment
    return daily_logs


class LazyDailyLogs(dict):
    """A daily log that unpacks its columns on first real access.

    Behaves exactly like the dict it lowers to (it *is* one after
    materialization); until then it weighs a handful of NumPy arrays.
    Every reading or writing dict operation triggers the unpack.
    """

    def __init__(self, packed: dict[str, np.ndarray]) -> None:
        super().__init__()
        self._packed: dict[str, np.ndarray] | None = packed

    @property
    def materialized(self) -> bool:
        return self._packed is None

    def _materialize(self) -> None:
        if self._packed is not None:
            packed, self._packed = self._packed, None
            super().update(unpack_daily_logs(packed))

    def __reduce__(self):
        # Re-pickles (plain pickle, pool transfers) lower to an ordinary
        # dict; the store codec re-packs through the monitor reducer
        # before this would ever run.
        self._materialize()
        return (dict, (), None, None, iter(self.items()))

    def __repr__(self) -> str:
        if self._packed is not None:
            return f"LazyDailyLogs(<packed, {len(self._packed['seg_day'])} segments>)"
        return super().__repr__()


def _lazify(method_name: str):
    base = getattr(dict, method_name)

    def method(self: LazyDailyLogs, *args: Any, **kwargs: Any):
        self._materialize()
        return base(self, *args, **kwargs)

    method.__name__ = method_name
    return method


for _name in (
    "__getitem__", "__setitem__", "__delitem__", "__contains__", "__iter__",
    "__len__", "__eq__", "__ne__", "__or__", "__ror__", "__ior__",
    "get", "keys", "values", "items", "setdefault", "pop", "popitem",
    "update", "clear", "copy",
):
    setattr(LazyDailyLogs, _name, _lazify(_name))


def reduce_monitor(monitor: FlowMonitor) -> tuple:
    """A pickle reduction that packs the record log columnarly.

    Used by the store codec's ``reducer_override``: the packed arrays
    ride the ``.npz`` payload, the cached frame (the analysis layer's
    actual input) survives, and the transient ``records()`` memo is
    dropped.  :func:`restore_monitor` rebuilds a monitor whose log is a
    :class:`LazyDailyLogs`.
    """
    packed = pack_daily_logs(monitor.daily_logs)
    return (
        restore_monitor,
        (
            monitor.config,
            packed,
            monitor.records_seen,
            monitor.version,
            monitor._frame_cache,
        ),
    )


def restore_monitor(
    config: Any,
    packed: dict[str, np.ndarray],
    records_seen: int,
    version: int,
    frame_cache: Any,
) -> FlowMonitor:
    monitor = FlowMonitor(config=config)
    monitor.daily_logs = LazyDailyLogs(packed)
    monitor.records_seen = records_seen
    monitor.version = version
    monitor._frame_cache = frame_cache
    return monitor


def is_still_packed(monitor: FlowMonitor) -> bool:
    """True while the monitor's log is still packed (test/introspection)."""
    logs = monitor.daily_logs
    return isinstance(logs, LazyDailyLogs) and not logs.materialized
