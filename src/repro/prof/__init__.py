"""repro.prof: the attribution plane -- CPU profiles, memory, history.

The third observability layer, composing with metrics and spans:

* :mod:`repro.prof.capture` hooks ``cProfile`` captures onto matching
  trace spans (``build:*``, ``sweep:*``, ``serve:request``) -- the
  deterministic call-tree lands on ``Span.profile``.
* :mod:`repro.prof.tree` builds those trees and exports
  speedscope/flamegraph documents.
* :mod:`repro.prof.memory` owns tracemalloc span peaks and the
  process RSS/GC gauges (``process_rss_bytes``,
  ``build_peak_bytes{layer}``, ``gc_collections_total{gen}``).
* :mod:`repro.prof.bench` runs the sentinel's trailing-baseline
  detector over ``BENCH_history.jsonl`` -- per-phase perf regressions
  as watch/elevated/critical events instead of one global gate.

Export surfaces: ``GET /v1/profile`` on the serve tier,
``python -m repro prof`` and ``python -m repro bench history`` on the
command line.  replint REP012 confines ``cProfile``/``pstats``/
``tracemalloc`` imports to this package.
"""

from repro.prof.bench import (
    DEFAULT_HISTORY_PATH,
    HISTORY_SCHEMA,
    append_history,
    detect_history,
    higher_is_better,
    history_record,
    load_history,
    render_history_text,
    worst_regression_severity,
)
from repro.prof.capture import (
    DEFAULT_MEMORY_SPANS,
    DEFAULT_SPANS,
    ProfileConfig,
    disable_profiling,
    enable_profiling,
    match_span,
    profiled_spans,
    profiling,
    profiling_enabled,
)
from repro.prof.memory import (
    build_peaks,
    process_document,
    record_build_peak,
    refresh_process_gauges,
    rss_bytes,
)
from repro.prof.tree import (
    build_call_tree,
    frame_of,
    speedscope_document,
    tree_projection,
)

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "HISTORY_SCHEMA",
    "append_history",
    "detect_history",
    "higher_is_better",
    "history_record",
    "load_history",
    "render_history_text",
    "worst_regression_severity",
    "DEFAULT_MEMORY_SPANS",
    "DEFAULT_SPANS",
    "ProfileConfig",
    "disable_profiling",
    "enable_profiling",
    "match_span",
    "profiled_spans",
    "profiling",
    "profiling_enabled",
    "build_peaks",
    "process_document",
    "record_build_peak",
    "refresh_process_gauges",
    "rss_bytes",
    "build_call_tree",
    "frame_of",
    "speedscope_document",
    "tree_projection",
]
