"""The performance-history sentinel: per-phase drift over bench runs.

``benchmarks/perf_smoke.py`` and ``benchmarks/serve_load.py`` append
one schema-stamped line per run to ``benchmarks/results/
BENCH_history.jsonl``; this module loads that history, groups runs by
``(kind, config)`` so different scales never share a baseline, and
feeds each phase's series through the sentinel's trailing-baseline
detector (:func:`repro.sentinel.detect.detect_series`, thresholds from
:class:`repro.sentinel.config.SentinelConfig`).  The output replaces
the one global "25% over reference" gate with per-phase watch /
elevated / critical events -- and, like the adoption sentinel, an
empty report on a healthy history is the expected outcome: silence is
valid data.

Direction matters: a duration phase deviating *up* is a regression,
but throughput phases (anything ending in ``rps``) regress *down*.
Both directions produce events; only regressions gate CI.

The report document is fully deterministic -- it carries the records'
own stamps but never the report time -- so running ``repro bench
history`` twice over one history file is byte-identical.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from repro.sentinel.config import (
    DEFAULT_SENTINEL_CONFIG,
    SentinelConfig,
    severity_rank,
)
from repro.sentinel.detect import detect_series
from repro.sentinel.series import SignalSeries

#: The history line schema this module writes and reads.
HISTORY_SCHEMA = 1

#: Default history location, relative to the repo root CI runs from.
DEFAULT_HISTORY_PATH = Path("benchmarks") / "results" / "BENCH_history.jsonl"


def higher_is_better(phase: str) -> bool:
    """Throughput phases regress downward, everything else upward."""
    return phase.endswith("rps")


def history_record(
    kind: str,
    config: dict[str, Any],
    phases: dict[str, float],
    recorded_at: str | None = None,
) -> dict:
    """One appendable history line (sorted keys, schema-stamped)."""
    return {
        "schema": HISTORY_SCHEMA,
        "kind": kind,
        "recorded_at": recorded_at,
        "config": {key: config[key] for key in sorted(config)},
        "phases": {name: round(float(value), 4) for name, value in sorted(phases.items())},
    }


def append_history(path: Path, record: dict) -> None:
    """Append one run to the history file (created on first write)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as history:
        history.write(json.dumps(record, sort_keys=True) + "\n")


def load_history(path: Path) -> tuple[list[dict], int]:
    """All well-formed records in file order, plus the skipped count.

    A corrupt or foreign-schema line is skipped, not fatal: the
    history file is an append-only log that survives schema bumps, and
    the report surfaces how much of it was unreadable.
    """
    records: list[dict] = []
    skipped = 0
    if not path.is_file():
        return records, skipped
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if (
            not isinstance(record, dict)
            or record.get("schema") != HISTORY_SCHEMA
            or not isinstance(record.get("phases"), dict)
            or not isinstance(record.get("config"), dict)
            or not isinstance(record.get("kind"), str)
        ):
            skipped += 1
            continue
        records.append(record)
    return records, skipped


def _group_key(record: dict) -> tuple[str, str]:
    return record["kind"], json.dumps(record["config"], sort_keys=True)


def detect_history(
    records: Iterable[dict],
    config: SentinelConfig = DEFAULT_SENTINEL_CONFIG,
    skipped: int = 0,
) -> dict:
    """The full history report: per-(kind, config) per-phase events.

    Each phase's run series becomes a one-column
    :class:`~repro.sentinel.series.SignalSeries` (the "day" axis is
    the run index within its group) scanned by the sentinel detector;
    an event is a ``regression`` when its direction is the phase's bad
    one.  The report contains no report-time stamps -- rerunning it
    over the same history is byte-identical.
    """
    groups: dict[tuple[str, str], list[dict]] = {}
    for record in records:
        groups.setdefault(_group_key(record), []).append(record)
    report_groups: list[dict] = []
    total_events = 0
    total_regressions = 0
    by_severity: dict[str, int] = {}
    worst_regression: str | None = None
    for kind, config_key in sorted(groups):
        group = groups[(kind, config_key)]
        phases = sorted({name for record in group for name in record["phases"]})
        events: list[dict] = []
        for phase in phases:
            runs = [
                (index, record["phases"][phase])
                for index, record in enumerate(group)
                if phase in record["phases"]
            ]
            series = SignalSeries(
                signal=kind,
                days=tuple(index for index, _ in runs),
                scopes=(phase,),
                values=np.array(
                    [[value] for _, value in runs], dtype=np.float64
                ).reshape(len(runs), 1),
            )
            for event in detect_series(series, config):
                regression = (
                    event.direction == "down"
                    if higher_is_better(phase)
                    else event.direction == "up"
                )
                events.append(
                    {
                        "phase": phase,
                        "run": event.day,
                        "recorded_at": group[event.day].get("recorded_at"),
                        "value": event.value,
                        "baseline": event.baseline,
                        "sigma": event.sigma,
                        "z": event.z,
                        "direction": event.direction,
                        "severity": event.severity,
                        "regression": regression,
                    }
                )
        events.sort(key=lambda row: (row["phase"], row["run"]))
        for row in events:
            total_events += 1
            by_severity[row["severity"]] = by_severity.get(row["severity"], 0) + 1
            if row["regression"]:
                total_regressions += 1
                if worst_regression is None or severity_rank(
                    row["severity"]
                ) > severity_rank(worst_regression):
                    worst_regression = row["severity"]
        report_groups.append(
            {
                "kind": kind,
                "config": json.loads(config_key),
                "runs": len(group),
                "phases": len(phases),
                "events": events,
            }
        )
    return {
        "schema": HISTORY_SCHEMA,
        "thresholds": dataclasses.asdict(config),
        "runs": sum(len(group) for group in groups.values()),
        "skipped_lines": skipped,
        "groups": report_groups,
        "events": {
            "total": total_events,
            "regressions": total_regressions,
            "by_severity": {
                severity: by_severity[severity] for severity in sorted(by_severity)
            },
            "worst_regression": worst_regression,
        },
    }


def worst_regression_severity(report: dict) -> str | None:
    """The report's worst regression severity (``None`` when quiet)."""
    return report["events"]["worst_regression"]


def render_history_text(report: dict) -> str:
    """The operator-facing table of one history report."""
    from repro.util.tables import TextTable

    table = TextTable(
        ["kind", "phase", "run", "severity", "dir", "value", "baseline", "z"],
        title="Bench history — per-phase drift vs trailing baselines",
    )
    for group in report["groups"]:
        for event in group["events"]:
            marker = "regression" if event["regression"] else "improvement"
            table.add_row([
                group["kind"],
                event["phase"],
                str(event["run"]),
                f"{event['severity']} ({marker})",
                event["direction"],
                f"{event['value']:.4f}",
                f"{event['baseline']:.4f}",
                f"{event['z']:+.2f}",
            ])
    summary = report["events"]
    lines = [table.render()]
    lines.append(
        f"{report['runs']} run(s) across {len(report['groups'])} group(s); "
        f"{summary['total']} event(s), {summary['regressions']} regression(s)"
        + (f", {report['skipped_lines']} unreadable line(s)"
           if report["skipped_lines"] else "")
        + "; silence is valid data"
    )
    return "\n".join(lines)
