"""Deterministic call trees from raw profiler stats, plus speedscope.

:func:`build_call_tree` turns the caller->callee edge list a
``cProfile.Profile.getstats()`` capture produces into one JSON call
tree: every node is a frame reached along one call path, children sort
by frame identity (file, line, name), and times distribute down shared
subtrees proportionally (the classic gprof expansion).  The *structure*
of the tree -- frames, call counts, child order -- depends only on what
ran, never on how fast it ran: no time-based pruning, no sampling.
That is what the determinism contract rides on: two same-seed runs of
the same build produce byte-identical trees once the timing fields are
projected out (:func:`tree_projection`).

:func:`speedscope_document` re-exports one or more trees in the
speedscope "sampled" profile format (https://www.speedscope.app/): each
root-to-node path with self-time becomes one weighted sample, so the
flamegraph's total width equals the profiled time and frame names cover
everything the profiler measured.

This module never imports ``cProfile``/``pstats`` -- it consumes the
stats entries handed over by :mod:`repro.prof.capture`, the one module
allowed to touch the profiler (replint REP012).
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Sequence

#: Hard ceiling on expanded tree nodes.  The caller->callee graph is a
#: DAG; expanding shared subtrees under every caller can explode, so
#: the DFS stops adding nodes past this count (deterministically -- the
#: traversal order is structural) and marks the tree ``truncated``.
MAX_TREE_NODES = 50_000

#: Expansion depth ceiling; recursion cycles are cut earlier by the
#: on-path check, this bounds pathological non-cyclic chains.
MAX_TREE_DEPTH = 128

#: Path prefixes collapsed out of frame file names, so trees do not
#: embed the absolute checkout/venv location they were captured in.
_PATH_MARKERS = ("/repro/", "/site-packages/", "/lib/python")


def _normalize_path(path: str) -> str:
    """A location-independent rendering of one source path."""
    clean = path.replace("\\", "/")
    if clean.startswith("<") or clean == "~":
        return clean
    for marker in _PATH_MARKERS:
        index = clean.find(marker)
        if index >= 0:
            return clean[index + 1:]
    parts = clean.rsplit("/", 2)
    return "/".join(parts[-2:]) if len(parts) > 1 else clean


#: ``repr`` addresses inside builtin labels (``<built-in method __new__
#: of type object at 0x7f...>``) -- per-process noise the determinism
#: contract must not see.
_ADDRESS_RE = re.compile(r" at 0x[0-9a-fA-F]+")


def frame_of(code: Any) -> tuple[str, int, str]:
    """``(file, line, name)`` of one stats-entry code object.

    Mirrors ``pstats``' labeling: built-in callables arrive as plain
    strings (no source location), Python frames as code objects.
    """
    if isinstance(code, str):
        return ("~", 0, _ADDRESS_RE.sub("", code))
    name = getattr(code, "co_qualname", None) or code.co_name
    return (_normalize_path(code.co_filename), code.co_firstlineno, name)


def build_call_tree(entries: Iterable[Any], duration_s: float) -> dict:
    """One profiled span's deterministic call-tree document.

    Args:
        entries: ``Profile.getstats()`` output -- per-function records
            with per-callee subcall stats.
        duration_s: the owning span's measured wall time (the coverage
            denominator).
    """
    # Aggregate per frame and per caller->callee edge.  Several code
    # objects can label identically (rare; e.g. reloaded modules) --
    # aggregation keys on the label, which is what the tree shows.
    totals: dict[tuple, dict[str, float]] = {}
    edges: dict[tuple, dict[tuple, dict[str, float]]] = {}
    callees: set[tuple] = set()
    for entry in entries:
        frame = frame_of(entry.code)
        stat = totals.setdefault(
            frame, {"calls": 0, "total_s": 0.0, "self_s": 0.0}
        )
        stat["calls"] += entry.callcount
        stat["total_s"] += entry.totaltime
        stat["self_s"] += entry.inlinetime
        out = edges.setdefault(frame, {})
        for sub in entry.calls or ():
            callee = frame_of(sub.code)
            callees.add(callee)
            edge = out.setdefault(
                callee, {"calls": 0, "total_s": 0.0}
            )
            edge["calls"] += sub.callcount
            edge["total_s"] += sub.totaltime
    roots = sorted(frame for frame in totals if frame not in callees)
    state = {"nodes": 0, "truncated": False}

    def expand(
        frame: tuple, calls: int, total_s: float, path: frozenset, depth: int
    ) -> dict:
        state["nodes"] += 1
        file, line, name = frame
        node: dict = {
            "name": name,
            "file": file,
            "line": line,
            "calls": int(calls),
            "total_s": round(max(total_s, 0.0), 6),
        }
        children: list[dict] = []
        frame_total = totals[frame]["total_s"]
        # This path's share of the frame's aggregate time; children
        # (recorded against the frame, not the path) scale by it.
        share = total_s / frame_total if frame_total > 0 else 0.0
        out = edges.get(frame, {})
        on_path = path | {frame}  # includes self: direct recursion cuts too
        child_s = 0.0
        for callee in sorted(out):
            if callee in on_path or depth >= MAX_TREE_DEPTH:
                continue  # cut recursion cycles; their time stays as self
            if state["nodes"] >= MAX_TREE_NODES:
                state["truncated"] = True
                break
            edge = out[callee]
            scaled = edge["total_s"] * share
            children.append(
                expand(callee, edge["calls"], scaled, on_path, depth + 1)
            )
            child_s += scaled
        node["self_s"] = round(max(total_s - child_s, 0.0), 6)
        node["children"] = children
        return node

    tree = [
        expand(frame, totals[frame]["calls"], totals[frame]["total_s"],
               frozenset(), 0)
        for frame in roots
    ]
    profiled_s = sum(totals[frame]["total_s"] for frame in roots)
    return {
        "duration_s": round(max(duration_s, 0.0), 6),
        "profiled_s": round(profiled_s, 6),
        "coverage": round(profiled_s / duration_s, 4) if duration_s > 0 else None,
        "functions": len(totals),
        "nodes": state["nodes"],
        "truncated": state["truncated"],
        "roots": tree,
    }


def tree_projection(document: dict) -> dict:
    """The timing-free projection of one call-tree document.

    What the determinism test compares: frames, call counts, and
    structure survive; every duration field (which legitimately varies
    run to run) is dropped.
    """

    def strip(node: dict) -> dict:
        return {
            "name": node["name"],
            "file": node["file"],
            "line": node["line"],
            "calls": node["calls"],
            "children": [strip(child) for child in node["children"]],
        }

    return {
        "functions": document["functions"],
        "nodes": document["nodes"],
        "truncated": document["truncated"],
        "roots": [strip(root) for root in document["roots"]],
    }


def speedscope_document(profiles: Sequence[tuple[str, dict]]) -> dict:
    """Speedscope file-format export of named call-tree documents.

    Each tree node carrying self-time becomes one "sampled" stack
    (root-to-node frame path) weighted by that self-time, so the sum of
    weights reproduces the profiled time exactly.
    """
    frames: list[dict] = []
    index: dict[tuple, int] = {}

    def intern(node: dict) -> int:
        key = (node["name"], node["file"], node["line"])
        if key not in index:
            index[key] = len(frames)
            frames.append(
                {"name": node["name"], "file": node["file"], "line": node["line"]}
            )
        return index[key]

    out_profiles: list[dict] = []
    for name, document in profiles:
        samples: list[list[int]] = []
        weights: list[float] = []

        def walk(node: dict, stack: list[int]) -> None:
            stack = stack + [intern(node)]
            self_s = node["self_s"]
            if self_s > 0 or not node["children"]:
                samples.append(stack)
                weights.append(round(self_s, 6))
            for child in node["children"]:
                walk(child, stack)

        for root in document["roots"]:
            walk(root, [])
        total = round(sum(weights), 6)
        out_profiles.append(
            {
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": out_profiles,
        "name": "repro.prof span profiles",
        "activeProfileIndex": 0,
        "exporter": "repro.prof",
    }
