"""Memory observability: tracemalloc span peaks, process RSS/GC gauges.

Three instruments land on the shared metrics registry:

* ``process_rss_bytes`` -- resident set size, read from
  ``/proc/self/status`` (portable fallback: ``resource.getrusage``
  peak).  Refreshed by :func:`refresh_process_gauges`, which the
  ``/metrics`` scrape path calls so every scrape carries a current
  reading.
* ``build_peak_bytes{layer}`` -- tracemalloc peak of the last profiled
  ``build:<layer>`` span (written by :mod:`repro.prof.capture`).
* ``gc_collections_total{gen}`` -- cumulative collector runs per
  generation, maintained as deltas against the interpreter's own
  counters so the metric behaves like a counter across scrapes.

Span peaks nest: tracemalloc's peak register is process-global and
:func:`span_memory_start` resets it per span, so an inner span's peak
is folded back into every open ancestor's running maximum -- the outer
``build:observatory`` span reports the true peak even when an inner
span reset the register halfway through.

With :mod:`repro.prof.capture`, this is the only module allowed to
import ``tracemalloc`` (replint REP012).
"""

from __future__ import annotations

import gc
import os
import threading
import tracemalloc

from repro.telemetry import registry as _registry

_RSS = _registry().gauge(
    "process_rss_bytes", "resident set size of this process"
)
_BUILD_PEAK = _registry().gauge(
    "build_peak_bytes",
    "tracemalloc peak of the last profiled build span, per layer",
    ("layer",),
)
_GC_COLLECTIONS = _registry().counter(
    "gc_collections_total", "garbage collector runs, per generation", ("gen",)
)

_GC_LOCK = threading.Lock()
_GC_SEEN: list[int] = [0, 0, 0]

#: Open span-memory captures, outermost first: ``[span_token, peak]``
#: pairs.  Guarded by the GIL in practice; capture start/stop happens
#: under the tracer's span enter/exit on one thread at a time.
_MEM_STACK: list[list] = []

_TRACING_STARTED_HERE = False


def rss_bytes() -> int | None:
    """Current resident set size, or ``None`` when unreadable."""
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is the peak, in KiB on Linux / bytes on macOS --
        # a coarse fallback, but monotone and better than nothing.
        scale = 1 if usage.ru_maxrss > 1 << 32 else 1024
        return int(usage.ru_maxrss) * scale
    except Exception:  # pragma: no cover - platform without rusage
        return None


def gc_counts() -> dict[str, int]:
    """Cumulative collector runs per generation (stable key order)."""
    stats = gc.get_stats()
    return {str(gen): int(stat["collections"]) for gen, stat in enumerate(stats)}


def refresh_process_gauges() -> None:
    """Bring the process gauges current (the scrape-path hook)."""
    rss = rss_bytes()
    if rss is not None:
        _RSS.set(float(rss))
    with _GC_LOCK:
        for gen, stat in enumerate(gc.get_stats()):
            collections = int(stat["collections"])
            delta = collections - _GC_SEEN[gen]
            if delta > 0:
                _GC_COLLECTIONS.inc(delta, gen=str(gen))
                _GC_SEEN[gen] = collections


def record_build_peak(layer: str, peak_bytes: int) -> None:
    """Publish one profiled build span's tracemalloc peak."""
    _BUILD_PEAK.set(float(peak_bytes), layer=layer)


def build_peaks() -> dict[str, int]:
    """Per-layer peaks recorded so far (``/healthz`` breakdown input)."""
    return {
        labels[0]: int(value) for labels, value in _BUILD_PEAK.sample_items()
    }


def process_document() -> dict:
    """The ``/healthz`` ``process`` section."""
    return {
        "rss_bytes": rss_bytes(),
        "gc_collections": gc_counts(),
        "tracemalloc": tracemalloc.is_tracing(),
    }


# -- span-scoped peak capture (called by repro.prof.capture) ------------------


def start_tracing() -> None:
    """Begin tracemalloc tracing if nothing else already did."""
    global _TRACING_STARTED_HERE
    if not tracemalloc.is_tracing():
        tracemalloc.start()
        _TRACING_STARTED_HERE = True


def stop_tracing() -> None:
    """End tracing, but only if :func:`start_tracing` began it."""
    global _TRACING_STARTED_HERE
    if _TRACING_STARTED_HERE and tracemalloc.is_tracing():
        tracemalloc.stop()
    _TRACING_STARTED_HERE = False
    _MEM_STACK.clear()


def span_memory_start() -> list:
    """Open one nested peak capture; returns the token to stop with."""
    if not tracemalloc.is_tracing():  # pragma: no cover - defensive
        return []
    _, peak = tracemalloc.get_traced_memory()
    # Fold the register's current peak into every open ancestor before
    # resetting it for this span's window.
    for entry in _MEM_STACK:
        entry[1] = max(entry[1], peak)
    tracemalloc.reset_peak()
    token = [object(), 0]
    _MEM_STACK.append(token)
    return token


def span_memory_stop(token: list) -> int | None:
    """Close one capture; returns the span's peak traced bytes."""
    if not token:
        return None
    if not tracemalloc.is_tracing():  # pragma: no cover - defensive
        return None
    _, peak = tracemalloc.get_traced_memory()
    try:
        _MEM_STACK.remove(token)
    except ValueError:  # pragma: no cover - unbalanced stop
        return None
    span_peak = max(token[1], peak)
    for entry in _MEM_STACK:
        entry[1] = max(entry[1], span_peak)
    tracemalloc.reset_peak()
    return int(span_peak)
