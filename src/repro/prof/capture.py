"""Span-scoped CPU profiling: cProfile captures attached to trace spans.

:func:`enable_profiling` installs a hook into the span tracer
(:func:`repro.telemetry.trace.set_profile_hook`); while enabled, every
span whose name matches one of the configured patterns runs under its
own ``cProfile.Profile`` and leaves the deterministic call-tree
document (:func:`repro.prof.tree.build_call_tree`) on
``Span.profile``.  Disabled -- the default -- the tracer pays one
``None`` check per span, which is what keeps the "profiling off adds
<2% overhead" contract honest.

Capture discipline:

* Patterns are exact span names or trailing-``*`` prefixes
  (``build:*`` matches ``build:traffic``).  The default set covers the
  cold paths worth attributing: layer builds, whatif sweeps, and the
  serving tier's request resolution.
* One CPU capture per thread at a time: ``sys.setprofile`` (what
  cProfile rides on) is per-thread state, and a nested matching span
  is already inside the outer capture -- its frames show up in the
  outer tree, so nesting a second profiler would only double-count.
* Memory capture (``memory_spans``) nests: tracemalloc peaks are
  tracked through :mod:`repro.prof.memory`, which propagates an inner
  span's peak into its ancestors.

This module (with :mod:`repro.prof.memory`) is the **only** place
``cProfile``/``pstats``/``tracemalloc`` may be imported -- replint
REP012 flags the profiler anywhere else, the same confinement REP001
gives wall clocks.
"""

from __future__ import annotations

import cProfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.prof import memory as _memory
from repro.prof.tree import build_call_tree
from repro.telemetry import trace as _trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.trace import Span

#: The spans worth profiling by default: layer builds, whatif sweeps,
#: and the serving tier's cold request path.
DEFAULT_SPANS: tuple[str, ...] = ("build:*", "sweep:*", "serve:request")

#: Build spans get tracemalloc peaks by default when memory capture is
#: on -- the per-layer heap numbers /healthz breaks down.
DEFAULT_MEMORY_SPANS: tuple[str, ...] = ("build:*",)


@dataclass(frozen=True)
class ProfileConfig:
    """What the installed hook captures.

    Attributes:
        spans: span-name patterns that get a cProfile capture.
        memory_spans: span-name patterns that get a tracemalloc peak
            (empty disables memory capture entirely).
    """

    spans: tuple[str, ...] = DEFAULT_SPANS
    memory_spans: tuple[str, ...] = ()


def match_span(name: str, patterns: Sequence[str]) -> bool:
    """Exact match, or trailing-``*`` prefix match (``build:*``)."""
    for pattern in patterns:
        if pattern.endswith("*"):
            if name.startswith(pattern[:-1]):
                return True
        elif name == pattern:
            return True
    return False


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.active: "Span | None" = None  # span holding this thread's profiler


_THREAD = _ThreadState()


class _SpanProfileHook:
    """The object the tracer calls at span enter/exit while enabled."""

    def __init__(self, config: ProfileConfig) -> None:
        self.config = config

    def start(self, node: "Span") -> dict | None:
        token: dict = {}
        if match_span(node.name, self.config.spans) and _THREAD.active is None:
            _THREAD.active = node
            profiler = cProfile.Profile()
            token["profiler"] = profiler
            profiler.enable()
        if self.config.memory_spans and match_span(
            node.name, self.config.memory_spans
        ):
            token["memory"] = _memory.span_memory_start()
        return token or None

    def stop(self, node: "Span", token: dict) -> None:
        profiler = token.get("profiler")
        if profiler is not None:
            profiler.disable()
            _THREAD.active = None
            node.profile = build_call_tree(
                profiler.getstats(), duration_s=node.duration_s
            )
        mem_token = token.get("memory")
        if mem_token is not None:
            peak = _memory.span_memory_stop(mem_token)
            node.peak_bytes = peak
            layer = node.labels.get("layer")
            if node.name.startswith("build:") and layer:
                _memory.record_build_peak(layer, peak)


_INSTALLED: _SpanProfileHook | None = None
_INSTALL_LOCK = threading.Lock()


def enable_profiling(
    spans: Sequence[str] | None = None,
    memory: bool = False,
    memory_spans: Sequence[str] | None = None,
) -> ProfileConfig:
    """Install the span profiling hook process-wide.

    Args:
        spans: CPU-capture patterns (default :data:`DEFAULT_SPANS`).
        memory: also capture tracemalloc peaks (on
            ``memory_spans``, default :data:`DEFAULT_MEMORY_SPANS`).
        memory_spans: explicit memory-capture patterns (implies
            ``memory=True``).
    """
    global _INSTALLED
    mem_patterns: tuple[str, ...] = ()
    if memory_spans is not None:
        mem_patterns = tuple(memory_spans)
    elif memory:
        mem_patterns = DEFAULT_MEMORY_SPANS
    config = ProfileConfig(
        spans=tuple(spans) if spans is not None else DEFAULT_SPANS,
        memory_spans=mem_patterns,
    )
    with _INSTALL_LOCK:
        if mem_patterns:
            _memory.start_tracing()
        _INSTALLED = _SpanProfileHook(config)
        _trace.set_profile_hook(_INSTALLED)
    return config


def disable_profiling() -> None:
    """Remove the hook; spans go back to plain timing."""
    global _INSTALLED
    with _INSTALL_LOCK:
        hook = _INSTALLED
        _INSTALLED = None
        _trace.set_profile_hook(None)
        if hook is not None and hook.config.memory_spans:
            _memory.stop_tracing()


def profiling_enabled() -> ProfileConfig | None:
    """The active capture config, or ``None`` when profiling is off."""
    hook = _INSTALLED
    return hook.config if hook is not None else None


@contextmanager
def profiling(
    spans: Sequence[str] | None = None,
    memory: bool = False,
    memory_spans: Sequence[str] | None = None,
) -> Iterator[ProfileConfig]:
    """Scoped :func:`enable_profiling` (the CLI / benchmark form)."""
    config = enable_profiling(spans, memory=memory, memory_spans=memory_spans)
    try:
        yield config
    finally:
        disable_profiling()


def profiled_spans(
    roots: Sequence["Span"], pattern: str | None = None
) -> list["Span"]:
    """Every span under ``roots`` carrying a capture, depth-first.

    ``pattern`` filters by span name (exact or trailing-``*``), the
    same matching the capture patterns use.
    """
    found: list["Span"] = []

    def walk(node: "Span") -> None:
        if node.profile is not None and (
            pattern is None or match_span(node.name, (pattern,))
        ):
            found.append(node)
        for child in node.children:
            walk(child)

    for root in roots:
        walk(root)
    return found
