"""One probe: AAAA/A resolution plus a TCP/443 handshake race.

A probe is the classic binary availability check longitudinal
observatories run (resolve the target, open a connection over IPv6), but
driven through :class:`repro.happyeyeballs.algorithm.HappyEyeballs` --
the *same* connection model the client traffic layer uses -- so the
availability verdicts and the flow-level usage numbers disagree for
modelled reasons, not implementation drift.

Each probe runs two races:

* a **v6-only** race (the availability check proper: can a connection be
  established over IPv6 at all from this vantage?), whose outcome
  becomes the :class:`ProbeVerdict`;
* a **dual-stack** race (what a real client at this vantage would do),
  whose winning family is recorded separately -- dual-stack clients
  behind a broken v6 path quietly use IPv4 while the binary check says
  "IPv6 available".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.happyeyeballs.algorithm import HappyEyeballs, HappyEyeballsConfig
from repro.net.addr import Family, IpAddress
from repro.net.dns import DnsStatus
from repro.observatory.resolver import (
    A_RESOLUTION_TIME,
    VantageResolver,
    nat64_embedded_v4,
)
from repro.observatory.vantage import NetworkPolicy, VantagePoint
from repro.util.rng import RngStream

#: Jitter applied to a vantage's median handshake latencies per probe.
LATENCY_JITTER_STD = 0.006
MIN_LATENCY = 0.004


class ProbeVerdict(enum.Enum):
    """Outcome of one (vantage, target) availability probe.

    The binary view prior work reports collapses this to
    ``verdict is V6_OK``; keeping the full taxonomy is what lets the
    per-policy artifacts show *why* the binary number moves.
    """

    #: IPv6 handshake completed and the path carried data.
    V6_OK = 0
    #: AAAA existed but every IPv6 connection attempt failed.
    V6_CONNECT_FAILED = 1
    #: The handshake completed but the path blackholed full-size packets.
    V6_PATH_BROKEN = 2
    #: The vantage has no IPv6 route at all (policy, not target).
    NO_V6_ROUTE = 3
    #: The name resolved but returned no usable AAAA.
    NO_AAAA = 4
    #: DNS failed outright (SERVFAIL / timeout on both families).
    RESOLVE_FAILED = 5
    #: The target does not exist (NXDOMAIN) -- dead top-list entry.
    TARGET_DOWN = 6


@dataclass(frozen=True)
class ProbeTarget:
    """One probe destination: a top-list site and the host to contact."""

    etld1: str
    host: str
    rank: int

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError("ranks are 1-based")


@dataclass(frozen=True)
class ProbeResult:
    """Everything one probe observed."""

    target: ProbeTarget
    verdict: ProbeVerdict
    aaaa_present: bool
    synthesized_aaaa: bool
    client_family: Family | None
    v6_connect_time: float | None

    @property
    def available(self) -> bool:
        """The binary "IPv6 available" bit prior work reports."""
        return self.verdict is ProbeVerdict.V6_OK


@dataclass
class PolicyConnectivity:
    """Handshake oracle for one vantage: policy + edge outages + jitter.

    ``unreachable`` is the ecosystem's edge-outage set (TLS-failure
    sites), shared with the crawler so both measurement layers see the
    same broken edges.  NAT64-synthesized v6 addresses succeed iff their
    embedded IPv4 address is reachable -- the translator races the v4
    path on the probe's behalf.
    """

    vantage: VantagePoint
    unreachable: frozenset[IpAddress]
    blocked_v6: bool = False
    _v4: float = field(default=0.032, repr=False)
    _v6: float = field(default=0.028, repr=False)

    def jitter(self, rng: RngStream) -> None:
        """Draw this probe's latency jitter (one draw per family)."""
        v = self.vantage
        self._v4 = max(MIN_LATENCY, v.v4_latency + rng.normal(0.0, LATENCY_JITTER_STD))
        self._v6 = max(MIN_LATENCY, v.v6_latency + rng.normal(0.0, LATENCY_JITTER_STD))

    def connect_latency(self, address: IpAddress) -> float | None:
        if not address.is_v6:
            return None if address in self.unreachable else self._v4
        if self.vantage.policy is NetworkPolicy.V4_ONLY:
            return None
        if self.blocked_v6:
            return None
        embedded = nat64_embedded_v4(address)
        if embedded is not None:
            # Translator handshake: v6 to the NAT64, v4 onward.
            return None if embedded in self.unreachable else self._v6
        return None if address in self.unreachable else self._v6


class Prober:
    """Runs availability probes for one vantage point."""

    def __init__(
        self,
        vantage: VantagePoint,
        resolver: VantageResolver,
        unreachable: Iterable[IpAddress] = (),
        he_config: HappyEyeballsConfig | None = None,
    ) -> None:
        self.vantage = vantage
        self.resolver = resolver
        self.connectivity = PolicyConnectivity(
            vantage=vantage, unreachable=frozenset(unreachable)
        )
        self._he = HappyEyeballs(he_config)

    def probe(
        self,
        target: ProbeTarget,
        rng: RngStream,
        overlay_v6: tuple[IpAddress, ...] = (),
    ) -> ProbeResult:
        """Probe one target: resolve, race v6-only, race dual-stack.

        ``overlay_v6`` carries AAAA records the target published after
        the universe was built (mid-window adoption); see
        :meth:`VantageResolver.resolve_target`.
        """
        answer = self.resolver.resolve_target(target.host, rng, overlay_v6)
        self.connectivity.jitter(rng)
        self.connectivity.blocked_v6 = self.vantage.blocks_target(target.etld1)

        if not answer.target_exists:
            nxdomain = DnsStatus.NXDOMAIN
            verdict = (
                ProbeVerdict.TARGET_DOWN
                if answer.a.status is nxdomain and answer.aaaa.status is nxdomain
                else ProbeVerdict.RESOLVE_FAILED
            )
            return ProbeResult(
                target=target,
                verdict=verdict,
                aaaa_present=False,
                synthesized_aaaa=False,
                client_family=None,
                v6_connect_time=None,
            )

        aaaa_present = bool(answer.v6_addresses)
        if not aaaa_present:
            verdict = ProbeVerdict.NO_AAAA
            v6_time = None
        elif self.vantage.policy is NetworkPolicy.V4_ONLY:
            verdict = ProbeVerdict.NO_V6_ROUTE
            v6_time = None
        else:
            verdict, v6_time = self._race_v6(answer.v6_addresses, answer.aaaa_time, rng)

        client_family = self._race_dual_stack(answer)
        return ProbeResult(
            target=target,
            verdict=verdict,
            aaaa_present=aaaa_present,
            synthesized_aaaa=answer.synthesized,
            client_family=client_family,
            v6_connect_time=v6_time,
        )

    def _race_v6(
        self,
        v6_addresses: tuple[IpAddress, ...],
        aaaa_time: float,
        rng: RngStream,
    ) -> tuple[ProbeVerdict, float | None]:
        """The availability check proper: an IPv6-only connection race."""
        result = self._he.connect(
            [],
            list(v6_addresses),
            self.connectivity,
            v6_resolution_time=aaaa_time,
        )
        if not result.connected:
            return ProbeVerdict.V6_CONNECT_FAILED, None
        if self.vantage.policy is NetworkPolicy.BROKEN_PMTU and rng.bernoulli(
            self.vantage.pmtu_blackhole_rate
        ):
            return ProbeVerdict.V6_PATH_BROKEN, result.connect_time
        return ProbeVerdict.V6_OK, result.connect_time

    def _race_dual_stack(self, answer) -> Family | None:
        """What a real dual-stack client at this vantage would use."""
        result = self._he.connect(
            list(answer.v4_addresses),
            list(answer.v6_addresses),
            self.connectivity,
            v4_resolution_time=A_RESOLUTION_TIME,
            v6_resolution_time=answer.aaaa_time,
        )
        return result.used_family
