"""The active-measurement observatory (binary availability, per country).

Where the census grades readiness and the traffic study measures usage,
the observatory produces the third perspective the paper contrasts them
with: the classic **binary** "is IPv6 available?" answer, measured the
way longitudinal observatories measure it -- AAAA lookup plus a TCP/443
handshake from fixed vantage points, aggregated per country, repeated in
rounds across the study window.

Vantage points carry access-network policies (NAT64, lossy resolvers,
broken PMTU, policy firewalls...) so the binary answer diverges from the
graded and usage views for modelled reasons::

    from repro.api import Study

    study = Study(days=28, sites=1500)
    obs = study.observatory                  # built lazily, cached
    print(study.artifact("contrast").to_text())
"""

from repro.observatory.analysis import (
    ContrastRow,
    CountryAvailability,
    PolicyVerdicts,
    SiteSpread,
    TakeoffSeries,
    census_readiness_shares,
    country_availability,
    final_round_availability,
    policy_verdicts,
    site_spread,
    takeoff_series,
    three_way_contrast,
    traffic_v6_byte_fraction,
)
from repro.observatory.frame import PROBE_DTYPE, ProbeFrame
from repro.observatory.probe import (
    PolicyConnectivity,
    ProbeResult,
    ProbeTarget,
    ProbeVerdict,
    Prober,
)
from repro.observatory.resolver import (
    VantageAnswer,
    VantageResolver,
    nat64_embedded_v4,
    nat64_synthesize,
)
from repro.observatory.rounds import (
    ObservatoryConfig,
    ObservatoryStudy,
    adoption_schedule,
    build_targets,
    fleet_country_codes,
    run_observatory,
)
from repro.observatory.vantage import NetworkPolicy, VantagePoint, build_vantage_fleet

__all__ = [
    "ContrastRow",
    "CountryAvailability",
    "PolicyVerdicts",
    "SiteSpread",
    "TakeoffSeries",
    "census_readiness_shares",
    "country_availability",
    "final_round_availability",
    "policy_verdicts",
    "site_spread",
    "takeoff_series",
    "three_way_contrast",
    "traffic_v6_byte_fraction",
    "PROBE_DTYPE",
    "ProbeFrame",
    "PolicyConnectivity",
    "ProbeResult",
    "ProbeTarget",
    "ProbeVerdict",
    "Prober",
    "VantageAnswer",
    "VantageResolver",
    "nat64_embedded_v4",
    "nat64_synthesize",
    "ObservatoryConfig",
    "ObservatoryStudy",
    "adoption_schedule",
    "build_targets",
    "fleet_country_codes",
    "run_observatory",
    "NetworkPolicy",
    "VantagePoint",
    "build_vantage_fleet",
]
