"""Per-vantage resolver views over the shared authoritative zones.

Every vantage point resolves against the *same* :class:`ZoneDatabase`
the census crawls (one ground truth), but through its own stub resolver
whose answers are shaped by the vantage's network policy:

* a ``LOSSY_RESOLVER`` vantage times out AAAA queries with some
  probability, so dual-stack targets intermittently look IPv4-only;
* a ``NAT64`` vantage runs DNS64: when a name has no real AAAA but does
  have an A record, it synthesizes ``64:ff9b::/96`` addresses embedding
  the IPv4 address (RFC 6147), which is how NAT64 eyeballs "reach"
  IPv4-only sites over IPv6.

Each vantage gets a fresh :class:`~repro.net.dns.Resolver` with the
ecosystem's injected failures copied in, so probing never perturbs the
crawler's resolver state (query counters included).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addr import IpAddress
from repro.net.dns import DnsResponse, DnsStatus, Resolver, ZoneDatabase
from repro.observatory.vantage import NetworkPolicy, VantagePoint
from repro.util.rng import RngStream

#: The well-known DNS64/NAT64 prefix, 64:ff9b::/96 (RFC 6052).
NAT64_PREFIX = 0x0064FF9B << 96

#: When each answer arrives relative to query start, in seconds.  DNS64
#: synthesis waits for the A answer before fabricating the AAAA, which
#: is why NAT64 vantages forfeit part of IPv6's resolution head start.
A_RESOLUTION_TIME = 0.010
AAAA_RESOLUTION_TIME = 0.012
DNS64_SYNTHESIS_DELAY = 0.008


def nat64_synthesize(v4: IpAddress) -> IpAddress:
    """Map an IPv4 address into the NAT64 well-known prefix."""
    return IpAddress.v6(NAT64_PREFIX | v4.value)


def nat64_embedded_v4(v6: IpAddress) -> IpAddress | None:
    """The IPv4 address embedded in a NAT64-synthesized IPv6 address."""
    if v6.is_v6 and (v6.value >> 32) == (NAT64_PREFIX >> 32):
        return IpAddress.v4(v6.value & 0xFFFFFFFF)
    return None


@dataclass(frozen=True)
class VantageAnswer:
    """What one vantage's resolver handed the prober for one target.

    Attributes:
        a / aaaa: the raw responses (AAAA is the *policy-shaped* view:
            a lossy vantage reports TIMEOUT even though records exist).
        v4_addresses / v6_addresses: connectable addresses per family.
        aaaa_time: when the v6 answer became usable (DNS64 synthesis is
            slower than a real AAAA answer).
        synthesized: True when the v6 addresses are DNS64 fabrications.
    """

    a: DnsResponse
    aaaa: DnsResponse
    v4_addresses: tuple[IpAddress, ...]
    v6_addresses: tuple[IpAddress, ...]
    aaaa_time: float
    synthesized: bool

    @property
    def target_exists(self) -> bool:
        """The name resolved to *something* (either family answered)."""
        return bool(self.v4_addresses or self.v6_addresses)


@dataclass
class VantageResolver:
    """One vantage's stub resolver over the shared zone database."""

    vantage: VantagePoint
    resolver: Resolver = field(repr=False)

    @classmethod
    def over(
        cls,
        vantage: VantagePoint,
        database: ZoneDatabase,
        forced_failures: dict[str, DnsStatus] | None = None,
    ) -> "VantageResolver":
        """A fresh per-vantage resolver sharing ``database``.

        ``forced_failures`` (the ecosystem's injected SERVFAILs and
        timeouts) are copied, not shared, so probe-side bookkeeping
        cannot leak into the crawler's resolver.
        """
        resolver = Resolver(database=database)
        for name, status in (forced_failures or {}).items():
            resolver.inject_failure(name, status)
        return cls(vantage=vantage, resolver=resolver)

    def resolve_target(
        self,
        host: str,
        rng: RngStream,
        overlay_v6: tuple[IpAddress, ...] = (),
    ) -> VantageAnswer:
        """The dual-stack query pair, as this vantage's network sees it.

        ``overlay_v6`` models mid-window adoption (the takeoff): AAAA
        records the target published *after* the universe was built.
        They behave exactly like authoritative answers -- a lossy
        vantage can still time the query out, and NAT64 synthesis is
        suppressed by their presence.
        """
        a, aaaa = self.resolver.resolve_addresses(host)
        policy = self.vantage.policy
        aaaa_time = AAAA_RESOLUTION_TIME
        synthesized = False

        lost = (
            policy is NetworkPolicy.LOSSY_RESOLVER
            and aaaa.status is DnsStatus.NOERROR
            and rng.bernoulli(self.vantage.aaaa_loss_rate)
        )
        if lost:
            aaaa = DnsResponse(
                DnsStatus.TIMEOUT, (), aaaa.chain, aaaa.question
            )

        v4_addresses = a.addresses if a.status is DnsStatus.NOERROR else ()
        v6_addresses = aaaa.addresses if aaaa.status is DnsStatus.NOERROR else ()

        if overlay_v6 and not v6_addresses and v4_addresses and not lost:
            v6_addresses = overlay_v6

        if policy is NetworkPolicy.NAT64 and not v6_addresses and v4_addresses:
            v6_addresses = tuple(nat64_synthesize(v4) for v4 in v4_addresses)
            aaaa_time = A_RESOLUTION_TIME + DNS64_SYNTHESIS_DELAY
            synthesized = True

        return VantageAnswer(
            a=a,
            aaaa=aaaa,
            v4_addresses=v4_addresses,
            v6_addresses=v6_addresses,
            aaaa_time=aaaa_time,
            synthesized=synthesized,
        )
