"""Observatory aggregations: availability tables, takeoff, contrast.

Everything here is a ``np.bincount`` group-by over the
:class:`~repro.observatory.frame.ProbeFrame`'s integer codes, mirroring
the columnar style of :mod:`repro.core.client`.  The headline
:func:`three_way_contrast` closes the paper's non-binary loop: for each
country it puts the **binary** availability share (what a longitudinal
observatory would report), the **graded** census readiness of the same
probed sites, and the **usage** side (client traffic IPv6 byte fraction)
side by side -- three numbers that would coincide if IPv6 adoption were
binary, and don't.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.readiness import SiteClass, classify_site
from repro.crawler.records import CrawlDataset
from repro.datasets.scenarios import ResidenceStudy
from repro.flowmon.monitor import FlowScope
from repro.observatory.probe import ProbeVerdict
from repro.observatory.rounds import ObservatoryStudy, fleet_country_codes
from repro.observatory.vantage import NetworkPolicy


def _share(count: float, total: float) -> float:
    return count / total if total > 0 else 0.0


# -- per-country availability ------------------------------------------------


@dataclass(frozen=True)
class CountryAvailability:
    """One country's row of the binary availability table."""

    country: str
    vantages: int
    probes: int
    aaaa_observed: int
    available: int
    synthesized: int
    client_used_v6: int

    @property
    def available_share(self) -> float:
        return _share(self.available, self.probes)

    @property
    def aaaa_share(self) -> float:
        return _share(self.aaaa_observed, self.probes)

    @property
    def client_v6_share(self) -> float:
        return _share(self.client_used_v6, self.probes)


def country_availability(obs: ObservatoryStudy) -> list[CountryAvailability]:
    """The per-country binary availability table, across all rounds."""
    frame = obs.frame
    n = len(obs.countries)
    country = frame.country
    vantage_codes, _ = fleet_country_codes(obs.fleet)
    vantages_per_country = np.bincount(vantage_codes, minlength=n)
    probes = np.bincount(country, minlength=n)
    aaaa = np.bincount(country[frame.aaaa], minlength=n)
    available = np.bincount(country[frame.available], minlength=n)
    synth = np.bincount(country[frame.synthesized], minlength=n)
    client_v6 = np.bincount(country[frame.client_used_v6], minlength=n)
    return [
        CountryAvailability(
            country=name,
            vantages=int(vantages_per_country[i]),
            probes=int(probes[i]),
            aaaa_observed=int(aaaa[i]),
            available=int(available[i]),
            synthesized=int(synth[i]),
            client_used_v6=int(client_v6[i]),
        )
        for i, name in enumerate(obs.countries)
    ]


# -- the takeoff curve -------------------------------------------------------


@dataclass(frozen=True)
class TakeoffSeries:
    """Availability share per probe round ("watching the takeoff").

    Attributes:
        days: the round schedule (day index per round).
        overall: fleet-wide available share per round.
        by_country: country -> per-round available shares.
    """

    days: tuple[int, ...]
    overall: tuple[float, ...]
    by_country: dict[str, tuple[float, ...]]


def takeoff_series(obs: ObservatoryStudy) -> TakeoffSeries:
    """Availability across rounds, overall and per country."""
    frame = obs.frame
    rounds = obs.num_rounds
    n = len(obs.countries)
    key = frame.round.astype(np.int64) * n + frame.country
    minlength = rounds * n
    probes = np.bincount(key, minlength=minlength).reshape(rounds, n)
    available = np.bincount(key[frame.available], minlength=minlength).reshape(
        rounds, n
    )
    overall = tuple(
        _share(float(available[r].sum()), float(probes[r].sum()))
        for r in range(rounds)
    )
    by_country = {
        name: tuple(
            _share(float(available[r, i]), float(probes[r, i]))
            for r in range(rounds)
        )
        for i, name in enumerate(obs.countries)
    }
    return TakeoffSeries(
        days=tuple(obs.config.round_days), overall=overall, by_country=by_country
    )


# -- per-policy verdict taxonomy ---------------------------------------------


@dataclass(frozen=True)
class PolicyVerdicts:
    """What one access-network policy does to the binary answer."""

    policy: NetworkPolicy
    vantages: int
    probes: int
    verdict_counts: dict[ProbeVerdict, int]

    @property
    def available_share(self) -> float:
        return _share(self.verdict_counts.get(ProbeVerdict.V6_OK, 0), self.probes)


def policy_verdicts(obs: ObservatoryStudy) -> list[PolicyVerdicts]:
    """Verdict distribution per network policy, in fleet order."""
    frame = obs.frame
    policies: list[NetworkPolicy] = []
    policy_of_vantage: list[int] = []
    for vantage in obs.fleet:
        if vantage.policy not in policies:
            policies.append(vantage.policy)
        policy_of_vantage.append(policies.index(vantage.policy))
    policy_lookup = np.asarray(policy_of_vantage, dtype=np.int64)
    per_probe_policy = policy_lookup[frame.vantage]
    n_policies = len(policies)
    n_verdicts = len(ProbeVerdict)
    key = per_probe_policy * n_verdicts + frame.verdict.astype(np.int64)
    counts = np.bincount(key, minlength=n_policies * n_verdicts).reshape(
        n_policies, n_verdicts
    )
    vantages_per_policy = np.bincount(policy_lookup, minlength=n_policies)
    rows = []
    for index, policy in enumerate(policies):
        verdict_counts = {
            verdict: int(counts[index, verdict.value])
            for verdict in ProbeVerdict
            if counts[index, verdict.value]
        }
        rows.append(
            PolicyVerdicts(
                policy=policy,
                vantages=int(vantages_per_policy[index]),
                probes=int(counts[index].sum()),
                verdict_counts=verdict_counts,
            )
        )
    return rows


# -- cross-country site spread -----------------------------------------------


@dataclass(frozen=True)
class SiteSpread:
    """How (dis)agreeing the per-country binary answers are, per site.

    ``histogram[k]`` counts sites reported IPv6-available from exactly
    ``k`` of the fleet's countries in the final round; ``contested`` are
    sites with at least one country saying yes and one saying no -- the
    population a single-vantage binary study silently misreports.
    """

    countries: int
    sites: int
    histogram: tuple[int, ...]
    unanimous_yes: int
    unanimous_no: int
    contested: int


def site_spread(obs: ObservatoryStudy) -> SiteSpread:
    """Final-round cross-country agreement on the binary answer."""
    last = obs.frame.select(round_index=obs.num_rounds - 1)
    n_countries = len(obs.countries)
    n_targets = len(obs.targets)
    # A site is "available from country C" if any of C's vantages
    # connected (a study with one vantage per country would see C's
    # single answer; max() models the optimistic aggregation).
    key = last.target.astype(np.int64) * n_countries + last.country
    available_any = np.zeros(n_targets * n_countries, dtype=bool)
    np.logical_or.at(available_any, key, last.available)
    per_site = available_any.reshape(n_targets, n_countries).sum(axis=1)
    histogram = np.bincount(per_site, minlength=n_countries + 1)
    return SiteSpread(
        countries=n_countries,
        sites=n_targets,
        histogram=tuple(int(c) for c in histogram),
        unanimous_yes=int(histogram[n_countries]),
        unanimous_no=int(histogram[0]),
        contested=int(n_targets - histogram[0] - histogram[n_countries]),
    )


# -- the three-way contrast --------------------------------------------------


@dataclass(frozen=True)
class ContrastRow:
    """One country's binary / graded / usage triple."""

    country: str
    probes: int
    #: Binary: share of probed sites "IPv6 available" from this country.
    available_share: float
    #: Graded: census readiness of the same probed sites (global truth).
    census_full_share: float
    census_partial_share: float
    census_v4only_share: float
    #: Usage: external IPv6 byte fraction of the client traffic study.
    traffic_v6_byte_fraction: float

    @property
    def binary_minus_graded(self) -> float:
        """How much the binary check overstates full readiness."""
        return self.available_share - self.census_full_share


def _census_classes(
    dataset: CrawlDataset, probed: set[str]
) -> tuple[int, int, int]:
    """(full, partial, v4only) counts among the probed, classified sites."""
    full = partial = v4only = 0
    for result in dataset.results:
        if result.site not in probed:
            continue
        site_class = classify_site(result)
        if site_class is SiteClass.IPV6_FULL:
            full += 1
        elif site_class is SiteClass.IPV6_PARTIAL:
            partial += 1
        elif site_class is SiteClass.IPV4_ONLY:
            v4only += 1
    return full, partial, v4only


def final_round_availability(obs: ObservatoryStudy) -> np.ndarray:
    """Final-round per-country available share, aligned to ``obs.countries``.

    The "current" binary answer each country's observatory would
    publish -- the availability column of :func:`three_way_contrast`
    and of every what-if delta (one definition, so the two can never
    silently diverge).
    """
    last = obs.frame.select(round_index=obs.num_rounds - 1)
    n = len(obs.countries)
    probes = np.bincount(last.country, minlength=n).astype(np.float64)
    available = np.bincount(last.country[last.available], minlength=n)
    with np.errstate(invalid="ignore"):
        return np.where(probes > 0, available / probes, 0.0)


def census_readiness_shares(
    dataset: CrawlDataset, probed: set[str]
) -> tuple[float, float, float]:
    """(full, partial, v4only) shares among probed, classified sites.

    The graded-readiness columns of :func:`three_way_contrast`, shared
    with the what-if deltas.
    """
    full, partial, v4only = _census_classes(dataset, probed)
    classified = full + partial + v4only
    return (
        _share(full, classified),
        _share(partial, classified),
        _share(v4only, classified),
    )


def traffic_v6_byte_fraction(traffic: ResidenceStudy) -> float:
    """External IPv6 byte fraction aggregated over every residence."""
    total = 0
    v6 = 0
    for dataset in traffic.datasets.values():
        frame = dataset.frame().select(scope=FlowScope.EXTERNAL)
        volume = frame.total_bytes
        total += int(volume.sum())
        v6 += int(volume[frame.is_v6].sum())
    return _share(v6, total)


def three_way_contrast(
    obs: ObservatoryStudy,
    census_dataset: CrawlDataset,
    traffic: ResidenceStudy,
) -> list[ContrastRow]:
    """Binary availability vs graded readiness vs actual usage, per country.

    Availability uses the final probe round (the "current" binary
    answer each country's observatory would publish); readiness grades
    the *same* probed sites through the census; usage is the traffic
    study's external IPv6 byte fraction.  The spread across the three
    columns -- and across countries within the first column -- is the
    paper's argument rendered as one table.
    """
    last = obs.frame.select(round_index=obs.num_rounds - 1)
    n = len(obs.countries)
    probes = np.bincount(last.country, minlength=n)
    availability = final_round_availability(obs)

    probed = {target.etld1 for target in obs.targets}
    full_share, partial_share, v4only_share = census_readiness_shares(
        census_dataset, probed
    )
    usage = traffic_v6_byte_fraction(traffic)

    return [
        ContrastRow(
            country=name,
            probes=int(probes[i]),
            available_share=float(availability[i]),
            census_full_share=full_share,
            census_partial_share=partial_share,
            census_v4only_share=v4only_share,
            traffic_v6_byte_fraction=usage,
        )
        for i, name in enumerate(obs.countries)
    ]
