"""Probe rounds: scheduling, fan-out, and assembly into a ProbeFrame.

A probe **round** visits every (vantage, target) pair once; rounds run
on a fixed schedule across the study window (every
``probe_interval_days`` days), which is what turns the binary
availability check into a longitudinal "takeoff" series.

The runner fans **vantage points** across a
:class:`~concurrent.futures.ProcessPoolExecutor`, the same pattern the
traffic generator uses for residences: every vantage draws from its own
seeded RNG substream (``(seed, "vantage:<name>")``, one sub-substream
per round), so the parallel and sequential paths produce bit-identical
:class:`~repro.observatory.frame.ProbeFrame`\\ s.  On pool failure the
runner warns once (:func:`repro.util.procpool.warn_pool_fallback`) and
runs inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.net.addr import IpAddress
from repro.net.dns import DnsStatus, ZoneDatabase
from repro.observatory.frame import ProbeFrame
from repro.observatory.probe import ProbeTarget, Prober
from repro.observatory.resolver import VantageResolver
from repro.observatory.vantage import VantagePoint, build_vantage_fleet
from repro.util.procpool import map_in_pool, resolve_worker_count
from repro.util.rng import RngStream, derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.web.ecosystem import WebEcosystem

#: Default probe budget: top-N sites of the universe per round.
DEFAULT_MAX_TARGETS = 500

#: Default round cadence across the study window.
DEFAULT_PROBE_INTERVAL_DAYS = 14

#: Share of probed targets that publish AAAA records *during* the study
#: window (uniformly spread adoption dates) -- what makes the takeoff
#: curve actually take off, mirroring the drift model the longitudinal
#: census re-crawls use.
DEFAULT_ADOPTION_DRIFT = 0.12

#: Address block the late adopters' new AAAA records point into.
_ADOPTION_PREFIX = 0x260000AD << 96


@dataclass(frozen=True)
class ObservatoryConfig:
    """Scale and cadence of one observatory run.

    ``num_days`` is the study window the rounds are scheduled across
    (normally the traffic study's window, so the takeoff series and the
    flow series share a time axis).
    """

    num_days: int = 154
    probe_interval_days: int = DEFAULT_PROBE_INTERVAL_DAYS
    max_targets: int = DEFAULT_MAX_TARGETS
    adoption_drift: float = DEFAULT_ADOPTION_DRIFT
    seed: int = 42
    parallel: bool | int | None = None

    def __post_init__(self) -> None:
        if self.num_days < 1:
            raise ValueError("num_days must be >= 1")
        if self.probe_interval_days < 1:
            raise ValueError("probe_interval_days must be >= 1")
        if self.max_targets < 1:
            raise ValueError("max_targets must be >= 1")
        if not 0.0 <= self.adoption_drift <= 1.0:
            raise ValueError("adoption_drift must be a probability")

    @property
    def round_days(self) -> tuple[int, ...]:
        """Day indices on which a round runs (always at least day 0)."""
        return tuple(range(0, self.num_days, self.probe_interval_days))


@dataclass
class ObservatoryStudy:
    """One observatory run: the fleet, its targets, and every probe."""

    config: ObservatoryConfig
    fleet: tuple[VantagePoint, ...]
    targets: tuple[ProbeTarget, ...]
    frame: ProbeFrame

    @property
    def num_rounds(self) -> int:
        return len(self.config.round_days)

    @property
    def countries(self) -> tuple[str, ...]:
        return self.frame.countries


def build_targets(
    ecosystem: "WebEcosystem", max_targets: int = DEFAULT_MAX_TARGETS
) -> tuple[ProbeTarget, ...]:
    """Probe targets from the existing site universe, in rank order.

    Live sites are probed at their main host (the ``www`` placement,
    where the AAAA lives -- probing the apex would measure the redirect,
    not the site); dead top-list entries are probed at the eTLD+1 and
    yield NXDOMAIN verdicts, exactly as a real observatory keeps probing
    list entries that no longer resolve.
    """
    targets: list[ProbeTarget] = []
    for entry in ecosystem.toplist.top(min(max_targets, len(ecosystem.toplist))):
        plan = ecosystem.plan_of(entry.etld1)
        host = plan.website.main_host if plan.website is not None else entry.etld1
        targets.append(ProbeTarget(etld1=entry.etld1, host=host, rank=entry.rank))
    return tuple(targets)


def adoption_schedule(
    targets: tuple[ProbeTarget, ...], config: ObservatoryConfig
) -> dict[int, tuple[int, tuple[IpAddress, ...]]]:
    """Mid-window AAAA publication dates: ``target index -> (day, addrs)``.

    A hash-based draw (seed and eTLD+1 only), not a probe-RNG draw, so
    the schedule is a stable property of the configuration: identical
    across rounds, vantage points, and the parallel/sequential runners.
    The target's new AAAA becomes visible to every probe from ``day``
    on -- *if* the target is live and still A-only then, which is
    decided at probe time.
    """
    schedule: dict[int, tuple[int, tuple[IpAddress, ...]]] = {}
    if config.adoption_drift <= 0.0:
        return schedule
    for index, target in enumerate(targets):
        draw = derive_seed(config.seed, f"adopt:{target.etld1}") / float(1 << 64)
        if draw >= config.adoption_drift:
            continue
        # Reuse the uniform draw's position within the accepted band as
        # the (uniform) adoption date inside the study window.
        day = int(draw / config.adoption_drift * config.num_days)
        address = IpAddress.v6(
            _ADOPTION_PREFIX
            | (derive_seed(config.seed, f"adopt-addr:{target.etld1}") & 0xFFFFFFFF)
        )
        schedule[index] = (day, (address,))
    return schedule


def fleet_country_codes(
    fleet: tuple[VantagePoint, ...],
) -> tuple[list[int], tuple[str, ...]]:
    """The single source of truth for country interning.

    Returns ``(per-vantage country code, interned country names)`` with
    codes in fleet first-appearance order; both the frame rows and the
    frame's ``countries`` naming table come from this one mapping.
    """
    ids: dict[str, int] = {}
    codes = [ids.setdefault(v.country, len(ids)) for v in fleet]
    return codes, tuple(ids)


#: The universe one probe run measures, shared by every vantage: the
#: zones (with the crawler's injected failures), the edge-outage set,
#: the target list, the round schedule, and the seed.  Shipped to worker
#: processes once per worker (pool initializer), not once per task --
#: at paper scale the zone database dwarfs everything else.
_ProbeUniverse = tuple[
    ZoneDatabase,
    dict[str, DnsStatus],
    frozenset[IpAddress],
    tuple[ProbeTarget, ...],
    dict[int, tuple[int, tuple[IpAddress, ...]]],  # adoption schedule
    tuple[int, ...],  # round day indices
    int,  # seed
]

#: One vantage's workload: the vantage and its fleet/country indices.
_VantageTask = tuple[VantagePoint, int, int]

#: Per-worker universe, set by :func:`_init_probe_worker`.
_WORKER_UNIVERSE: _ProbeUniverse | None = None


def _init_probe_worker(universe: _ProbeUniverse) -> None:
    """Pool initializer: receive the shared universe once per worker."""
    global _WORKER_UNIVERSE
    _WORKER_UNIVERSE = universe


def _probe_vantage_in_worker(task: _VantageTask) -> list[np.ndarray]:
    """Worker entry: run every round for one vantage point."""
    assert _WORKER_UNIVERSE is not None, "pool initializer did not run"
    return _probe_vantage(task, _WORKER_UNIVERSE)


def _probe_vantage(
    task: _VantageTask, universe: _ProbeUniverse
) -> list[np.ndarray]:
    """Run every round for one vantage point against the universe.

    Returns one encoded frame block per round.  All randomness comes
    from the ``(seed, "vantage:<name>")`` substream with one sub-stream
    per round, so the result is independent of which process (or in
    which order) the vantage runs.
    """
    vantage, vantage_index, country_index = task
    zones, forced_failures, unreachable, targets, schedule, round_days, seed = (
        universe
    )
    prober = Prober(
        vantage,
        VantageResolver.over(vantage, zones, forced_failures),
        unreachable=unreachable,
    )
    root = RngStream(seed, f"vantage:{vantage.name}")
    target_indices = np.arange(len(targets), dtype=np.int32)
    blocks: list[np.ndarray] = []
    for round_index, day in enumerate(round_days):
        rng = root.substream(f"round:{round_index}")
        results = []
        for target_index, target in enumerate(targets):
            adopted = schedule.get(target_index)
            overlay = (
                adopted[1]
                if adopted is not None and day >= adopted[0]
                else ()
            )
            results.append(prober.probe(target, rng, overlay))
        blocks.append(
            ProbeFrame.encode_block(
                round_index, day, vantage_index, country_index,
                results, target_indices,
            )
        )
    return blocks


def run_observatory(
    ecosystem: "WebEcosystem",
    config: ObservatoryConfig | None = None,
    fleet: tuple[VantagePoint, ...] | None = None,
) -> ObservatoryStudy:
    """Run every probe round of the study window against ``ecosystem``.

    The ecosystem supplies the ground truth the probes measure: the
    authoritative zones (plus the crawler's injected DNS failures) and
    the edge-outage set, so the observatory and the census disagree only
    for *modelled* reasons (vantage policy), never because they looked
    at different universes.

    ``fleet`` replaces the default per-country vantage fleet -- the
    what-if overlays hand in policy-transformed fleets (a country
    deploying NAT64, a policy firewall) without rebuilding anything
    else.
    """
    config = config or ObservatoryConfig()
    if fleet is None:
        fleet = build_vantage_fleet()
    targets = build_targets(ecosystem, config.max_targets)
    universe: _ProbeUniverse = (
        ecosystem.zones,
        ecosystem.resolver.forced_failures(),
        frozenset(ecosystem.connectivity.unreachable),
        targets,
        adoption_schedule(targets, config),
        config.round_days,
        config.seed,
    )
    round_days = config.round_days

    country_codes, countries = fleet_country_codes(fleet)
    tasks: list[_VantageTask] = [
        (vantage, index, country_index)
        for (index, vantage), country_index in zip(
            enumerate(fleet), country_codes
        )
    ]

    workers = resolve_worker_count(config.parallel, len(fleet))
    per_vantage = map_in_pool(
        _probe_vantage_in_worker, tasks, workers, "observatory probe rounds",
        initializer=_init_probe_worker, initargs=(universe,),
    )
    if per_vantage is None:
        per_vantage = [_probe_vantage(task, universe) for task in tasks]

    # Canonical order: round-major, then fleet order.
    blocks = [
        per_vantage[vantage_index][round_index]
        for round_index in range(len(round_days))
        for vantage_index in range(len(fleet))
    ]
    frame = ProbeFrame.assemble(
        tuple(v.name for v in fleet),
        countries,
        tuple(t.etld1 for t in targets),
        blocks,
    )
    return ObservatoryStudy(
        config=config, fleet=fleet, targets=targets, frame=frame
    )
