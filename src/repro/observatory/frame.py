"""ProbeFrame: a columnar (NumPy structured-array) view of probe rounds.

Mirrors :class:`repro.flowmon.frame.FlowFrame`: every probe lands as one
row of a structured array with interned vantage / country / target ids,
so the per-country availability tables, the takeoff series, and the
three-way contrast are ``np.bincount`` group-bys over integer codes
instead of Python loops over result objects.

Rows are in **canonical order** -- round-major, then vantage points in
fleet order, then targets in rank order -- which is the order the
sequential round runner emits and the order the parallel runner
reassembles, so the two are bit-identical for a fixed seed (pinned by
``tests/observatory``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.net.addr import Family
from repro.observatory.probe import ProbeResult, ProbeVerdict

#: The columnar layout.  ``vantage`` / ``country`` / ``target`` index the
#: frame's interning tables; ``client_family`` is 4/6 or 0 (no winner);
#: ``connect_ms`` is the v6 race's connect time (NaN when it never won).
PROBE_DTYPE = np.dtype(
    [
        ("round", np.int16),
        ("day", np.int32),
        ("vantage", np.int16),
        ("country", np.int16),
        ("target", np.int32),
        ("rank", np.int32),
        ("verdict", np.int8),
        ("aaaa", np.int8),
        ("synth", np.int8),
        ("client_family", np.int8),
        ("connect_ms", np.float64),
    ]
)


@dataclass
class ProbeFrame:
    """All probe rounds of one observatory run, as parallel columns.

    Attributes:
        data: the structured array (:data:`PROBE_DTYPE`), one row per
            probe, in canonical round/vantage/target order.
        vantages: interned vantage names, in fleet order.
        countries: interned country codes, in fleet first-appearance
            order; row ``country`` values index into this tuple.
        targets: interned target eTLD+1 strings, in rank order.
    """

    data: np.ndarray
    vantages: tuple[str, ...] = ()
    countries: tuple[str, ...] = ()
    targets: tuple[str, ...] = ()

    # -- construction -----------------------------------------------------

    @classmethod
    def assemble(
        cls,
        vantage_names: tuple[str, ...],
        countries: tuple[str, ...],
        target_names: tuple[str, ...],
        blocks: Iterable[np.ndarray],
    ) -> "ProbeFrame":
        """Concatenate per-(round, vantage) blocks in canonical order.

        The caller guarantees ``blocks`` is already round-major then
        fleet-ordered, and that the ``vantage``/``country``/``target``
        codes inside the blocks index the naming tables passed here
        (:func:`repro.observatory.rounds.fleet_country_codes` is the one
        place the country interning is computed); this just glues.
        """
        parts = list(blocks)
        data = (
            np.concatenate(parts)
            if parts
            else np.empty(0, dtype=PROBE_DTYPE)
        )
        return cls(
            data=data,
            vantages=vantage_names,
            countries=countries,
            targets=target_names,
        )

    @staticmethod
    def encode_block(
        round_index: int,
        day: int,
        vantage_index: int,
        country_index: int,
        results: list[ProbeResult],
        target_indices: np.ndarray,
    ) -> np.ndarray:
        """Encode one vantage's results for one round as frame rows."""
        block = np.empty(len(results), dtype=PROBE_DTYPE)
        block["round"] = round_index
        block["day"] = day
        block["vantage"] = vantage_index
        block["country"] = country_index
        block["target"] = target_indices
        for i, result in enumerate(results):
            row = block[i]
            row["rank"] = result.target.rank
            row["verdict"] = result.verdict.value
            row["aaaa"] = 1 if result.aaaa_present else 0
            row["synth"] = 1 if result.synthesized_aaaa else 0
            family = result.client_family
            row["client_family"] = 0 if family is None else family.value
            time = result.v6_connect_time
            row["connect_ms"] = np.nan if time is None else time * 1000.0
        return block

    # -- basic shape -------------------------------------------------------

    def __len__(self) -> int:
        return int(self.data.size)

    @property
    def round(self) -> np.ndarray:
        return self.data["round"]

    @property
    def day(self) -> np.ndarray:
        return self.data["day"]

    @property
    def vantage(self) -> np.ndarray:
        return self.data["vantage"]

    @property
    def country(self) -> np.ndarray:
        return self.data["country"]

    @property
    def target(self) -> np.ndarray:
        return self.data["target"]

    @property
    def rank(self) -> np.ndarray:
        return self.data["rank"]

    @property
    def verdict(self) -> np.ndarray:
        return self.data["verdict"]

    @property
    def available(self) -> np.ndarray:
        """The binary "IPv6 available" bit per probe."""
        return self.data["verdict"] == ProbeVerdict.V6_OK.value

    @property
    def aaaa(self) -> np.ndarray:
        return self.data["aaaa"] == 1

    @property
    def synthesized(self) -> np.ndarray:
        return self.data["synth"] == 1

    @property
    def client_used_v6(self) -> np.ndarray:
        return self.data["client_family"] == Family.V6.value

    @property
    def connect_ms(self) -> np.ndarray:
        return self.data["connect_ms"]

    @property
    def num_rounds(self) -> int:
        return int(self.data["round"].max()) + 1 if self.data.size else 0

    # -- selection ---------------------------------------------------------

    def select(
        self,
        round_index: int | None = None,
        country: str | None = None,
        vantage: str | None = None,
    ) -> "ProbeFrame":
        """A filtered view sharing this frame's interning tables."""
        mask = np.ones(self.data.size, dtype=bool)
        if round_index is not None:
            mask &= self.data["round"] == round_index
        if country is not None:
            mask &= self.data["country"] == self.countries.index(country)
        if vantage is not None:
            mask &= self.data["vantage"] == self.vantages.index(vantage)
        return ProbeFrame(
            data=self.data[mask],
            vantages=self.vantages,
            countries=self.countries,
            targets=self.targets,
        )

    def mask(self, mask: np.ndarray) -> "ProbeFrame":
        """A boolean-mask view sharing this frame's interning tables."""
        return ProbeFrame(
            data=self.data[mask],
            vantages=self.vantages,
            countries=self.countries,
            targets=self.targets,
        )
