"""Vantage points: where the observatory probes *from*.

The binary "is IPv6 available?" answer prior work reports is not a
property of the target alone -- it is a property of the (vantage,
target) pair.  A NAT64-only eyeball network synthesizes AAAA records and
happily "reaches" IPv4-only sites over IPv6; an enterprise v4-only
transit answers "no" for everything; a broken-PMTU path answers "yes"
at the SYN and then stalls.  Each :class:`VantagePoint` therefore
carries a country, a :class:`NetworkPolicy`, and the policy's knobs, and
every vantage draws from its own seeded RNG substream so probe rounds
are reproducible and order-independent.

The fleet shape (AAAA lookup + TCP/443 handshake per target, aggregated
per country) follows the longitudinal observatories this subsystem
models: IXP-viewpoint takeoff measurements (arXiv:1402.3982) and the
per-country acceleration study (arXiv:2204.09539).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.rng import derive_seed


class NetworkPolicy(enum.Enum):
    """The access-network archetype a vantage point sits behind."""

    #: Clean native dual stack: probes see the target's true records.
    NATIVE = "native"
    #: No IPv6 route at all: every v6 handshake fails at the first hop.
    V4_ONLY = "v4-only"
    #: DNS64/NAT64 eyeball network: the resolver synthesizes AAAA from A,
    #: so "IPv6 works" even against IPv4-only targets (the overcount).
    NAT64 = "nat64"
    #: IPv6 SYNs succeed but large packets blackhole (broken PMTUD), so
    #: the handshake completes and the transfer dies (the false "yes").
    BROKEN_PMTU = "broken-pmtu"
    #: Per-target policy firewall: a deterministic subset of targets has
    #: IPv6 blocked (national/enterprise filtering).
    POLICY_BLOCK = "policy-block"
    #: Flaky resolver that times out AAAA queries with some probability,
    #: making dual-stack targets look IPv4-only (the undercount).
    LOSSY_RESOLVER = "lossy-resolver"


@dataclass(frozen=True)
class VantagePoint:
    """One probing location with its network policy and latency profile.

    Attributes:
        name: unique fleet-wide identifier (``de-fra-1``).
        country: ISO-style country code the vantage aggregates under.
        policy: the access-network archetype (see :class:`NetworkPolicy`).
        v4_latency / v6_latency: median handshake latency per family.
        aaaa_loss_rate: probability a AAAA query times out
            (``LOSSY_RESOLVER`` only).
        pmtu_blackhole_rate: probability a completed v6 handshake stalls
            on the first full-size packet (``BROKEN_PMTU`` only).
        block_rate: share of targets with IPv6 administratively blocked
            (``POLICY_BLOCK`` only).
    """

    name: str
    country: str
    policy: NetworkPolicy
    v4_latency: float = 0.032
    v6_latency: float = 0.028
    aaaa_loss_rate: float = 0.0
    pmtu_blackhole_rate: float = 0.0
    block_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.name or not self.country:
            raise ValueError("vantage points need a name and a country")
        if self.v4_latency <= 0 or self.v6_latency <= 0:
            raise ValueError("latencies must be positive")
        for rate in (self.aaaa_loss_rate, self.pmtu_blackhole_rate, self.block_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("policy rates must be probabilities")

    def blocks_target(self, etld1: str) -> bool:
        """Deterministic per-target IPv6 block (``POLICY_BLOCK`` only).

        Hash-based rather than drawn from the probe RNG so the blocked
        set is a stable property of the vantage, identical across rounds
        and across the parallel/sequential round runners.
        """
        if self.policy is not NetworkPolicy.POLICY_BLOCK or self.block_rate <= 0.0:
            return False
        return (derive_seed(0, f"{self.name}|block|{etld1}") % 10_000) < (
            self.block_rate * 10_000
        )


def build_vantage_fleet() -> tuple[VantagePoint, ...]:
    """The default per-country fleet, one access-network archetype each.

    Countries with two vantages (US, DE) let the per-country aggregation
    average over heterogeneous access networks, which is exactly how the
    per-country availability numbers in prior work hide policy effects.
    """
    return (
        VantagePoint("us-nyc-1", "US", NetworkPolicy.NATIVE,
                     v4_latency=0.024, v6_latency=0.022),
        VantagePoint("us-sea-1", "US", NetworkPolicy.V4_ONLY,
                     v4_latency=0.030, v6_latency=0.030),
        VantagePoint("de-fra-1", "DE", NetworkPolicy.NATIVE,
                     v4_latency=0.028, v6_latency=0.025),
        VantagePoint("de-ber-1", "DE", NetworkPolicy.LOSSY_RESOLVER,
                     v4_latency=0.031, v6_latency=0.029, aaaa_loss_rate=0.15),
        VantagePoint("nl-ams-1", "NL", NetworkPolicy.NATIVE,
                     v4_latency=0.027, v6_latency=0.024),
        VantagePoint("jp-tyo-1", "JP", NetworkPolicy.NAT64,
                     v4_latency=0.046, v6_latency=0.041),
        VantagePoint("in-bom-1", "IN", NetworkPolicy.NAT64,
                     v4_latency=0.058, v6_latency=0.052),
        VantagePoint("br-sao-1", "BR", NetworkPolicy.BROKEN_PMTU,
                     v4_latency=0.052, v6_latency=0.049, pmtu_blackhole_rate=0.35),
        VantagePoint("fr-par-1", "FR", NetworkPolicy.NATIVE,
                     v4_latency=0.029, v6_latency=0.026),
        VantagePoint("au-syd-1", "AU", NetworkPolicy.LOSSY_RESOLVER,
                     v4_latency=0.071, v6_latency=0.066, aaaa_loss_rate=0.08),
        VantagePoint("cn-pek-1", "CN", NetworkPolicy.POLICY_BLOCK,
                     v4_latency=0.064, v6_latency=0.060, block_rate=0.25),
        VantagePoint("za-jnb-1", "ZA", NetworkPolicy.V4_ONLY,
                     v4_latency=0.082, v6_latency=0.082),
    )
