"""The deviation detector: trailing baselines, conservative z-scores.

For each signal matrix the detector maintains, per scope column, the
*trailing* mean and standard deviation of every prefix -- computed in
one pass with cumulative sums, no per-point loop.  A point becomes an
event when it sits at least ``z_watch`` baseline sigmas away from the
mean of everything before it, and only once ``min_history`` points of
baseline exist.  One point per (signal, scope, day) means at most one
event per signal per scope per day by construction.

All thresholds come from :class:`repro.sentinel.config.SentinelConfig`;
REP011 keeps literal thresholds out of this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sentinel.config import SEVERITIES, SentinelConfig
from repro.sentinel.series import SignalSeries


@dataclass(frozen=True)
class SentinelEvent:
    """One significant deviation in one signal's series.

    Attributes:
        day: simulation day the deviating point landed on.
        signal: which adoption signal deviated.
        scope: country code, or ``"*"`` for fleet-wide signals.
        value: the observed point.
        baseline: trailing mean of every earlier point.
        sigma: trailing standard deviation (floored by the config).
        z: signed deviation in sigmas, ``(value - baseline) / sigma``.
        direction: ``"up"`` or ``"down"``.
        severity: ``"watch"``, ``"elevated"`` or ``"critical"``.
    """

    day: int
    signal: str
    scope: str
    value: float
    baseline: float
    sigma: float
    z: float
    direction: str
    severity: str


def _severity_of(z_abs: float, config: SentinelConfig) -> str:
    if z_abs >= config.z_critical:
        return SEVERITIES[2]
    if z_abs >= config.z_elevated:
        return SEVERITIES[1]
    return SEVERITIES[0]


def detect_series(
    series: SignalSeries, config: SentinelConfig
) -> list[SentinelEvent]:
    """All events in one signal's series, in (day, scope) order.

    The trailing statistics are prefix cumulative sums: for row ``t``
    the baseline is the mean/std of rows ``0..t-1``.  The only Python
    loop runs over emitted events, which the conservative thresholds
    keep rare -- "silence is valid data".
    """
    matrix = np.asarray(series.values, dtype=np.float64)
    points = matrix.shape[0]
    if points <= config.min_history:
        return []
    csum = np.cumsum(matrix, axis=0)
    csq = np.cumsum(matrix * matrix, axis=0)
    prev_counts = np.arange(1, points).reshape(-1, 1).astype(np.float64)
    prev_mean = csum[:-1] / prev_counts
    prev_var = np.maximum(csq[:-1] / prev_counts - prev_mean * prev_mean, 0.0)
    sigma = np.maximum(np.sqrt(prev_var), config.sigma_floor)
    z = (matrix[1:] - prev_mean) / sigma
    eligible = np.zeros(z.shape, dtype=bool)
    eligible[config.min_history - 1:, :] = True
    hits = eligible & (np.abs(z) >= config.z_watch)
    events: list[SentinelEvent] = []
    for row, col in zip(*np.nonzero(hits)):
        point = row + 1
        z_value = float(z[row, col])
        events.append(
            SentinelEvent(
                day=int(series.days[point]),
                signal=series.signal,
                scope=series.scopes[col],
                value=float(matrix[point, col]),
                baseline=float(prev_mean[row, col]),
                sigma=float(sigma[row, col]),
                z=z_value,
                direction="up" if z_value > 0 else "down",
                severity=_severity_of(abs(z_value), config),
            )
        )
    events.sort(key=lambda event: (event.day, event.scope))
    return events
