"""The sentinel scan: series -> detector -> deterministic event feed.

:func:`run_sentinel` is the build function behind the ``"sentinel"``
session layer (``study.sentinel``): it extracts the five signal series
from the already-built traffic and observatory universes, runs the
deviation detector over each, and assembles a :class:`SentinelFeed`
sorted by (day, signal, scope).  Everything downstream of the universes
is pure arithmetic, so the same seed yields a byte-identical feed.

Telemetry: each scan observes ``sentinel_scan_seconds`` and bumps
``sentinel_events_total{signal,severity}`` per event.  Every
signal x severity sample is pre-seeded at zero so the metric family is
present on ``/metrics`` even when the scan stays silent or the layer
warm-loads from the store -- absence of events must be visible as
zeros, not as a missing metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sentinel.config import (
    DEFAULT_SENTINEL_CONFIG,
    SEVERITIES,
    SIGNALS,
    SentinelConfig,
)
from repro.sentinel.detect import SentinelEvent, detect_series
from repro.sentinel.series import build_signal_series
from repro.telemetry import registry as _metrics_registry, span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Study

_EVENTS_TOTAL = _metrics_registry().counter(
    "sentinel_events_total",
    "significant deviations emitted by the sentinel scan",
    ("signal", "severity"),
)
_SCAN_SECONDS = _metrics_registry().histogram(
    "sentinel_scan_seconds",
    "wall time of each sentinel scan",
)


def seed_zero_samples() -> None:
    """Materialize a zero sample per signal x severity combination."""
    for signal in SIGNALS:
        for severity in SEVERITIES:
            _EVENTS_TOTAL.inc(0.0, signal=signal, severity=severity)


seed_zero_samples()


@dataclass(frozen=True)
class SentinelFeed:
    """One study's full event feed plus scan census.

    Attributes:
        events: all emitted events, sorted by (day, signal, scope).
        signals: the signal names scanned, feed order.
        scopes: every scope that appeared in any series (countries plus
            the ``"*"`` global scope), sorted.
        points: total series points scanned across all signals -- the
            denominator that makes "silence is valid data" measurable.
        days: the study's day count.
        config: the threshold model the feed was produced under.
    """

    events: tuple[SentinelEvent, ...]
    signals: tuple[str, ...]
    scopes: tuple[str, ...]
    points: int
    days: int
    config: SentinelConfig

    def since(self, day: int) -> tuple[SentinelEvent, ...]:
        """Events on or after ``day``."""
        return tuple(event for event in self.events if event.day >= day)


def run_sentinel(
    study: "Study", config: SentinelConfig | None = None
) -> SentinelFeed:
    """Scan one study's adoption series for significant deviations."""
    model = DEFAULT_SENTINEL_CONFIG if config is None else config
    seed_zero_samples()
    with span("sentinel:scan") as scan_span:
        series_list = build_signal_series(study)
        events: list[SentinelEvent] = []
        points = 0
        scopes: set[str] = set()
        for series in series_list:
            points += int(series.values.size)
            scopes.update(series.scopes)
            events.extend(detect_series(series, model))
        events.sort(key=lambda event: (event.day, event.signal, event.scope))
    _SCAN_SECONDS.observe(scan_span.duration_s)
    for event in events:
        _EVENTS_TOTAL.inc(signal=event.signal, severity=event.severity)
    return SentinelFeed(
        events=tuple(events),
        signals=tuple(series.signal for series in series_list),
        scopes=tuple(sorted(scopes)),
        points=points,
        days=study.config.days,
        config=model,
    )
