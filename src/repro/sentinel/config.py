"""Sentinel thresholds: every magic number of the significance model.

This module is the **only** place deviation thresholds may live --
replint rule REP011 flags float literals in comparisons (and
module-level float constants) anywhere else under ``repro/sentinel/``.
The discipline is borrowed from world-observer's SIGNIFICANCE_MODEL:
long-term baselines, conservative thresholds tuned to stay quiet, at
most one event per signal per scope per day, and "silence is valid
data" -- an empty feed is a finding, not a failure.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Scope string for fleet-wide signals that have no per-country split.
GLOBAL_SCOPE = "*"

#: The five adoption signals the sentinel watches, in feed order.
SIGNALS: tuple[str, ...] = (
    "availability",
    "heavy_hitters",
    "readiness",
    "takeoff",
    "usage",
)

#: Event severities, mildest first; index order is comparison order.
SEVERITIES: tuple[str, ...] = ("watch", "elevated", "critical")


def severity_rank(severity: str) -> int:
    """Position of ``severity`` in :data:`SEVERITIES` (raises if unknown)."""
    return SEVERITIES.index(severity)


@dataclass(frozen=True)
class SentinelConfig:
    """The deviation model's knobs, frozen so cache keys stay honest.

    Attributes:
        min_history: points of trailing baseline required before a
            deviation may fire at all -- the first ``min_history``
            points of every series are observation-only.
        sigma_floor: lower bound on the baseline standard deviation, so
            a perfectly flat warm-up cannot make an epsilon wiggle look
            like a many-sigma event.
        z_watch: |z| at which a ``watch`` event fires.
        z_elevated: |z| promoting the event to ``elevated``.
        z_critical: |z| promoting the event to ``critical``.
    """

    min_history: int = 3
    sigma_floor: float = 0.01
    z_watch: float = 2.5
    z_elevated: float = 3.5
    z_critical: float = 5.0


#: The committed model.  Change deliberately: every threshold shift
#: reshapes the event feed, the goldens, and the whatif event ranking.
DEFAULT_SENTINEL_CONFIG = SentinelConfig()
