"""repro.sentinel: significance engine over the adoption time series.

Watches the five non-binary adoption signals (availability, takeoff,
readiness, usage, heavy-hitter mix) against trailing per-scope
baselines and emits a conservative, deterministic event feed -- at most
one :class:`~repro.sentinel.detect.SentinelEvent` per signal per scope
per day, and none at all when nothing deviates ("silence is valid
data").  Cached as the ``"sentinel"`` session layer (``study.sentinel``)
and surfaced via the ``sentinel_events`` artifact, ``/v1/events``, the
``python -m repro sentinel`` CLI, and the whatif event-ranking sweep.
"""

from repro.sentinel.config import (
    DEFAULT_SENTINEL_CONFIG,
    GLOBAL_SCOPE,
    SEVERITIES,
    SIGNALS,
    SentinelConfig,
    severity_rank,
)
from repro.sentinel.detect import SentinelEvent, detect_series
from repro.sentinel.scan import SentinelFeed, run_sentinel
from repro.sentinel.series import SignalSeries, build_signal_series

__all__ = [
    "DEFAULT_SENTINEL_CONFIG",
    "GLOBAL_SCOPE",
    "SEVERITIES",
    "SIGNALS",
    "SentinelConfig",
    "SentinelEvent",
    "SentinelFeed",
    "SignalSeries",
    "build_signal_series",
    "detect_series",
    "run_sentinel",
    "severity_rank",
]
