"""Signal extraction: the adoption time series the sentinel watches.

Each extractor reduces an existing universe (the observatory's
:class:`~repro.observatory.frame.ProbeFrame`, the residences'
:class:`~repro.flowmon.frame.FlowFrame`\\ s) to one
:class:`SignalSeries` -- a dense ``(points, scopes)`` float matrix with
a day index per row.  All reductions are vectorized ``bincount`` /
``group_sums`` group-bys (REP006 discipline: the only Python loops run
over residences and signals, never records).

The five signals mirror the paper's non-binary adoption facets:

* ``availability`` -- per-(round, country) share of probes that
  completed an IPv6 fetch.
* ``takeoff`` -- round-over-round change of that availability share.
* ``readiness`` -- per-round fleet-wide share of probes whose target
  published an AAAA record (DNS readiness, regardless of reachability).
* ``usage`` -- per-day external IPv6 byte fraction across residences.
* ``heavy_hitters`` -- per-day byte share of the single dominant origin
  AS among attributed external traffic (mix concentration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.flowmon.frame import day_sums, group_sums
from repro.flowmon.monitor import FlowScope
from repro.sentinel.config import GLOBAL_SCOPE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Study
    from repro.datasets.scenarios import ResidenceStudy
    from repro.observatory.rounds import ObservatoryStudy

#: Bits reserved for the AS number in ``(day << bits) | asn`` packed
#: group-by keys; matches the attribution packing in ``repro.core.client``.
_ASN_BITS = 32


@dataclass(frozen=True)
class SignalSeries:
    """One signal's dense time series.

    Attributes:
        signal: signal name (one of ``repro.sentinel.config.SIGNALS``).
        days: day index per row of ``values``, ascending.
        scopes: column naming -- country codes, or ``("*",)`` for
            fleet-wide signals.
        values: ``(len(days), len(scopes))`` float matrix.
    """

    signal: str
    days: tuple[int, ...]
    scopes: tuple[str, ...]
    values: np.ndarray


def _availability_matrix(obs: "ObservatoryStudy") -> np.ndarray:
    """Per-(round, country) available-probe share, ``(rounds, countries)``."""
    frame = obs.frame
    rounds = obs.num_rounds
    n = len(obs.countries)
    key = frame.round.astype(np.int64) * n + frame.country
    minlength = rounds * n
    probes = np.bincount(key, minlength=minlength).reshape(rounds, n)
    available = np.bincount(key[frame.available], minlength=minlength).reshape(
        rounds, n
    )
    return np.where(probes > 0, available / np.maximum(probes, 1), 0.0)


def availability_signal(obs: "ObservatoryStudy") -> SignalSeries:
    """Per-country availability share, one row per probe round."""
    return SignalSeries(
        signal="availability",
        days=tuple(obs.config.round_days),
        scopes=tuple(obs.countries),
        values=_availability_matrix(obs),
    )


def takeoff_signal(obs: "ObservatoryStudy") -> SignalSeries:
    """Round-over-round availability delta per country."""
    matrix = _availability_matrix(obs)
    return SignalSeries(
        signal="takeoff",
        days=tuple(obs.config.round_days[1:]),
        scopes=tuple(obs.countries),
        values=np.diff(matrix, axis=0),
    )


def readiness_signal(obs: "ObservatoryStudy") -> SignalSeries:
    """Fleet-wide AAAA-published share, one row per probe round."""
    frame = obs.frame
    rounds = obs.num_rounds
    key = frame.round.astype(np.int64)
    probes = np.bincount(key, minlength=rounds)
    aaaa = np.bincount(key[frame.aaaa], minlength=rounds)
    share = np.where(probes > 0, aaaa / np.maximum(probes, 1), 0.0)
    return SignalSeries(
        signal="readiness",
        days=tuple(obs.config.round_days),
        scopes=(GLOBAL_SCOPE,),
        values=share.reshape(-1, 1),
    )


def _external_frames(traffic: "ResidenceStudy") -> tuple[list, int]:
    """Per-residence external frames plus the day horizon they cover.

    The horizon is data-driven (a flow may land on the boundary day),
    floored at the study's nominal day count.
    """
    frames = [
        dataset.frame().select(scope=FlowScope.EXTERNAL)
        for dataset in traffic.datasets.values()
    ]
    horizon = traffic.num_days
    for frame in frames:
        if frame.day.size:
            horizon = max(horizon, int(frame.day.max()) + 1)
    return frames, horizon


def usage_signal(traffic: "ResidenceStudy") -> SignalSeries:
    """Per-day external IPv6 byte fraction, summed across residences."""
    frames, horizon = _external_frames(traffic)
    total = np.zeros(horizon, dtype=np.int64)
    v6 = np.zeros(horizon, dtype=np.int64)
    for frame in frames:
        volume = frame.total_bytes
        sums = day_sums(
            frame.day, [volume, volume * frame.is_v6], minlength=horizon
        )
        total += sums[0]
        v6 += sums[1]
    present = total > 0
    days = np.nonzero(present)[0]
    values = (v6[present] / np.maximum(total[present], 1)).reshape(-1, 1)
    return SignalSeries(
        signal="usage",
        days=tuple(int(d) for d in days),
        scopes=(GLOBAL_SCOPE,),
        values=values,
    )


def heavy_hitter_signal(traffic: "ResidenceStudy") -> SignalSeries:
    """Per-day dominant-AS byte share of attributed external traffic."""
    frames, horizon = _external_frames(traffic)
    packed_parts: list[np.ndarray] = []
    volume_parts: list[np.ndarray] = []
    for frame in frames:
        asn = frame.flow_asn
        attributed = asn >= 0
        day = frame.day[attributed].astype(np.int64)
        packed_parts.append((day << _ASN_BITS) | asn[attributed])
        volume_parts.append(frame.total_bytes[attributed])
    packed = (
        np.concatenate(packed_parts)
        if packed_parts
        else np.zeros(0, dtype=np.int64)
    )
    volume = (
        np.concatenate(volume_parts)
        if volume_parts
        else np.zeros(0, dtype=np.int64)
    )
    keys, _, (as_bytes,) = group_sums(packed, [volume])
    day_of_group = (keys >> _ASN_BITS).astype(np.int64)
    totals = np.zeros(horizon, dtype=np.int64)
    dominant = np.zeros(horizon, dtype=np.int64)
    if day_of_group.size:
        np.add.at(totals, day_of_group, as_bytes)
        np.maximum.at(dominant, day_of_group, as_bytes)
    present = totals > 0
    days = np.nonzero(present)[0]
    values = (dominant[present] / np.maximum(totals[present], 1)).reshape(-1, 1)
    return SignalSeries(
        signal="heavy_hitters",
        days=tuple(int(d) for d in days),
        scopes=(GLOBAL_SCOPE,),
        values=values,
    )


def build_signal_series(study: "Study") -> tuple[SignalSeries, ...]:
    """All five signals for one study, in :data:`SIGNALS` feed order."""
    obs = study.observatory
    traffic = study.traffic
    return (
        availability_signal(obs),
        heavy_hitter_signal(traffic),
        readiness_signal(obs),
        takeoff_signal(obs),
        usage_signal(traffic),
    )
