"""The simulated dual-stack browser.

One :meth:`SimulatedBrowser.fetch` does what a Firefox under OpenWPM does
per request: query A and AAAA in parallel, run Happy Eyeballs over the
answers, and attempt the handshake.  DNS answers are cached per census run
(browsers and their resolvers cache aggressively; the paper's census also
sees each FQDN's DNS state once per crawl).

The paper's methodology note (section 4.2) applies here: classification
uses *availability* (does AAAA exist), not which family won the race, so
the occasional IPv4 win does not misclassify a site -- but the winner is
recorded, because Figure 5's "Browser Used IPv4" row reports exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.happyeyeballs.algorithm import (
    Connectivity,
    HappyEyeballs,
    HappyEyeballsConfig,
)
from repro.net.addr import Family
from repro.net.dns import DnsResponse, Resolver
from repro.util.rng import RngStream


@dataclass(frozen=True)
class BrowserConfig:
    """Browser-level knobs.

    ``slow_aaaa_probability`` is the chance an AAAA answer misses the
    RFC 8305 resolution-delay window, handing the race to IPv4; it is the
    mechanism behind the paper's ~1-in-10 "Browser Used IPv4" page loads.
    """

    slow_aaaa_probability: float = 0.008
    slow_aaaa_latency: float = 0.200
    dns_latency: float = 0.010
    happy_eyeballs: HappyEyeballsConfig = HappyEyeballsConfig()

    def __post_init__(self) -> None:
        if not 0.0 <= self.slow_aaaa_probability <= 1.0:
            raise ValueError("slow_aaaa_probability must be a probability")
        if self.slow_aaaa_latency < 0 or self.dns_latency < 0:
            raise ValueError("latencies must be non-negative")


@dataclass(frozen=True)
class FetchOutcome:
    """The observable outcome of fetching one URL."""

    fqdn: str
    a_response: DnsResponse
    aaaa_response: DnsResponse
    family_used: Family | None
    succeeded: bool

    @property
    def dns_failed(self) -> bool:
        """Neither family yielded a usable answer."""
        return not self.a_response.addresses and not self.aaaa_response.addresses


class SimulatedBrowser:
    """A dual-stack browser over the simulated resolver and network."""

    def __init__(
        self,
        resolver: Resolver,
        connectivity: Connectivity,
        rng: RngStream,
        config: BrowserConfig | None = None,
    ) -> None:
        self._resolver = resolver
        self._connectivity = connectivity
        self._rng = rng
        self.config = config or BrowserConfig()
        self._he = HappyEyeballs(self.config.happy_eyeballs)
        self._dns_cache: dict[str, tuple[DnsResponse, DnsResponse]] = {}
        self.fetches = 0

    def resolve(self, fqdn: str) -> tuple[DnsResponse, DnsResponse]:
        """A and AAAA responses for ``fqdn``, cached per census."""
        cached = self._dns_cache.get(fqdn)
        if cached is None:
            cached = self._resolver.resolve_addresses(fqdn)
            self._dns_cache[fqdn] = cached
        return cached

    def fetch(self, fqdn: str) -> FetchOutcome:
        """Resolve and fetch one URL's host."""
        self.fetches += 1
        a_response, aaaa_response = self.resolve(fqdn)
        v4 = list(a_response.addresses)
        v6 = list(aaaa_response.addresses)
        if not v4 and not v6:
            return FetchOutcome(
                fqdn=fqdn,
                a_response=a_response,
                aaaa_response=aaaa_response,
                family_used=None,
                succeeded=False,
            )
        aaaa_time = self.config.dns_latency
        if v6 and self._rng.bernoulli(self.config.slow_aaaa_probability):
            aaaa_time = self.config.slow_aaaa_latency
        result = self._he.connect(
            v4,
            v6,
            self._connectivity,
            v4_resolution_time=self.config.dns_latency,
            v6_resolution_time=aaaa_time,
        )
        return FetchOutcome(
            fqdn=fqdn,
            a_response=a_response,
            aaaa_response=aaaa_response,
            family_used=result.used_family,
            succeeded=result.connected,
        )
