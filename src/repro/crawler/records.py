"""Crawl record types: what the census writes down per request and per site.

The downstream analyses only see these records -- classification
(section 4.2), dependency analysis (section 4.3), and the cloud study
(section 5) all consume :class:`RequestRecord` streams, mirroring how the
paper's pipeline works from OpenWPM's request logs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.net.addr import Family, IpAddress
from repro.net.dns import DnsStatus
from repro.web.resources import ResourceType


class SiteFailure(enum.Enum):
    """Why a site failed to load entirely (Figure 5's failure rows)."""

    NXDOMAIN = "nxdomain"
    OTHER = "other"  # SERVFAIL, timeouts, TLS/connection failures
    UNKNOWN_PRIMARY = "unknown-primary"


@dataclass(frozen=True)
class RequestRecord:
    """One resource request made while crawling a site.

    Attributes:
        site: the crawled site's eTLD+1 (census unit).
        fqdn: the requested host (post-redirect for pages).
        resource_type: what the browser asked for; None for page HTML.
        is_main_page: True for the site's landing page request.
        a_status / aaaa_status: DNS outcome per family.
        v4_addresses / v6_addresses: resolver answers.
        cname_chain: the full CNAME chain of the A query (service
            fingerprinting input).
        family_used: which family carried the bytes (Happy Eyeballs
            winner); None when the fetch failed.
        succeeded: resource retrieved completely.
        depth: dependency depth (0 = referenced directly by a page).
    """

    site: str
    fqdn: str
    resource_type: ResourceType | None
    is_main_page: bool
    a_status: DnsStatus
    aaaa_status: DnsStatus
    v4_addresses: tuple[IpAddress, ...]
    v6_addresses: tuple[IpAddress, ...]
    cname_chain: tuple[str, ...]
    family_used: Family | None
    succeeded: bool
    depth: int = 0

    @property
    def has_a(self) -> bool:
        return bool(self.v4_addresses)

    @property
    def has_aaaa(self) -> bool:
        return bool(self.v6_addresses)

    @property
    def ipv6_capable(self) -> bool:
        """The resource could be fetched over IPv6 (AAAA exists)."""
        return self.has_aaaa


@dataclass
class SiteCrawlResult:
    """Everything recorded while crawling one top-list entry."""

    site: str
    rank: int
    failure: SiteFailure | None = None
    final_host: str | None = None
    pages_visited: list[str] = field(default_factory=list)
    requests: list[RequestRecord] = field(default_factory=list)

    @property
    def connected(self) -> bool:
        return self.failure is None

    def resource_requests(self) -> list[RequestRecord]:
        """Sub-resource requests (everything but page HTML)."""
        return [r for r in self.requests if r.resource_type is not None]

    def main_page_request(self) -> RequestRecord | None:
        for record in self.requests:
            if record.is_main_page:
                return record
        return None


@dataclass
class CrawlDataset:
    """A full census run: one result per top-list entry, in rank order."""

    results: list[SiteCrawlResult]
    list_id: str = "SYNTH"

    def connected_results(self) -> list[SiteCrawlResult]:
        return [r for r in self.results if r.connected]

    def failures(self, kind: SiteFailure) -> list[SiteCrawlResult]:
        return [r for r in self.results if r.failure is kind]

    def all_requests(self) -> list[RequestRecord]:
        return [record for result in self.results for record in result.requests]

    def unique_fqdns(self) -> set[str]:
        return {record.fqdn for record in self.all_requests()}

    def __len__(self) -> int:
        return len(self.results)
