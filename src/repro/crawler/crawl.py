"""The census driver: crawl every top-list site, record every request.

Reproduces the paper's section 4.1 methodology step by step:

1. load the entry's main page, following HTTP redirects (a failed main
   page classifies the whole site as a loading failure);
2. fetch every embedded resource and resolve nested dependencies to
   arbitrary depth (third parties pulling in further third parties);
3. pick up to five random links constrained to the same eTLD+1 and crawl
   those pages too;
4. record DNS outcomes, addresses, CNAME chains, and the Happy Eyeballs
   winner for every request.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crawler.browser import BrowserConfig, SimulatedBrowser
from repro.crawler.records import (
    CrawlDataset,
    RequestRecord,
    SiteCrawlResult,
    SiteFailure,
)
from repro.net.dns import DnsStatus
from repro.util.rng import RngStream
from repro.web.ecosystem import WebEcosystem
from repro.web.sites import Website

#: The paper clicks five random same-site links per site.
LINK_CLICKS = 5

#: Cap on nested dependency resolution, far above anything the synthetic
#: web produces; guards against dependency cycles.
MAX_DEPTH = 16


@dataclass(frozen=True)
class CensusConfig:
    """Census-run parameters."""

    link_clicks: int = LINK_CLICKS
    browser: BrowserConfig = BrowserConfig()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.link_clicks < 0:
            raise ValueError("link_clicks must be non-negative")


class WebCensus:
    """Crawls a :class:`WebEcosystem` and produces a :class:`CrawlDataset`."""

    def __init__(self, ecosystem: WebEcosystem, config: CensusConfig | None = None) -> None:
        self.ecosystem = ecosystem
        self.config = config or CensusConfig()
        rng = RngStream(self.config.seed, "census")
        self._rng = rng
        self.browser = SimulatedBrowser(
            resolver=ecosystem.resolver,
            connectivity=ecosystem.connectivity,
            rng=rng.substream("browser"),
            config=self.config.browser,
        )

    def run(self) -> CrawlDataset:
        """Crawl every top-list entry in rank order."""
        results = [
            self.crawl_site(entry.etld1, entry.rank)
            for entry in self.ecosystem.toplist
        ]
        return CrawlDataset(results=results, list_id=self.ecosystem.toplist.list_id)

    # -- per-site crawl ----------------------------------------------------

    def crawl_site(self, etld1: str, rank: int) -> SiteCrawlResult:
        result = SiteCrawlResult(site=etld1, rank=rank)
        plan = self.ecosystem.plans.get(etld1)
        website = plan.website if plan is not None else None

        final_host, failure, main_record = self._load_main_page(etld1, website, result)
        if failure is not None:
            result.failure = failure
            return result
        assert website is not None and final_host is not None and main_record is not None
        result.final_host = final_host
        result.requests.append(main_record)

        pages = [website.main_page]
        result.pages_visited.append("/")
        links = list(website.main_page.internal_links)
        # Five random same-site clicks (fewer if the page has fewer links).
        picked = self._rng.sample(links, self.config.link_clicks)
        for path in picked:
            page = website.page(path)
            if page is None:
                continue
            pages.append(page)
            result.pages_visited.append(path)

        seen_fqdns: set[str] = {final_host}
        for page in pages:
            for resource in page.resources:
                self._fetch_resource(
                    result, resource.fqdn, resource.resource_type, depth=0,
                    seen=seen_fqdns,
                )
        return result

    def _load_main_page(
        self, etld1: str, website: Website | None, result: SiteCrawlResult
    ):
        """Follow the redirect chain to the final main page.

        Returns (final_host, failure, main_record); failure is None on
        success.
        """
        psl = self.ecosystem.psl
        host = etld1
        redirects = website.redirects if website is not None else {}
        for _ in range(8):  # redirect-chain guard
            outcome = self.browser.fetch(host)
            if outcome.a_response.status is DnsStatus.NXDOMAIN and (
                outcome.aaaa_response.status is DnsStatus.NXDOMAIN
            ):
                if psl.same_site(host, etld1) or host == etld1:
                    return None, SiteFailure.NXDOMAIN, None
                # Redirected off-site into nothing: the paper's tiny
                # "Unknown Primary Domain" bucket.
                return None, SiteFailure.UNKNOWN_PRIMARY, None
            if outcome.dns_failed or not outcome.succeeded:
                return None, SiteFailure.OTHER, None
            target = redirects.get(host)
            if target is None:
                record = self._record_for(
                    result.site, host, None, outcome, is_main_page=True, depth=0
                )
                return host, None, record
            host = target
        return None, SiteFailure.OTHER, None  # redirect loop

    def _fetch_resource(
        self,
        result: SiteCrawlResult,
        fqdn: str,
        resource_type,
        depth: int,
        seen: set[str],
    ) -> None:
        """Fetch one resource and recurse into its nested dependencies."""
        if depth > MAX_DEPTH or fqdn in seen:
            return
        seen.add(fqdn)
        outcome = self.browser.fetch(fqdn)
        record = self._record_for(
            result.site, fqdn, resource_type, outcome, is_main_page=False, depth=depth
        )
        result.requests.append(record)
        # Arbitrary-depth resolution: third-party scripts can pull in
        # further third parties (ad syndication chains).
        pool = self.ecosystem.pool
        if pool is None or not record.succeeded:
            return
        etld1 = self.ecosystem.psl.etld_plus_one(fqdn)
        if etld1 is None or etld1 not in pool:
            return
        service = pool.get(etld1)
        for nested_domain in service.nested_dependencies:
            nested_tenant = self.ecosystem.tenants.get(nested_domain)
            if nested_tenant is None:
                continue
            placement = nested_tenant.placements[0]
            nested_service = pool.get(nested_domain)
            self._fetch_resource(
                result,
                placement.fqdn,
                nested_service.draw_resource_type(self._rng),
                depth=depth + 1,
                seen=seen,
            )

    def _record_for(
        self,
        site: str,
        fqdn: str,
        resource_type,
        outcome,
        is_main_page: bool,
        depth: int,
    ) -> RequestRecord:
        return RequestRecord(
            site=site,
            fqdn=fqdn,
            resource_type=resource_type,
            is_main_page=is_main_page,
            a_status=outcome.a_response.status,
            aaaa_status=outcome.aaaa_response.status,
            v4_addresses=outcome.a_response.addresses,
            v6_addresses=outcome.aaaa_response.addresses,
            cname_chain=outcome.a_response.chain,
            family_used=outcome.family_used,
            succeeded=outcome.succeeded,
            depth=depth,
        )
