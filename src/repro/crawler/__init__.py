"""The OpenWPM-style web census crawler (paper section 4.1).

For each top-list site the crawler loads the main page with a simulated
dual-stack browser, resolves every embedded resource to arbitrary depth
(scripts pulling in further third parties), follows redirects, clicks up
to five random same-eTLD+1 links, and records per-request DNS outcomes,
the addresses involved, and which family Happy Eyeballs actually used.
"""

from repro.crawler.browser import BrowserConfig, FetchOutcome, SimulatedBrowser
from repro.crawler.crawl import CensusConfig, WebCensus
from repro.crawler.records import CrawlDataset, RequestRecord, SiteCrawlResult, SiteFailure

__all__ = [
    "BrowserConfig",
    "FetchOutcome",
    "SimulatedBrowser",
    "CensusConfig",
    "WebCensus",
    "CrawlDataset",
    "RequestRecord",
    "SiteCrawlResult",
    "SiteFailure",
]
