"""Residential traffic substrate.

Synthesizes the nine-month, five-residence traffic study of the paper's
section 3.  The generative model encodes the causal structure the paper
identifies, so the analyses recover the paper's findings from first
principles rather than by construction:

* services differ in IPv6 support (:mod:`repro.traffic.apps`), so the mix
  of services a household uses drives its IPv6 fraction;
* humans are home evenings and weekends (:mod:`repro.traffic.activity`),
  and human-driven services are the IPv6-capable ones, so the IPv6
  fraction is diurnal while background (machine) traffic leans IPv4;
* devices vary in IPv6 capability (:mod:`repro.traffic.devices`), so a
  residence with broken CPE sees low IPv6 everywhere (Residence C);
* Happy Eyeballs picks the wire protocol per connection, inflating IPv4
  flow counts relative to bytes.
"""

from repro.traffic.activity import ActivityModel, OccupancyPattern, VacationWindow
from repro.traffic.apps import (
    ApplicationKind,
    ServiceProfile,
    TrafficShape,
    build_service_catalog,
)
from repro.traffic.devices import Device, DeviceKind
from repro.traffic.generate import ResidenceDataset, TrafficGenerator
from repro.traffic.residences import ResidenceProfile, build_paper_residences
from repro.traffic.universe import ServerEndpoint, ServiceUniverse

__all__ = [
    "ActivityModel",
    "OccupancyPattern",
    "VacationWindow",
    "ApplicationKind",
    "ServiceProfile",
    "TrafficShape",
    "build_service_catalog",
    "Device",
    "DeviceKind",
    "ResidenceDataset",
    "TrafficGenerator",
    "ResidenceProfile",
    "build_paper_residences",
    "ServerEndpoint",
    "ServiceUniverse",
]
