"""Online service profiles: who serves traffic, and over which protocol.

Each :class:`ServiceProfile` describes one observable service: the AS that
originates its traffic, the reverse-DNS domain its servers carry, its
functional category (the grouping of the paper's Figure 4), how much of its
server fleet is dual-stack, and the shape of the traffic it exchanges with
clients.

The shipped catalog mirrors the 35 ASes of the paper's Figures 4 and 17:
ISPs with consistently low IPv6 byte fractions, Web/Social providers above
90% (except ByteDance), clouds spread across the whole range, and the
paper's named IPv4-only laggards (Zoom, Twitch, GitHub, WordPress, USC).
IPv6-support levels are calibrated to the medians visible in Figure 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.net.asn import AsCategory
from repro.util.rng import RngStream


class ApplicationKind(enum.Enum):
    """What kind of traffic a session with the service produces."""

    WEB = "web"  # page loads: many small flows
    SOCIAL = "social"  # feeds: many small-to-medium flows
    STREAMING = "streaming"  # video: few flows, heavy tails
    DOWNLOAD = "download"  # game/OS downloads: very heavy single flows
    CONFERENCING = "conferencing"  # long interactive sessions, steady rate
    GAMING = "gaming"  # live game traffic: long low-rate flows
    BACKGROUND = "background"  # machine-generated: updates, telemetry
    STORAGE = "storage"  # NAS-style bulk transfers (internal traffic)


@dataclass(frozen=True)
class TrafficShape:
    """Flow-level shape of one session with a service.

    Attributes:
        flows_per_session: mean number of flows a session opens.
        median_flow_bytes: median size of an ordinary flow.
        sigma: lognormal spread for ordinary flows.
        heavy_flow_bytes: minimum size of a heavy (Pareto) flow, or 0 if
            the service never produces elephants.
        heavy_flow_prob: probability that a given flow is heavy.
        udp_fraction: share of flows carried over UDP (QUIC, RTP).
    """

    flows_per_session: float
    median_flow_bytes: int
    sigma: float = 1.2
    heavy_flow_bytes: int = 0
    heavy_flow_prob: float = 0.0
    udp_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.flows_per_session <= 0:
            raise ValueError("flows_per_session must be positive")
        if self.median_flow_bytes <= 0:
            raise ValueError("median_flow_bytes must be positive")
        if not 0.0 <= self.heavy_flow_prob <= 1.0:
            raise ValueError("heavy_flow_prob must be a probability")
        if not 0.0 <= self.udp_fraction <= 1.0:
            raise ValueError("udp_fraction must be a probability")

    def draw_flow_bytes(self, rng: RngStream) -> int:
        """Sample one flow's byte volume."""
        if self.heavy_flow_bytes and rng.bernoulli(self.heavy_flow_prob):
            return rng.pareto_bytes(self.heavy_flow_bytes, alpha=1.3)
        return rng.lognormal_bytes(self.median_flow_bytes, self.sigma)


#: Canonical shapes per application kind.
SHAPES: dict[ApplicationKind, TrafficShape] = {
    ApplicationKind.WEB: TrafficShape(
        flows_per_session=14, median_flow_bytes=60_000, sigma=1.4, udp_fraction=0.3
    ),
    ApplicationKind.SOCIAL: TrafficShape(
        flows_per_session=22, median_flow_bytes=120_000, sigma=1.5,
        heavy_flow_bytes=3_000_000, heavy_flow_prob=0.05, udp_fraction=0.4,
    ),
    ApplicationKind.STREAMING: TrafficShape(
        flows_per_session=4, median_flow_bytes=1_500_000, sigma=1.0,
        heavy_flow_bytes=60_000_000, heavy_flow_prob=0.5, udp_fraction=0.3,
    ),
    ApplicationKind.DOWNLOAD: TrafficShape(
        flows_per_session=2, median_flow_bytes=5_000_000, sigma=1.2,
        heavy_flow_bytes=400_000_000, heavy_flow_prob=0.45, udp_fraction=0.0,
    ),
    ApplicationKind.CONFERENCING: TrafficShape(
        flows_per_session=3, median_flow_bytes=80_000_000, sigma=0.6, udp_fraction=0.8
    ),
    ApplicationKind.GAMING: TrafficShape(
        flows_per_session=5, median_flow_bytes=15_000_000, sigma=0.8, udp_fraction=0.7
    ),
    ApplicationKind.BACKGROUND: TrafficShape(
        flows_per_session=3, median_flow_bytes=30_000, sigma=1.3, udp_fraction=0.2
    ),
    ApplicationKind.STORAGE: TrafficShape(
        flows_per_session=4, median_flow_bytes=2_000_000, sigma=1.4,
        heavy_flow_bytes=50_000_000, heavy_flow_prob=0.2, udp_fraction=0.0,
    ),
}


@dataclass(frozen=True)
class ServiceProfile:
    """One observable online service.

    Attributes:
        name: human-readable service name.
        asn: origin AS of the service's servers.
        as_name: whois-style AS name (as in Figure 4's labels).
        domain: the eTLD+1 its reverse DNS resolves to (Figure 17's unit).
        category: functional grouping (Figure 4's panels).
        kind: traffic shape selector.
        ipv6_support: fraction of the service's servers that are
            dual-stack; 0 models the paper's IPv4-only laggards.
        human_driven: True for services used when people are home and
            active; False for machine-generated background traffic.
        num_servers: size of the addressable server fleet.
    """

    name: str
    asn: int
    as_name: str
    domain: str
    category: AsCategory
    kind: ApplicationKind
    ipv6_support: float
    human_driven: bool = True
    num_servers: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.ipv6_support <= 1.0:
            raise ValueError("ipv6_support must be in [0, 1]")
        if self.num_servers < 1:
            raise ValueError("a service needs at least one server")
        if self.asn <= 0:
            raise ValueError("asn must be positive")

    @property
    def shape(self) -> TrafficShape:
        return SHAPES[self.kind]


def build_service_catalog() -> list[ServiceProfile]:
    """The 40-service catalog mirroring the paper's observed ASes.

    IPv6-support values are calibrated to the per-AS medians of Figure 4
    and the domain list of Figure 17.
    """
    hosting = AsCategory.HOSTING_CLOUD
    software = AsCategory.SOFTWARE
    isp = AsCategory.ISP
    web = AsCategory.WEB_SOCIAL
    other = AsCategory.OTHER
    k = ApplicationKind
    return [
        # --- Hosting and cloud providers (Figure 4, top panel) ---
        ServiceProfile("Fastly CDN", 54113, "FASTLY", "fastly.net", hosting, k.WEB, 0.95),
        ServiceProfile("Cloudflare", 13335, "CLOUDFLARENET", "cloudflare.com", hosting, k.WEB, 0.93),
        ServiceProfile("Akamai CDN", 20940, "AKAMAI-ASN1", "akamaitechnologies.com", hosting, k.WEB, 0.90),
        ServiceProfile("CDN77", 60068, "CDN77", "cdn77.com", hosting, k.WEB, 0.85),
        ServiceProfile("Qwilt", 20253, "QWILTED-PROD-01", "qwilt.com", hosting, k.STREAMING, 0.80),
        ServiceProfile("Microsoft Cloud", 8075, "MICROSOFT-CORP", "microsoft.com", hosting, k.WEB, 0.70),
        ServiceProfile("Cloudflare Spectrum", 209242, "CLOUDFLARESPECTRUM", "cloudflare.com", hosting, k.GAMING, 0.65),
        ServiceProfile("Amazon EC2", 16509, "AMAZON-02", "amazonaws.com", hosting, k.WEB, 0.50),
        ServiceProfile("Zenlayer", 21859, "ZEN-ECN", "zenlayer.net", hosting, k.WEB, 0.45),
        ServiceProfile("Google Cloud", 396982, "GOOGLE-CLOUD-PLATFORM", "googleusercontent.com", hosting, k.WEB, 0.40),
        ServiceProfile("Amazon AES", 14618, "AMAZON-AES", "amazonaws.com", hosting, k.WEB, 0.35),
        ServiceProfile("Ace AP", 139341, "ACE-AS-AP", "ace-ap.net", hosting, k.WEB, 0.30),
        ServiceProfile("OVH", 16276, "OVH", "ovh.net", hosting, k.WEB, 0.05),
        ServiceProfile("DigitalOcean", 14061, "DIGITALOCEAN-ASN", "digitalocean.com", hosting, k.WEB, 0.05),
        ServiceProfile("LeaseWeb", 60781, "LEASEWEB-NL-AMS-01", "leaseweb.net", hosting, k.WEB, 0.03),
        ServiceProfile("Akamai Legacy", 16625, "AKAMAI-AS", "akamaitechnologies.com", hosting, k.WEB, 0.02),
        ServiceProfile("i3D.net", 49544, "i3Dnet", "i3d.net", hosting, k.GAMING, 0.0),
        # --- Software development (Figure 4, second panel) ---
        ServiceProfile("Microsoft Updates", 8068, "MICROSOFT-CORP-MSN", "microsoft.com", software, k.BACKGROUND, 0.60, human_driven=False),
        ServiceProfile("Apple Services", 6185, "APPLE-AUSTIN", "aaplimg.com", software, k.DOWNLOAD, 0.50),
        ServiceProfile("Apple Engineering", 714, "APPLE-ENGINEERING", "apple.com", software, k.BACKGROUND, 0.40, human_driven=False),
        ServiceProfile("Zoom", 30103, "ZOOM-VIDEO-COMM-AS", "zoom.us", software, k.CONFERENCING, 0.0),
        # --- ISPs (Figure 4, third panel) ---
        ServiceProfile("China Unicom", 4837, "CHINA169-Backbone", "chinaunicom.cn", isp, k.WEB, 0.20),
        ServiceProfile("China Telecom", 4134, "CHINANET-BACKBONE", "chinatelecom.cn", isp, k.WEB, 0.15),
        ServiceProfile("AT&T", 7018, "ATT-INTERNET4", "sbcglobal.net", isp, k.WEB, 0.10),
        ServiceProfile("Comcast", 7922, "COMCAST-7922", "comcast.net", isp, k.WEB, 0.08),
        ServiceProfile("Frontier", 5650, "FRONTIER-FRTR", "frontiernet.net", isp, k.WEB, 0.0),
        # --- Web and social media (Figure 4, fourth panel) ---
        ServiceProfile("Wikipedia", 14907, "WIKIMEDIA", "wikimedia.org", web, k.WEB, 0.97),
        ServiceProfile("Facebook", 32934, "FACEBOOK", "fbcdn.net", web, k.SOCIAL, 0.95),
        ServiceProfile("Google", 15169, "GOOGLE", "1e100.net", web, k.SOCIAL, 0.95),
        ServiceProfile("TikTok", 396986, "BYTEDANCE", "bytefcdn.com", web, k.STREAMING, 0.05),
        # --- Other (Figure 4, bottom panel) + Figure 17 laggards ---
        ServiceProfile("Netflix Streaming", 2906, "AS-SSI", "nflxvideo.net", other, k.STREAMING, 0.90),
        ServiceProfile("Valve/Steam", 32590, "VALVE-CORPORATION", "steamcontent.com", other, k.DOWNLOAD, 0.85),
        ServiceProfile("Netflix API", 40027, "NETFLIX-ASN", "netflix.com", other, k.WEB, 0.60),
        ServiceProfile("Internet Archive", 7941, "INTERNET-ARCHIVE", "archive.org", other, k.WEB, 0.10),
        ServiceProfile("USC Campus", 47, "USC-AS", "usc.edu", other, k.WEB, 0.0),
        ServiceProfile("Twitch", 46489, "TWITCH", "justin.tv", other, k.STREAMING, 0.0),
        ServiceProfile("GitHub", 36459, "GITHUB", "github.com", other, k.WEB, 0.0),
        ServiceProfile("WordPress", 2635, "AUTOMATTIC", "wp.com", other, k.WEB, 0.0),
        ServiceProfile("Windows Telemetry", 3598, "MICROSOFT-CORP-AS", "msedge.net", software, k.BACKGROUND, 0.15, human_driven=False),
        ServiceProfile("IoT Telemetry", 64512, "IOT-TELEMETRY", "iot-vendor.com", other, k.BACKGROUND, 0.0, human_driven=False),
    ]


def catalog_by_name(catalog: list[ServiceProfile] | None = None) -> dict[str, ServiceProfile]:
    """Index a catalog by service name (the key residences reference)."""
    services = catalog if catalog is not None else build_service_catalog()
    return {service.name: service for service in services}
