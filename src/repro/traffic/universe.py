"""The service-side universe the residences talk to.

Builds, from a service catalog, everything the client-side analyses need to
attribute traffic the way the paper does:

* an :class:`~repro.net.asn.AsRegistry` with every service's AS,
* a BGP :class:`~repro.net.bgp.RoutingTable` announcing each service's
  prefixes under its origin AS (the paper's address-to-AS mapping), and
* :class:`~repro.net.rdns.ReverseDns` PTR records under each service's
  domain (the paper's address-to-domain mapping).

Each service gets a fleet of servers; a deterministic share of the fleet is
dual-stack according to the service's ``ipv6_support``, so "how much IPv6
can this service do" is a property of the universe, observable by clients
through DNS-free server selection (clients pick a server, then Happy
Eyeballs picks the family among that server's addresses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addr import AddressPool, IpAddress, Prefix
from repro.net.asn import AsRegistry
from repro.net.bgp import RoutingTable
from repro.net.rdns import ReverseDns
from repro.traffic.apps import ServiceProfile


@dataclass(frozen=True)
class ServerEndpoint:
    """One server of a service: an IPv4 address, optionally an IPv6 one."""

    service: ServiceProfile
    v4: IpAddress
    v6: IpAddress | None

    @property
    def dual_stack(self) -> bool:
        return self.v6 is not None


class ServiceUniverse:
    """Allocates addresses and attribution data for a service catalog."""

    #: Carve service prefixes out of these supernets.
    V4_SUPERNET = Prefix.parse("100.64.0.0/10")
    V6_SUPERNET = Prefix.parse("2400::/12")

    def __init__(self, catalog: list[ServiceProfile]) -> None:
        if not catalog:
            raise ValueError("catalog must not be empty")
        self.catalog = list(catalog)
        self.registry = AsRegistry()
        self.routing = RoutingTable()
        self.rdns = ReverseDns()
        self._servers: dict[str, list[ServerEndpoint]] = {}
        self._build()

    def _build(self) -> None:
        for index, service in enumerate(self.catalog):
            if self.registry.lookup(service.asn) is None:
                self.registry.register(
                    service.asn,
                    service.as_name,
                    org_id=service.as_name.lower(),
                    category=service.category,
                )
            v4_prefix = self.V4_SUPERNET.subnet(24, index)
            v6_prefix = self.V6_SUPERNET.subnet(48, index)
            self.routing.announce(v4_prefix, service.asn)
            self.routing.announce(v6_prefix, service.asn)
            v4_pool = AddressPool(v4_prefix)
            v6_pool = AddressPool(v6_prefix.subnet(120, 0), skip_network_address=True)
            servers: list[ServerEndpoint] = []
            # Deterministic dual-stack share: the first round(support * n)
            # servers get AAAA, so the fleet's support ratio is exact.
            dual_stack_count = round(service.ipv6_support * service.num_servers)
            for server_index in range(service.num_servers):
                v4 = v4_pool.allocate()
                v6 = v6_pool.allocate() if server_index < dual_stack_count else None
                host = f"server-{server_index}.{service.domain}"
                self.rdns.register(v4, host)
                if v6 is not None:
                    self.rdns.register(v6, host)
                servers.append(ServerEndpoint(service=service, v4=v4, v6=v6))
            self._servers[service.name] = servers

    def servers_of(self, service: ServiceProfile) -> list[ServerEndpoint]:
        return self._servers[service.name]

    def service_names(self) -> list[str]:
        return [service.name for service in self.catalog]

    def __len__(self) -> int:
        return len(self.catalog)
