"""Flow synthesis: from household schedules to conntrack records.

:class:`TrafficGenerator` turns a :class:`ResidenceProfile` plus the
:class:`ServiceUniverse` into nine months of flow records, pushed through
the real measurement path: every connection runs Happy Eyeballs against
the chosen server's addresses, every resulting flow (including cancelled
extra SYNs) enters the :class:`ConntrackTable`, and the
:class:`FlowMonitor` files it into daily logs -- exactly what the paper's
router monitor records.

Protocol choice is *emergent*, not assigned: a flow is IPv6 when the
device has IPv6, the server fleet member is dual-stack, and IPv6 wins the
race.  That is what makes the downstream analyses meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.flowmon.conntrack import ConntrackTable, FlowKey, IcmpInfo, Protocol
from repro.flowmon.monitor import FlowMonitor, FlowScope, RouterConfig
from repro.happyeyeballs.algorithm import (
    HappyEyeballs,
    HappyEyeballsConfig,
    StaticConnectivity,
)
from repro.net.addr import Family
from repro.traffic.apps import (
    ApplicationKind,
    ServiceProfile,
    TrafficShape,
    build_service_catalog,
)
from repro.traffic.devices import Device
from repro.traffic.residences import ResidenceProfile
from repro.traffic.universe import ServerEndpoint, ServiceUniverse
from repro.util.procpool import map_in_pool, resolve_worker_count
from repro.util.rng import RngStream
from repro.util.timeutil import DAY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flowmon.frame import FlowFrame

#: Download (server-to-client) share of a flow's bytes, by application.
INBOUND_FRACTION: dict[ApplicationKind, float] = {
    ApplicationKind.WEB: 0.88,
    ApplicationKind.SOCIAL: 0.85,
    ApplicationKind.STREAMING: 0.97,
    ApplicationKind.DOWNLOAD: 0.98,
    ApplicationKind.CONFERENCING: 0.55,
    ApplicationKind.GAMING: 0.60,
    ApplicationKind.BACKGROUND: 0.75,
    ApplicationKind.STORAGE: 0.50,
}

#: Flow duration ranges (seconds), by application.
DURATION_RANGE: dict[ApplicationKind, tuple[float, float]] = {
    ApplicationKind.WEB: (2.0, 40.0),
    ApplicationKind.SOCIAL: (20.0, 400.0),
    ApplicationKind.STREAMING: (600.0, 7200.0),
    ApplicationKind.DOWNLOAD: (60.0, 1800.0),
    ApplicationKind.CONFERENCING: (1200.0, 5400.0),
    ApplicationKind.GAMING: (900.0, 7200.0),
    ApplicationKind.BACKGROUND: (2.0, 90.0),
    ApplicationKind.STORAGE: (30.0, 600.0),
}

#: Well-known destination port, by application (TCP unless QUIC/UDP drawn).
SERVICE_PORT: dict[ApplicationKind, int] = {
    ApplicationKind.WEB: 443,
    ApplicationKind.SOCIAL: 443,
    ApplicationKind.STREAMING: 443,
    ApplicationKind.DOWNLOAD: 443,
    ApplicationKind.CONFERENCING: 8801,
    ApplicationKind.GAMING: 27015,
    ApplicationKind.BACKGROUND: 443,
    ApplicationKind.STORAGE: 445,
}

#: LAN-to-LAN sessions: small file shares, printing, NAS syncs.
INTERNAL_SHAPE = TrafficShape(
    flows_per_session=4,
    median_flow_bytes=150_000,
    sigma=1.6,
    heavy_flow_bytes=30_000_000,
    heavy_flow_prob=0.02,
    udp_fraction=0.05,
)

#: Size of the token exchange left behind by a cancelled/duplicate SYN race.
ABORTED_FLOW_BYTES = (300, 1500)

#: Machine-traffic diet shared by all residences (updates, telemetry).
BACKGROUND_WEIGHTS: dict[str, float] = {
    "Microsoft Updates": 3.0,
    "Apple Engineering": 2.0,
    "Windows Telemetry": 2.0,
    "IoT Telemetry": 1.5,
}

#: Probability a background session is an ICMP health probe.
ICMP_PROBE_PROB = 0.05

#: Probability the AAAA answer arrives too late for the resolution delay.
SLOW_AAAA_PROB = 0.08
SLOW_AAAA_LATENCY = 0.200


@dataclass
class ResidenceDataset:
    """Everything generated for one residence.

    Attributes:
        profile: the residence's study configuration.
        monitor: the flow monitor holding daily logs.
        universe: service-side attribution data (shared across residences).
        num_days: length of the observation window in days.
    """

    profile: ResidenceProfile
    monitor: FlowMonitor
    universe: ServiceUniverse
    num_days: int
    devices: list[Device] = field(default_factory=list)
    _frame: "FlowFrame | None" = field(default=None, repr=False, compare=False)
    _frame_version: int = field(default=-1, repr=False, compare=False)

    def external_records(self):
        return self.monitor.records(scope=FlowScope.EXTERNAL)

    def internal_records(self):
        return self.monitor.records(scope=FlowScope.INTERNAL)

    def frame(self) -> "FlowFrame":
        """The attributed columnar view of this residence's flow log.

        Built once (core columns from the monitor, AS/domain attribution
        resolved per unique external peer against this dataset's
        universe) and cached; rebuilt only if the monitor logs new flows.
        """
        monitor = self.monitor
        if self._frame is None or self._frame_version != monitor.version:
            frame = monitor.frame().with_attribution(
                self.universe.routing, self.universe.rdns
            )
            self._frame = frame
            self._frame_version = monitor.version
        return self._frame


class TrafficGenerator:
    """Synthesizes flow datasets for residences against one universe."""

    #: Ephemeral source-port range; reset per residence so a residence's
    #: flows are identical whether it is generated alone, sequentially
    #: after others, or on a worker process.
    SPORT_BASE = 20000

    def __init__(
        self,
        universe: ServiceUniverse | None = None,
        seed: int = 0,
        he_config: HappyEyeballsConfig | None = None,
    ) -> None:
        self.universe = universe or ServiceUniverse(build_service_catalog())
        self.seed = seed
        self._he_config = he_config
        self._he = HappyEyeballs(he_config)
        self._services = {s.name: s for s in self.universe.catalog}
        self._sport = self.SPORT_BASE

    # -- public API -----------------------------------------------------

    def generate(self, profile: ResidenceProfile, num_days: int) -> ResidenceDataset:
        """Generate ``num_days`` of traffic for one residence."""
        if num_days < 1:
            raise ValueError("num_days must be >= 1")
        self._sport = self.SPORT_BASE
        devices = profile.build_devices()
        monitor = FlowMonitor(
            RouterConfig(name=profile.name, lan_v4=profile.lan_v4, lan_v6=profile.lan_v6)
        )
        table = ConntrackTable()
        monitor.attach(table)
        activity = profile.activity_model()
        rng = RngStream(self.seed, f"residence:{profile.name}")

        human_services = self._weighted_services(profile.service_weights, human=True)
        background_services = self._weighted_services(BACKGROUND_WEIGHTS, human=False)
        interactive = [d for d in devices if d.kind.interactive]
        if not interactive:
            raise ValueError(f"residence {profile.name} has no interactive devices")

        for day in range(num_days):
            day_rng = rng.substream(f"day:{day}")
            for start in activity.human_session_times(day, day_rng):
                device = self._pick_device(interactive, day_rng)
                service = day_rng.weighted_choice(*human_services)
                self._run_session(table, profile, device, service, start, day_rng)
            for start in activity.background_session_times(day, day_rng):
                device = self._pick_device(devices, day_rng)
                service = day_rng.weighted_choice(*background_services)
                self._run_session(table, profile, device, service, start, day_rng)
            self._run_internal_sessions(table, profile, devices, day, day_rng)

        return ResidenceDataset(
            profile=profile,
            monitor=monitor,
            universe=self.universe,
            num_days=num_days,
            devices=devices,
        )

    def generate_all(
        self,
        profiles: list[ResidenceProfile],
        num_days: int,
        parallel: bool | int | None = None,
    ) -> dict[str, ResidenceDataset]:
        """Generate datasets for several residences (shared universe).

        Args:
            profiles: residences to generate, in output (dict) order.
            num_days: observation length for every residence.
            parallel: ``None`` (default) fans residences out across a
                :class:`~concurrent.futures.ProcessPoolExecutor` when the
                machine has more than one CPU; ``True`` forces processes,
                an ``int`` picks the worker count, and ``False``/``0``/
                ``1`` stays sequential.  Results are identical either
                way: every residence draws from its own seeded RNG
                substream and allocates source ports from its own range,
                so generation order cannot leak between residences.  If a
                pool cannot be created or breaks (sandboxes, missing
                semaphores), generation warns once
                (:func:`repro.util.procpool.warn_pool_fallback`) and
                falls back to the sequential path.
        """
        workers = self._resolve_workers(parallel, len(profiles))
        tasks = [
            (self.universe.catalog, self.seed, self._he_config, profile, num_days)
            for profile in profiles
        ]
        results = map_in_pool(
            _generate_residence, tasks, workers, "traffic generation"
        )
        if results is None:
            return {p.name: self.generate(p, num_days) for p in profiles}
        datasets: dict[str, ResidenceDataset] = {}
        for profile, (name, monitor, devices) in zip(profiles, results):
            # Workers rebuild an identical universe from the catalog;
            # rebind to the parent's so every dataset shares one
            # attribution substrate (registry identity included).
            datasets[name] = ResidenceDataset(
                profile=profile,
                monitor=monitor,
                universe=self.universe,
                num_days=num_days,
                devices=devices,
            )
        return datasets

    @staticmethod
    def _resolve_workers(parallel: bool | int | None, num_profiles: int) -> int:
        return resolve_worker_count(parallel, num_profiles)

    # -- session machinery ------------------------------------------------

    def _weighted_services(
        self, weights: dict[str, float], human: bool
    ) -> tuple[list[ServiceProfile], list[float]]:
        services: list[ServiceProfile] = []
        values: list[float] = []
        for name, weight in sorted(weights.items()):
            service = self._services.get(name)
            if service is None:
                raise KeyError(f"unknown service in diet: {name!r}")
            if service.human_driven != human:
                continue
            services.append(service)
            values.append(weight)
        if not services:
            raise ValueError("service diet selects no services")
        return services, values

    def _pick_device(self, devices: list[Device], rng: RngStream) -> Device:
        return rng.weighted_choice(devices, [d.activity_weight for d in devices])

    def _next_sport(self) -> int:
        self._sport += 1
        if self._sport > 60000:
            self._sport = 20000
        return self._sport

    def _run_session(
        self,
        table: ConntrackTable,
        profile: ResidenceProfile,
        device: Device,
        service: ServiceProfile,
        start: float,
        rng: RngStream,
    ) -> None:
        if rng.bernoulli(ICMP_PROBE_PROB) and service.kind is ApplicationKind.BACKGROUND:
            self._run_icmp_probe(table, device, service, start, rng)
            return
        shape = service.shape
        flow_count = max(1, rng.poisson(shape.flows_per_session))
        offset = 0.0
        for _ in range(flow_count):
            flow_start = start + offset
            offset += rng.exponential(5.0)
            self._run_connection(table, profile, device, service, flow_start, rng)

    def _run_connection(
        self,
        table: ConntrackTable,
        profile: ResidenceProfile,
        device: Device,
        service: ServiceProfile,
        start: float,
        rng: RngStream,
    ) -> None:
        server = rng.choice(self.universe.servers_of(service))
        family = self._negotiate_family(device, server, rng)
        shape = service.shape
        volume = shape.draw_flow_bytes(rng)
        inbound = INBOUND_FRACTION[service.kind]
        low, high = DURATION_RANGE[service.kind]
        duration = rng.uniform(low, high)
        protocol = Protocol.UDP if rng.bernoulli(shape.udp_fraction) else Protocol.TCP
        self._record_flow(
            table,
            device=device,
            server=server,
            family=family,
            protocol=protocol,
            dport=SERVICE_PORT[service.kind],
            start=start,
            duration=duration,
            bytes_in=int(volume * inbound),
            bytes_out=volume - int(volume * inbound),
        )
        # Aggressive Happy Eyeballs implementations leave a second-family
        # SYN exchange behind (section 3.2's flow-count inflation).
        if family is not None and device.ipv6_capable and server.dual_stack:
            if rng.bernoulli(profile.dual_syn_probability):
                other = Family.V4 if family is Family.V6 else Family.V6
                self._record_flow(
                    table,
                    device=device,
                    server=server,
                    family=other,
                    protocol=Protocol.TCP,
                    dport=SERVICE_PORT[service.kind],
                    start=start,
                    duration=rng.uniform(0.1, 1.0),
                    bytes_in=rng.randint(*ABORTED_FLOW_BYTES),
                    bytes_out=rng.randint(100, 400),
                )

    def _negotiate_family(
        self, device: Device, server: ServerEndpoint, rng: RngStream
    ) -> Family | None:
        """Pick the wire family for one connection via Happy Eyeballs."""
        if not device.ipv6_capable or not server.dual_stack:
            return Family.V4
        v6_latency = max(0.004, rng.normal(0.028, 0.008))
        v4_latency = max(0.004, rng.normal(0.032, 0.010))
        v6_resolution = 0.010
        if rng.bernoulli(SLOW_AAAA_PROB):
            v6_resolution = SLOW_AAAA_LATENCY
        connectivity = StaticConnectivity(
            latencies={server.v4: v4_latency, server.v6: v6_latency}
        )
        result = self._he.connect(
            [server.v4],
            [server.v6],
            connectivity,
            v4_resolution_time=0.010,
            v6_resolution_time=v6_resolution,
        )
        return result.used_family

    def _record_flow(
        self,
        table: ConntrackTable,
        device: Device,
        server: ServerEndpoint,
        family: Family | None,
        protocol: Protocol,
        dport: int,
        start: float,
        duration: float,
        bytes_in: int,
        bytes_out: int,
    ) -> None:
        if family is None:
            return  # connection never established; nothing observable
        src = device.address(family)
        dst = server.v4 if family is Family.V4 else server.v6
        if src is None or dst is None:  # pragma: no cover - guarded upstream
            return
        key = FlowKey(protocol, src, dst, self._next_sport(), dport)
        table.observe_flow(
            key,
            start_time=start,
            end_time=start + duration,
            bytes_out=bytes_out,
            bytes_in=bytes_in,
        )

    def _run_icmp_probe(
        self,
        table: ConntrackTable,
        device: Device,
        service: ServiceProfile,
        start: float,
        rng: RngStream,
    ) -> None:
        server = rng.choice(self.universe.servers_of(service))
        use_v6 = device.ipv6_capable and server.dual_stack and rng.bernoulli(0.5)
        src = device.address(Family.V6 if use_v6 else Family.V4)
        dst = server.v6 if use_v6 else server.v4
        if src is None or dst is None:
            return
        key = FlowKey(
            Protocol.ICMP, src, dst,
            icmp=IcmpInfo(icmp_type=8, icmp_code=0, icmp_id=rng.randint(0, 0xFFFF)),
        )
        probes = rng.randint(1, 5)
        table.observe_flow(
            key,
            start_time=start,
            end_time=start + probes,
            bytes_out=64 * probes,
            bytes_in=64 * probes,
            packets_out=probes,
            packets_in=probes,
        )

    def _run_internal_sessions(
        self,
        table: ConntrackTable,
        profile: ResidenceProfile,
        devices: list[Device],
        day: int,
        rng: RngStream,
    ) -> None:
        if len(devices) < 2:
            return
        for _ in range(rng.poisson(profile.internal_sessions)):
            first = rng.choice(devices)
            second = rng.choice(devices)
            while second is first:
                second = rng.choice(devices)
            # LAN IPv6 works even when the WAN path is broken (section
            # 3.2: internal and external shares are not well correlated).
            both_v6 = first.lan_ipv6 and second.lan_ipv6
            use_v6 = both_v6 and rng.bernoulli(profile.internal_ipv6_preference)
            family = Family.V6 if use_v6 else Family.V4
            start = (day + rng.random()) * DAY
            for _ in range(max(1, rng.poisson(INTERNAL_SHAPE.flows_per_session))):
                volume = INTERNAL_SHAPE.draw_flow_bytes(rng)
                protocol = (
                    Protocol.UDP
                    if rng.bernoulli(INTERNAL_SHAPE.udp_fraction)
                    else Protocol.TCP
                )
                src = first.address(family)
                dst = second.address(family)
                if src is None or dst is None:  # pragma: no cover
                    continue
                key = FlowKey(protocol, src, dst, self._next_sport(), 445)
                table.observe_flow(
                    key,
                    start_time=start,
                    end_time=start + rng.uniform(5.0, 300.0),
                    bytes_out=volume // 2,
                    bytes_in=volume - volume // 2,
                )
                start += rng.exponential(10.0)


def _generate_residence(
    task: tuple[
        list[ServiceProfile], int, HappyEyeballsConfig | None, ResidenceProfile, int
    ],
) -> tuple[str, FlowMonitor, list[Device]]:
    """Worker-process entry: generate one residence from first principles.

    Rebuilds the (deterministic) service universe from the pickled
    catalog, so only the catalog, profile, and scalars cross the process
    boundary on the way in and only the monitor and devices on the way
    out.  Because every residence draws from the RNG substream
    ``(seed, "residence:<name>")``, the result is bit-identical to the
    sequential path.
    """
    catalog, seed, he_config, profile, num_days = task
    generator = TrafficGenerator(
        ServiceUniverse(catalog), seed=seed, he_config=he_config
    )
    dataset = generator.generate(profile, num_days)
    return profile.name, dataset.monitor, dataset.devices
