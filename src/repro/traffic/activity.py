"""Human activity model: diurnal and weekly rhythms, occupancy, vacations.

The paper's key client-side finding is that IPv6 traffic is *human
generated*: it peaks in the evening when residents are home, dips when the
residence empties (Residence A's spring break), and shows only a weak
weekly pattern because residents are away during the day on weekdays and
weekends alike (section 3.3).

:class:`ActivityModel` produces per-hour session intensities with exactly
those properties: an evening peak rising to midnight, a secondary
mid-morning bump, a mild weekend modulation, day-to-day random variation
(the high daily standard deviations in Table 1), and vacation windows that
zero out *human* activity while background machine traffic carries on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.rng import RngStream

#: Relative human activity by hour of day.  Calibrated to Figure 2's daily
#: component: strong evening rise peaking toward midnight, a secondary
#: mid-morning peak, and a deep early-morning trough.
DEFAULT_HOUR_CURVE = (
    0.55, 0.30, 0.15, 0.08, 0.05, 0.06,  # 00-05: tail of the evening, night
    0.12, 0.25, 0.45, 0.60, 0.55, 0.45,  # 06-11: morning, mid-morning bump
    0.35, 0.30, 0.28, 0.30, 0.38, 0.55,  # 12-17: away at work/school
    0.75, 0.95, 1.10, 1.25, 1.35, 1.00,  # 18-23: evening peak to midnight
)


@dataclass(frozen=True)
class VacationWindow:
    """Days (inclusive range) when the residence is unoccupied."""

    start_day: int
    end_day: int

    def __post_init__(self) -> None:
        if self.end_day < self.start_day:
            raise ValueError("vacation cannot end before it starts")

    def contains(self, day: int) -> bool:
        return self.start_day <= day <= self.end_day


@dataclass(frozen=True)
class OccupancyPattern:
    """A residence's schedule: hour curve plus weekday/weekend factors.

    ``weekend_factor`` close to 1.0 reproduces the paper's weak weekly
    pattern; larger values would model a stay-home-on-weekends household.
    """

    hour_curve: tuple[float, ...] = DEFAULT_HOUR_CURVE
    weekend_factor: float = 1.1
    day_variability: float = 0.45

    def __post_init__(self) -> None:
        if len(self.hour_curve) != 24:
            raise ValueError("hour curve must have 24 entries")
        if any(v < 0 for v in self.hour_curve):
            raise ValueError("hour curve entries must be non-negative")
        if self.weekend_factor <= 0:
            raise ValueError("weekend_factor must be positive")
        if self.day_variability < 0:
            raise ValueError("day_variability must be non-negative")


@dataclass
class ActivityModel:
    """Generates session start times for one residence.

    Attributes:
        daily_sessions: mean number of human sessions per occupied day.
        background_sessions: mean machine sessions per day (vacation-proof).
        pattern: the household schedule.
        vacations: windows with no human activity.
    """

    daily_sessions: float
    background_sessions: float
    pattern: OccupancyPattern = field(default_factory=OccupancyPattern)
    vacations: tuple[VacationWindow, ...] = ()

    def __post_init__(self) -> None:
        if self.daily_sessions < 0 or self.background_sessions < 0:
            raise ValueError("session rates must be non-negative")

    def is_vacation(self, day: int) -> bool:
        return any(window.contains(day) for window in self.vacations)

    def day_multiplier(self, day: int, rng: RngStream) -> float:
        """Random per-day activity level (lognormal with median 1)."""
        if self.pattern.day_variability == 0:
            return 1.0
        return math.exp(rng.normal(0.0, self.pattern.day_variability))

    def human_session_times(self, day: int, rng: RngStream) -> list[float]:
        """Sim-time starts of human sessions on ``day`` (sorted).

        Sessions are drawn hour-by-hour from a Poisson with the hour
        curve's intensity, scaled by the weekend factor and the day's
        random multiplier.  Vacation days yield no sessions.
        """
        if self.is_vacation(day):
            return []
        weekend = day % 7 >= 5
        weekly = self.pattern.weekend_factor if weekend else 1.0
        multiplier = self.day_multiplier(day, rng)
        curve = self.pattern.hour_curve
        curve_total = sum(curve)
        times: list[float] = []
        for hour in range(24):
            rate = self.daily_sessions * weekly * multiplier * curve[hour] / curve_total
            for _ in range(rng.poisson(rate)):
                times.append((day * 24 + hour + rng.random()) * 3600.0)
        times.sort()
        return times

    def background_session_times(self, day: int, rng: RngStream) -> list[float]:
        """Machine session starts: uniform over the day, vacation-immune."""
        count = rng.poisson(self.background_sessions)
        times = [(day * 24 + rng.uniform(0.0, 24.0)) * 3600.0 for _ in range(count)]
        times.sort()
        return times
