"""The five-residence study design (paper section 3).

Each :class:`ResidenceProfile` encodes what the paper reports about one
residence: its ISP (native IPv6, or Frontier's IPv4-only service bridged by
a tunnel at Residence B), its device fleet and their IPv6 capability, how
much of the household's traffic our router sees (partial at D and E), the
household's service diet, and its schedule.

Together with the generative model these produce Table 1's qualitative
facts: external IPv6 byte fractions spanning roughly 0.07-0.68, flow
majorities that disagree with byte majorities, internal traffic around 1%
of external at most homes, and per-day variation with a standard deviation
above 0.15.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addr import Prefix
from repro.traffic.activity import ActivityModel, OccupancyPattern, VacationWindow
from repro.traffic.devices import Device, DeviceKind

#: Spring break at Residence A: mid-March, ~4.5 months into a Nov 1 start
#: (paper Figure 2 shows the dip on March 16-19 = days 135-138).
SPRING_BREAK = VacationWindow(start_day=135, end_day=138)


@dataclass(frozen=True)
class ResidenceProfile:
    """Study configuration for one residence.

    Attributes:
        name: the paper's label (A-E).
        isp: ISP name, for reporting.
        native_ipv6: False means the ISP is IPv4-only and IPv6 rides a
            tunnel (Residence B / Frontier).
        occupants: household size (scales activity).
        lan_v4 / lan_v6: the router's LAN prefixes.
        device_specs: (kind, ipv6_capable, activity_weight) per device.
        service_weights: the household's service diet -- relative session
            weights over catalog service names.
        daily_sessions: mean human sessions per day (traffic scale;
            also encodes partial visibility at D and E).
        background_sessions: mean machine sessions per day.
        internal_sessions: mean LAN-to-LAN sessions per day.
        internal_ipv6_preference: probability an internal session between
            two capable devices uses IPv6 (NAS/file-share capability).
        dual_syn_probability: chance a Happy Eyeballs connection emits
            SYNs on both families regardless of timing (models the
            aggressive racing the paper conjectures in section 3.2).
        vacations: unoccupied windows.
        weekend_factor / day_variability: schedule shape knobs.
    """

    name: str
    isp: str
    native_ipv6: bool
    occupants: int
    lan_v4: Prefix
    lan_v6: Prefix | None
    device_specs: tuple[tuple[DeviceKind, bool, float], ...]
    service_weights: dict[str, float]
    daily_sessions: float
    background_sessions: float
    internal_sessions: float
    internal_ipv6_preference: float
    dual_syn_probability: float = 0.25
    vacations: tuple[VacationWindow, ...] = ()
    weekend_factor: float = 1.1
    day_variability: float = 0.45

    def __post_init__(self) -> None:
        if self.occupants < 1:
            raise ValueError("a residence has at least one occupant")
        if not self.device_specs:
            raise ValueError("a residence needs at least one device")
        if not self.service_weights:
            raise ValueError("a residence needs a service diet")
        if not 0.0 <= self.internal_ipv6_preference <= 1.0:
            raise ValueError("internal_ipv6_preference must be a probability")
        if not 0.0 <= self.dual_syn_probability <= 1.0:
            raise ValueError("dual_syn_probability must be a probability")

    def build_devices(self) -> list[Device]:
        """Materialize the device fleet with LAN addresses.

        Every device gets a LAN IPv6 address when the residence has a
        prefix; the per-device capability flag governs *WAN* IPv6 only
        (broken CPE-path IPv6 still leaves the LAN dual-stack).
        """
        devices: list[Device] = []
        for index, (kind, wan_ipv6_ok, weight) in enumerate(self.device_specs):
            v4 = self.lan_v4.nth(10 + index)
            v6 = self.lan_v6.nth(0x10 + index) if self.lan_v6 is not None else None
            devices.append(
                Device(
                    name=f"{self.name.lower()}-{kind.value}-{index}",
                    kind=kind,
                    v4=v4,
                    v6=v6,
                    wan_ipv6=wan_ipv6_ok,
                    activity_weight=weight,
                )
            )
        return devices

    def activity_model(self) -> ActivityModel:
        return ActivityModel(
            daily_sessions=self.daily_sessions,
            background_sessions=self.background_sessions,
            pattern=OccupancyPattern(
                weekend_factor=self.weekend_factor,
                day_variability=self.day_variability,
            ),
            vacations=self.vacations,
        )


def _lan(index: int, with_v6: bool = True) -> tuple[Prefix, Prefix | None]:
    v4 = Prefix.parse(f"192.168.{index}.0/24")
    v6 = Prefix.parse(f"2001:db8:{index:x}::/64") if with_v6 else None
    return v4, v6


def build_paper_residences() -> list[ResidenceProfile]:
    """The five residences, calibrated to Table 1's qualitative shape."""
    pc, phone, tablet, tv = DeviceKind.PC, DeviceKind.PHONE, DeviceKind.TABLET, DeviceKind.TV
    console, nas, printer, iot = (
        DeviceKind.CONSOLE, DeviceKind.NAS, DeviceKind.PRINTER, DeviceKind.IOT,
    )

    a_v4, a_v6 = _lan(1)
    b_v4, b_v6 = _lan(2)
    c_v4, c_v6 = _lan(3)
    d_v4, d_v6 = _lan(4)
    e_v4, e_v6 = _lan(5)

    residence_a = ResidenceProfile(
        name="A", isp="Spectrum", native_ipv6=True, occupants=4,
        lan_v4=a_v4, lan_v6=a_v6,
        device_specs=(
            (pc, True, 2.0), (pc, True, 1.5), (phone, True, 2.0), (phone, True, 1.5),
            (tablet, True, 1.0), (tv, True, 1.5), (console, True, 1.0),
            (printer, True, 0.2), (iot, False, 0.3),
        ),
        # IPv6-heavy streaming diet with a visible IPv4-only remainder:
        # bytes lean IPv6 (Netflix, Valve), flows split near even because
        # the many web flows include IPv4-only services.
        service_weights={
            "Netflix Streaming": 7.0, "Valve/Steam": 4.0, "Apple Services": 2.5,
            "Google": 7.0, "Facebook": 4.0, "Cloudflare": 4.0, "Fastly CDN": 3.0,
            "Akamai CDN": 2.0, "Wikipedia": 1.0, "Microsoft Cloud": 2.0,
            "Amazon EC2": 3.0, "Twitch": 1.2, "Zoom": 1.0, "GitHub": 2.5,
            "USC Campus": 2.0, "Internet Archive": 0.8, "Comcast": 1.0,
            "WordPress": 1.0, "Netflix API": 1.0, "TikTok": 0.8,
        },
        daily_sessions=95.0, background_sessions=30.0,
        internal_sessions=6.0, internal_ipv6_preference=0.25,
        vacations=(SPRING_BREAK,),
    )

    residence_b = ResidenceProfile(
        name="B", isp="Frontier", native_ipv6=False, occupants=7,
        lan_v4=b_v4, lan_v6=b_v6,
        device_specs=(
            (pc, True, 2.0), (pc, True, 1.5), (phone, True, 2.0), (phone, True, 2.0),
            (phone, True, 1.5), (tablet, True, 1.0), (tv, True, 1.5),
            (console, True, 1.2), (nas, True, 0.4), (iot, False, 0.3),
        ),
        service_weights={
            "Netflix Streaming": 5.0, "Valve/Steam": 3.5, "Apple Services": 2.0,
            "Google": 8.0, "Facebook": 6.0, "Cloudflare": 5.0, "Fastly CDN": 3.0,
            "Wikipedia": 1.5, "Microsoft Cloud": 2.0, "Amazon EC2": 2.5,
            "Twitch": 1.5, "Zoom": 1.2, "GitHub": 1.0, "TikTok": 1.0,
            "Qwilt": 1.5, "CDN77": 1.0, "Netflix API": 1.0, "Frontier": 0.8,
        },
        daily_sessions=85.0, background_sessions=25.0,
        internal_sessions=10.0, internal_ipv6_preference=0.6,
    )

    residence_c = ResidenceProfile(
        name="C", isp="Spectrum", native_ipv6=True, occupants=3,
        lan_v4=c_v4, lan_v6=c_v6,
        # Most devices have broken/disabled IPv6: even v6-preferring
        # services are reached over IPv4 (the paper's conjecture for C).
        device_specs=(
            (pc, False, 2.0), (pc, False, 1.5), (phone, True, 1.2),
            (tv, False, 2.5), (console, False, 1.5), (nas, True, 0.5),
            (iot, False, 0.4),
        ),
        service_weights={
            "Netflix Streaming": 6.0, "Twitch": 3.0, "Google": 6.0,
            "Facebook": 4.0, "Cloudflare": 3.0, "Amazon EC2": 3.0,
            "Zoom": 2.0, "GitHub": 1.5, "Microsoft Cloud": 2.0,
            "Valve/Steam": 2.5, "TikTok": 2.0, "China Unicom": 1.0,
            "China Telecom": 1.0, "Apple Services": 1.5,
        },
        daily_sessions=80.0, background_sessions=30.0,
        internal_sessions=8.0, internal_ipv6_preference=0.55,
    )

    residence_d = ResidenceProfile(
        name="D", isp="Spectrum", native_ipv6=True, occupants=2,
        lan_v4=d_v4, lan_v6=d_v6,
        # Partial visibility: most residents use the ISP router; we see
        # two phones and a NAS.  External traffic is tiny; internal
        # NAS backups dominate and are IPv6.
        device_specs=(
            (phone, True, 2.0), (phone, True, 1.5), (nas, True, 1.0),
        ),
        service_weights={
            "Google": 6.0, "Facebook": 5.0, "Cloudflare": 4.0,
            "Wikipedia": 2.0, "Fastly CDN": 3.0, "Akamai CDN": 2.0,
            "Netflix Streaming": 1.0, "Zoom": 1.5, "TikTok": 1.0,
            "Apple Services": 1.0,
        },
        daily_sessions=6.0, background_sessions=4.0,
        internal_sessions=60.0, internal_ipv6_preference=0.98,
        day_variability=0.8,
    )

    residence_e = ResidenceProfile(
        name="E", isp="Spectrum", native_ipv6=True, occupants=1,
        lan_v4=e_v4, lan_v6=e_v6,
        # A gamer/streamer household: bytes dominated by IPv4-only Twitch,
        # Zoom and game servers; the occasional IPv6 web day makes the
        # daily fraction extremely variable (Table 1's 0.459 +- 0.423).
        device_specs=(
            (pc, True, 2.5), (phone, True, 1.0), (console, False, 2.0),
        ),
        service_weights={
            "Twitch": 6.0, "Zoom": 3.0, "i3D.net": 3.0, "GitHub": 2.5,
            "USC Campus": 2.0, "WordPress": 1.5, "Internet Archive": 1.0,
            "Cloudflare Spectrum": 1.5, "Google": 1.2, "Cloudflare": 0.8,
            "Facebook": 0.6, "Valve/Steam": 0.5, "Netflix Streaming": 0.4,
        },
        daily_sessions=14.0, background_sessions=8.0,
        internal_sessions=1.0, internal_ipv6_preference=0.2,
        day_variability=0.9,
    )

    return [residence_a, residence_b, residence_c, residence_d, residence_e]


def residences_by_name() -> dict[str, ResidenceProfile]:
    return {profile.name: profile for profile in build_paper_residences()}
