"""Client devices inside a residence.

The paper finds device capability matters: Residence C's low IPv6 share is
plausibly "because some devices at Residence C did not have IPv6 enabled,
or had broken connectivity" (section 3.4).  :class:`Device` carries an
``ipv6_capable`` flag; a v6-incapable device speaks IPv4 even to dual-stack
services, capping every AS's observable IPv6 fraction at that residence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.net.addr import Family, IpAddress


class DeviceKind(enum.Enum):
    PC = "pc"
    PHONE = "phone"
    TABLET = "tablet"
    TV = "tv"
    CONSOLE = "console"
    NAS = "nas"
    PRINTER = "printer"
    IOT = "iot"

    @property
    def interactive(self) -> bool:
        """Whether humans drive this device's traffic directly."""
        return self in (
            DeviceKind.PC,
            DeviceKind.PHONE,
            DeviceKind.TABLET,
            DeviceKind.TV,
            DeviceKind.CONSOLE,
        )


@dataclass(frozen=True)
class Device:
    """One client device with its LAN addressing.

    Attributes:
        name: stable identifier within the residence.
        kind: device class; interactive kinds carry human sessions.
        v4: the device's LAN IPv4 address.
        v6: the device's LAN IPv6 address, or None when the device (or its
            residence) cannot do IPv6 at all.
        wan_ipv6: whether the device's IPv6 actually works *toward the
            Internet*.  A device with broken CPE-path IPv6 still speaks
            IPv6 on the LAN -- which is why the paper finds internal and
            external IPv6 shares uncorrelated (section 3.2, Residence C).
        activity_weight: relative share of the residence's sessions this
            device carries.
    """

    name: str
    kind: DeviceKind
    v4: IpAddress
    v6: IpAddress | None
    wan_ipv6: bool = True
    activity_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.v4.family is not Family.V4:
            raise ValueError("device v4 address must be IPv4")
        if self.v6 is not None and self.v6.family is not Family.V6:
            raise ValueError("device v6 address must be IPv6")
        if self.activity_weight < 0:
            raise ValueError("activity_weight must be non-negative")

    @property
    def ipv6_capable(self) -> bool:
        """Can this device reach the IPv6 Internet?"""
        return self.v6 is not None and self.wan_ipv6

    @property
    def lan_ipv6(self) -> bool:
        """Can this device speak IPv6 on the LAN?"""
        return self.v6 is not None

    def address(self, family: Family) -> IpAddress | None:
        return self.v4 if family is Family.V4 else self.v6
